//! Property-based differential suite for live incremental maintenance: 200
//! random delta streams (50 seeds × 4 commits, plus a capped-index matrix)
//! are applied through [`Server::commit`], and after **every** stream the
//! maintained [`AccessIndexSet`] must be identical to one rebuilt from
//! scratch on the mutated graph — same keys, same answers, same maximum
//! cardinalities — including when indices were built under a small
//! combination cap. After the final stream of each seed, bVF2/bSim answers
//! on the maintained snapshot must equal the answers of a from-scratch
//! engine over the same graph, for automatic selection and for the forced
//! bounded strategy (agreeing on rejection when a pattern is unbounded).
//!
//! Everything is seeded and deterministic: failures report their seed and
//! commit round.

use bgpq_access::{AccessConstraint, AccessIndexSet, AccessSchema};
use bgpq_engine::{
    check_schema, discover_schema, BgpqError, DiscoveryConfig, Engine, QueryRequest, Semantics,
    StrategyKind,
};
use bgpq_graph::{Graph, GraphBuilder, NodeId, Value};
use bgpq_pattern::{DetRng, GeneratorConfig, Pattern, WorkloadGenerator};
use bgpq_serve::{Server, Snapshot, Update};

const LABEL_POOL: [&str; 6] = ["person", "movie", "award", "city", "genre", "year"];

/// A random graph guaranteed to intern every pool label (so updates never
/// grow the interner and patterns stay aligned across snapshots).
fn random_graph(rng: &mut DetRng) -> Graph {
    let n = rng.random_range(15..=30);
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let label = LABEL_POOL[if i < LABEL_POOL.len() {
                i
            } else {
                rng.random_range(0..LABEL_POOL.len())
            }];
            b.add_node(label, Value::Int(rng.random_range(0..9) as i64))
        })
        .collect();
    for _ in 0..rng.random_range(n..=2 * n) {
        let s = ids[rng.random_range(0..n)];
        let d = ids[rng.random_range(0..n)];
        if s != d {
            b.add_edge(s, d).unwrap();
        }
    }
    b.build()
}

/// One random update, valid against `scratch` (which it is applied to, so a
/// batch generated sequentially stays valid as a whole).
fn random_update(rng: &mut DetRng, scratch: &mut Graph) -> Update {
    let live: Vec<NodeId> = scratch.nodes().filter(|&v| scratch.is_live(v)).collect();
    let edges: Vec<_> = scratch.edges().collect();
    loop {
        match rng.random_range(0..4) {
            0 => {
                let label = LABEL_POOL[rng.random_range(0..LABEL_POOL.len())];
                let value = Value::Int(rng.random_range(0..9) as i64);
                scratch.insert_node(label, value.clone());
                return Update::AddNode {
                    label: label.to_string(),
                    value,
                };
            }
            1 if live.len() >= 2 => {
                let src = live[rng.random_range(0..live.len())];
                let dst = live[rng.random_range(0..live.len())];
                if src == dst {
                    continue;
                }
                scratch.insert_edge(src, dst).unwrap();
                return Update::AddEdge { src, dst };
            }
            2 if !edges.is_empty() => {
                let e = edges[rng.random_range(0..edges.len())];
                scratch.delete_edge(e.src, e.dst).unwrap();
                return Update::RemoveEdge {
                    src: e.src,
                    dst: e.dst,
                };
            }
            3 if live.len() > 6 => {
                let node = live[rng.random_range(0..live.len())];
                scratch.delete_node(node).unwrap();
                return Update::RemoveNode { node };
            }
            _ => continue,
        }
    }
}

/// Asserts the maintained indices answer every lookup exactly like indices
/// rebuilt from scratch on `graph` (under `cap` when given).
fn assert_equal_to_rebuild(
    maintained: &AccessIndexSet,
    graph: &Graph,
    cap: Option<usize>,
    ctx: &str,
) {
    let rebuilt = match cap {
        Some(cap) => AccessIndexSet::build_with_cap(graph, maintained.schema(), cap),
        None => AccessIndexSet::build(graph, maintained.schema()),
    };
    for (id, fresh) in rebuilt.iter() {
        let kept = maintained.get(id).unwrap();
        assert_eq!(
            kept.key_count(),
            fresh.key_count(),
            "key count {id} ({ctx})"
        );
        assert_eq!(kept.size(), fresh.size(), "size {id} ({ctx})");
        for (key, answers) in fresh.entries() {
            assert_eq!(
                kept.common_neighbors(key),
                answers,
                "answers {id} key {key:?} ({ctx})"
            );
        }
        assert_eq!(
            kept.max_cardinality(),
            fresh.max_cardinality(),
            "max cardinality {id} ({ctx})"
        );
        assert_eq!(
            kept.is_truncated(),
            fresh.is_truncated(),
            "truncation verdict {id} ({ctx})"
        );
    }
}

/// Asserts the maintained snapshot and a from-scratch engine agree on every
/// pattern, for both semantics, for automatic selection and forced-bounded.
fn assert_engines_agree(snapshot: &Snapshot, fresh: &Engine, patterns: &[Pattern], ctx: &str) {
    for (i, q) in patterns.iter().enumerate() {
        for semantics in [Semantics::Isomorphism, Semantics::Simulation] {
            let auto = |engine: &Engine| {
                engine
                    .execute(&QueryRequest::build(q.clone()).semantics(semantics).finish())
                    .unwrap_or_else(|e| panic!("auto failed ({ctx}, pattern {i}): {e}"))
            };
            let maintained_auto = auto(snapshot.engine());
            let fresh_auto = auto(fresh);
            assert_eq!(
                maintained_auto.answer, fresh_auto.answer,
                "auto answers diverged ({ctx}, pattern {i}, {semantics:?})"
            );

            let forced = |engine: &Engine| {
                engine.execute(
                    &QueryRequest::build(q.clone())
                        .semantics(semantics)
                        .strategy(StrategyKind::Bounded)
                        .finish(),
                )
            };
            match (forced(snapshot.engine()), forced(fresh)) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a.answer, b.answer,
                    "bounded answers diverged ({ctx}, pattern {i}, {semantics:?})"
                ),
                (Err(BgpqError::Unbounded(a)), Err(BgpqError::Unbounded(b))) => assert_eq!(
                    a.uncovered, b.uncovered,
                    "rejection reasons diverged ({ctx}, pattern {i}, {semantics:?})"
                ),
                (a, b) => panic!(
                    "bounded outcome diverged ({ctx}, pattern {i}, {semantics:?}): \
                     maintained {a:?} vs fresh {b:?}"
                ),
            }
        }
    }
}

fn run_seed(seed: u64) {
    let mut rng = DetRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xBEEF);
    let graph = random_graph(&mut rng);
    let schema = discover_schema(&graph, &DiscoveryConfig::default());
    assert!(
        check_schema(&graph, &schema).is_empty(),
        "discovered schema must hold (seed {seed})"
    );
    let server = Server::new(graph, &schema);

    for round in 0..4 {
        let mut scratch = server.snapshot().graph().clone();
        let batch: Vec<Update> = (0..rng.random_range(1..=5))
            .map(|_| random_update(&mut rng, &mut scratch))
            .collect();
        let receipt = server
            .commit(&batch)
            .unwrap_or_else(|e| panic!("commit failed (seed {seed}, round {round}): {e}"));
        assert_eq!(receipt.version, round + 1);

        let snapshot = server.snapshot();
        assert_equal_to_rebuild(
            snapshot.indices(),
            snapshot.graph(),
            None,
            &format!("seed {seed}, round {round}"),
        );
    }

    // The maintained snapshot must answer like a from-scratch engine.
    let snapshot = server.snapshot();
    let mut generator = WorkloadGenerator::new(GeneratorConfig {
        min_nodes: 2,
        max_nodes: 4,
        edge_factor: 1.5,
        min_predicates: 0,
        max_predicates: 3,
        seed: seed ^ rng.next_u64(),
    });
    let mut patterns = generator.generate_anchored(snapshot.graph(), 2);
    patterns.extend(generator.generate(snapshot.graph(), 2));
    let fresh = Engine::new(snapshot.graph().clone(), &schema);
    assert_engines_agree(&snapshot, &fresh, &patterns, &format!("seed {seed}"));
}

// 50 seeds × 4 commit rounds = 200 maintained-vs-rebuilt delta streams.

#[test]
fn delta_stream_matrix_00_24() {
    (0..25).for_each(run_seed);
}

#[test]
fn delta_stream_matrix_25_49() {
    (25..50).for_each(run_seed);
}

/// The capped matrix: indices built under a small per-node combination cap
/// stay identical to capped rebuilds while hub neighborhoods churn — the
/// maintenance path must enumerate refreshed contributions under the same
/// cap as a fresh build, not the default.
#[test]
fn capped_indices_stay_identical_under_churn() {
    const CAP: usize = 60;
    for seed in 0..10u64 {
        let mut rng = DetRng::seed_from_u64(seed ^ 0xCAB);
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", Value::Null);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            let x = b.add_node("x", Value::Int(i));
            let y = b.add_node("y", Value::Int(i));
            b.add_edge(x, hub).unwrap();
            b.add_edge(y, hub).unwrap();
            xs.push(x);
            ys.push(y);
        }
        let graph = b.build();
        let l = |name: &str| graph.interner().get(name).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::new([l("x"), l("y")], l("hub"), 1),
            AccessConstraint::global(l("hub"), 4),
        ]);
        let indices = AccessIndexSet::build_with_cap(&graph, &schema, CAP);
        assert!(indices.iter().any(|(_, idx)| idx.is_truncated()));
        let server = Server::with_indices(graph, indices);

        for round in 0..3 {
            // Churn the hub's neighborhood: add an x and a y, drop an edge.
            let next = server.snapshot().graph().node_count() as u32;
            let victim = if rng.random_bool(0.5) {
                xs[rng.random_range(0..xs.len())]
            } else {
                ys[rng.random_range(0..ys.len())]
            };
            let batch = vec![
                Update::AddNode {
                    label: "x".into(),
                    value: Value::Int(100 + round),
                },
                Update::AddNode {
                    label: "y".into(),
                    value: Value::Int(200 + round),
                },
                Update::AddEdge {
                    src: NodeId(next),
                    dst: NodeId(0),
                },
                Update::AddEdge {
                    src: NodeId(next + 1),
                    dst: NodeId(0),
                },
                Update::RemoveEdge {
                    src: victim,
                    dst: NodeId(0),
                },
            ];
            server.commit(&batch).unwrap();
            let snapshot = server.snapshot();
            assert_equal_to_rebuild(
                snapshot.indices(),
                snapshot.graph(),
                Some(CAP),
                &format!("cap seed {seed}, round {round}"),
            );
        }
    }
}
