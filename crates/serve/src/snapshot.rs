//! One immutable, versioned view of the served graph.

use bgpq_access::AccessIndexSet;
use bgpq_engine::{BgpqError, Engine, QueryRequest, QueryResponse};
use bgpq_graph::Graph;

/// One version of the served graph: the graph as of an epoch, the
/// access-constraint indices maintained up to that epoch, and an
/// [`Engine`] pinned to it.
///
/// Snapshots are immutable and shared behind `Arc`: a reader that pinned one
/// keeps evaluating against a consistent graph/index pair even while the
/// writer publishes newer versions. The engine's plan cache is shared across
/// the whole snapshot chain and validated per version, so pinning an old
/// snapshot can never observe a newer schema's plans.
pub struct Snapshot {
    engine: Engine,
}

impl Snapshot {
    /// Wraps an engine built for one snapshot version
    /// (see [`Engine::with_indices_at_version`]).
    pub(crate) fn new(engine: Engine) -> Self {
        Snapshot { engine }
    }

    /// The epoch of this snapshot (monotonically increasing across commits).
    pub fn version(&self) -> u64 {
        self.engine.version()
    }

    /// The graph as of this snapshot.
    pub fn graph(&self) -> &Graph {
        self.engine.graph()
    }

    /// The incrementally maintained indices as of this snapshot.
    pub fn indices(&self) -> &AccessIndexSet {
        self.engine.indices()
    }

    /// The engine serving this snapshot.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Executes one request against this snapshot.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, BgpqError> {
        self.engine.execute(request)
    }

    /// Executes a batch of requests against this snapshot, sharing index
    /// lookups between their fetches (see
    /// [`Engine::execute_batch`]). All requests observe this
    /// snapshot's version; answers equal per-request [`Snapshot::execute`]
    /// calls, slot for slot.
    pub fn execute_batch(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<QueryResponse, BgpqError>> {
        self.engine.execute_batch(requests)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.version())
            .field("nodes", &self.graph().node_count())
            .field("edges", &self.graph().edge_count())
            .finish()
    }
}
