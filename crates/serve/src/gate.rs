//! Admission control: a bounded in-flight gate with graceful draining.
//!
//! A serving front end must not buffer unboundedly when offered load exceeds
//! capacity — queueing only moves the problem and turns overload into
//! latency collapse. [`AdmissionGate`] implements the standard alternative:
//! a hard cap on concurrently admitted requests. Requests beyond the cap are
//! *rejected immediately* (the caller answers `overloaded` with a
//! retry-after hint) instead of enqueued, and a draining server rejects all
//! new work while admitted requests run to completion on their pinned
//! snapshots.
//!
//! The gate is transport-agnostic — `bgpq-net` puts it in front of TCP
//! sessions, tests drive it directly — and deliberately tiny: an atomic
//! in-flight counter with compare-and-swap admission, plus a mutex/condvar
//! pair so [`AdmissionGate::await_idle`] can block until the last permit
//! drops.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The outcome of one admission attempt.
#[derive(Debug)]
pub enum Admission {
    /// The request may run; drop the permit when it finishes (response
    /// written, not merely computed).
    Admitted(AdmissionPermit),
    /// The in-flight cap is reached; reject with `overloaded` and a
    /// retry-after hint rather than queueing.
    Overloaded {
        /// Requests currently in flight (== the configured limit).
        in_flight: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The gate is draining; reject with `draining`.
    Draining,
}

/// Lifetime counters of an [`AdmissionGate`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected because the in-flight cap was reached.
    pub rejected_overloaded: u64,
    /// Requests rejected because the gate was draining.
    pub rejected_draining: u64,
    /// Highest concurrently-admitted count observed.
    pub peak_in_flight: usize,
}

/// A bounded in-flight admission gate (see the module docs).
#[derive(Debug)]
pub struct AdmissionGate {
    limit: usize,
    in_flight: AtomicUsize,
    draining: AtomicBool,
    admitted: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_draining: AtomicU64,
    peak: AtomicUsize,
    /// Wakes [`AdmissionGate::await_idle`] when the in-flight count drops.
    idle: Mutex<()>,
    idle_cv: Condvar,
}

impl AdmissionGate {
    /// Creates a gate admitting at most `limit` concurrent requests. A limit
    /// of zero is legal and rejects every request — useful to take a server
    /// out of rotation (and to test overload handling deterministically).
    pub fn new(limit: usize) -> Arc<Self> {
        Arc::new(AdmissionGate {
            limit,
            in_flight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            admitted: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            peak: AtomicUsize::new(0),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
        })
    }

    /// Attempts to admit one request.
    pub fn try_admit(self: &Arc<Self>) -> Admission {
        if self.draining.load(Ordering::Acquire) {
            self.rejected_draining.fetch_add(1, Ordering::Relaxed);
            return Admission::Draining;
        }
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.limit {
                self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
                return Admission::Overloaded {
                    in_flight: current,
                    limit: self.limit,
                };
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.peak.fetch_max(current + 1, Ordering::Relaxed);
        Admission::Admitted(AdmissionPermit {
            gate: Arc::clone(self),
        })
    }

    /// Switches the gate into draining: every subsequent [`try_admit`]
    /// returns [`Admission::Draining`]; permits already handed out stay
    /// valid. Idempotent.
    ///
    /// [`try_admit`]: AdmissionGate::try_admit
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// True once [`begin_drain`](AdmissionGate::begin_drain) was called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Requests currently admitted.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// The configured cap.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Blocks until every admitted request has dropped its permit, or until
    /// `timeout` elapses; returns whether the gate is idle. Typically called
    /// after [`begin_drain`](AdmissionGate::begin_drain), when no new
    /// permits can appear.
    pub fn await_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.idle.lock().expect("gate mutex poisoned");
        while self.in_flight.load(Ordering::Acquire) > 0 {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (g, _) = self
                .idle_cv
                .wait_timeout(guard, remaining)
                .expect("gate mutex poisoned");
            guard = g;
        }
        true
    }

    /// Lifetime counters.
    pub fn stats(&self) -> GateStats {
        GateStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            peak_in_flight: self.peak.load(Ordering::Relaxed),
        }
    }

    fn release(&self) {
        let _guard = self.idle.lock().expect("gate mutex poisoned");
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.idle_cv.notify_all();
    }
}

/// RAII token for one admitted request; dropping it frees the slot.
#[derive(Debug)]
pub struct AdmissionPermit {
    gate: Arc<AdmissionGate>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn admits_up_to_the_limit_then_rejects() {
        let gate = AdmissionGate::new(2);
        let Admission::Admitted(a) = gate.try_admit() else {
            panic!("first admit must pass");
        };
        let Admission::Admitted(b) = gate.try_admit() else {
            panic!("second admit must pass");
        };
        match gate.try_admit() {
            Admission::Overloaded { in_flight, limit } => {
                assert_eq!((in_flight, limit), (2, 2));
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        drop(a);
        assert!(matches!(gate.try_admit(), Admission::Admitted(_)));
        drop(b);
        let stats = gate.stats();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.rejected_overloaded, 1);
        assert_eq!(stats.peak_in_flight, 2);
    }

    #[test]
    fn zero_limit_rejects_everything() {
        let gate = AdmissionGate::new(0);
        assert!(matches!(
            gate.try_admit(),
            Admission::Overloaded { limit: 0, .. }
        ));
        assert_eq!(gate.stats().admitted, 0);
    }

    #[test]
    fn draining_rejects_new_work_but_keeps_permits() {
        let gate = AdmissionGate::new(4);
        let Admission::Admitted(permit) = gate.try_admit() else {
            panic!("admit before drain");
        };
        gate.begin_drain();
        assert!(gate.is_draining());
        assert!(matches!(gate.try_admit(), Admission::Draining));
        assert_eq!(gate.in_flight(), 1);
        // Not idle while the permit lives; idle as soon as it drops.
        assert!(!gate.await_idle(Duration::from_millis(10)));
        drop(permit);
        assert!(gate.await_idle(Duration::from_millis(100)));
        assert_eq!(gate.stats().rejected_draining, 1);
    }

    #[test]
    fn await_idle_wakes_on_cross_thread_release() {
        let gate = AdmissionGate::new(1);
        let Admission::Admitted(permit) = gate.try_admit() else {
            panic!("admit");
        };
        let waiter = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || gate.await_idle(Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        drop(permit);
        assert!(waiter.join().unwrap(), "waiter saw the release");
    }
}
