//! The epoch-versioned server: lock-free-pinned readers, one writer.

use crate::snapshot::Snapshot;
use bgpq_access::{apply_deltas, AccessIndexSet, AccessSchema, GraphDelta, MaintenanceStats};
use bgpq_engine::{
    BgpqError, Engine, QueryRequest, QueryResponse, ShardConfig, ShardRuntime, SharedFragmentCache,
    SharedPlanCache,
};
use bgpq_graph::{Graph, NodeId, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One logical mutation of the served graph, expressed in caller terms
/// (labels and node ids) rather than low-level [`GraphDelta`]s — the server
/// derives those, including the implied edge deletions of a node removal.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Add a node with the given label name and attribute value. The id it
    /// receives is the next free one (`graph.node_count()` of the snapshot
    /// the commit builds on, plus any nodes added earlier in the batch) and
    /// is reported in [`CommitReceipt::new_nodes`].
    AddNode {
        /// Label name, interned on the fly.
        label: String,
        /// Attribute value `ν(v)`.
        value: Value,
    },
    /// Add the directed edge `(src, dst)`. Adding an edge that already
    /// exists is a no-op (the graph is simple), not an error.
    AddEdge {
        /// Source endpoint.
        src: NodeId,
        /// Destination endpoint.
        dst: NodeId,
    },
    /// Remove the directed edge `(src, dst)`. Removing an absent edge is a
    /// no-op.
    RemoveEdge {
        /// Source endpoint.
        src: NodeId,
        /// Destination endpoint.
        dst: NodeId,
    },
    /// Remove a node and every edge incident to it. The slot is tombstoned:
    /// ids of other nodes do not shift.
    RemoveNode {
        /// The node to remove.
        node: NodeId,
    },
}

/// What one successful [`Server::commit`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The epoch of the snapshot the commit published.
    pub version: u64,
    /// Ids assigned to [`Update::AddNode`] updates, in batch order.
    pub new_nodes: Vec<NodeId>,
    /// Number of low-level [`GraphDelta`]s the batch expanded to (node
    /// removals contribute one delta per removed incident edge plus one).
    pub deltas: usize,
    /// What incremental index maintenance recomputed.
    pub maintenance: MaintenanceStats,
    /// Nanoseconds spent in [`apply_deltas`] — the paper's
    /// `O(|ΔG ∪ Nb(ΔG)|)` incremental maintenance cost, to be compared with
    /// the cost of rebuilding every index from scratch.
    pub delta_apply_nanos: u64,
    /// Nanoseconds for the whole commit: copy-on-write clone of graph and
    /// indices (`O(|G| + |index|)`, the dominant cost on large graphs),
    /// mutation replay, incremental maintenance and the pointer swap.
    pub commit_nanos: u64,
}

/// Writer-side lifetime counters of a [`Server`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// The epoch of the current snapshot.
    pub epoch: u64,
    /// Successful commits (equals the epoch unless the server was created
    /// from a non-zero snapshot).
    pub commits: u64,
    /// Low-level deltas applied across all commits.
    pub deltas_applied: u64,
    /// Distinct `ΔG` nodes inspected by maintenance across all commits.
    pub nodes_touched: u64,
    /// `(constraint, node)` contributions recomputed across all commits.
    pub contributions_refreshed: u64,
    /// Total nanoseconds spent in incremental index maintenance.
    pub delta_apply_nanos: u64,
    /// Total nanoseconds spent in whole commits (clone + replay +
    /// maintenance + publish).
    pub commit_nanos: u64,
}

/// A multi-threaded serving frontend over one logical graph.
///
/// The server owns an epoch-versioned chain of [`Snapshot`]s, of which it
/// retains the newest; older snapshots stay alive exactly as long as some
/// reader still pins them (readers hold an `Arc`). The concurrency contract:
///
/// * **Readers never wait for the writer's work.** [`Server::snapshot`]
///   clones an `Arc` under a read lock held for nanoseconds; the writer's
///   copy-on-write mutation and index maintenance happen entirely outside
///   that lock, which it takes only for the final pointer swap.
/// * **Writes are serialized and atomic.** One internal writer lock orders
///   [`Server::commit`] calls; a failing update (missing endpoint, deleted
///   node) aborts the whole batch with no published change.
/// * **Indices are maintained, not rebuilt.** A commit clones the current
///   graph and indices, applies the batch as graph mutations, and repairs
///   the clone's indices with
///   [`apply_deltas`] — work proportional to `|ΔG ∪ Nb(ΔG)|`, not `|G|`.
///   The clone itself *is* `O(|G| + |index|)` (a deliberate simplicity
///   trade-off: snapshots stay flat, cache-friendly structures; see
///   [`CommitReceipt::commit_nanos`] vs
///   [`CommitReceipt::delta_apply_nanos`] for the split) — structurally
///   shared adjacency would shave that and is the natural next step if
///   writer throughput on big graphs becomes the bottleneck.
/// * **Caches stay correct across epochs.** All snapshot engines share one
///   [`SharedPlanCache`] *and* one [`SharedFragmentCache`]; slots are keyed
///   by snapshot version, so a commit that changes index coverage or graph
///   content makes every affected plan (and unbounded verdict) and every
///   cached candidate set re-derive at the new version — retiring the
///   superseded entries, the commit-piggybacked invalidation — while
///   readers pinned to old snapshots keep their own cache population
///   instead of fighting the current readers for slots.
///
/// ```
/// use bgpq_engine::{AccessConstraint, AccessSchema, Value};
/// use bgpq_graph::GraphBuilder;
/// use bgpq_serve::Server;
///
/// let mut b = GraphBuilder::new();
/// let y = b.add_node("year", Value::Int(2012));
/// let m = b.add_node("movie", Value::str("Argo"));
/// b.add_edge(y, m).unwrap();
/// let graph = b.build();
/// let year = graph.interner().get("year").unwrap();
/// let schema = AccessSchema::from_constraints([AccessConstraint::global(year, 10)]);
///
/// let server = Server::new(graph, &schema);
/// // Readers pin a snapshot once and keep it for as long as they like.
/// let pinned = server.snapshot();
/// assert_eq!(pinned.version(), 0);
/// assert_eq!(server.version(), 0);
/// ```
pub struct Server {
    current: RwLock<Arc<Snapshot>>,
    cache: SharedPlanCache,
    fragments: SharedFragmentCache,
    /// Serializes writers; held across the whole copy-on-write commit.
    writer: Mutex<()>,
    /// Partitioned-execution knobs, when the server was built with
    /// [`Server::with_shard_config`]. Every published snapshot's engine then
    /// carries a [`ShardRuntime`]; commits maintain the per-shard indices
    /// incrementally (one worker per shard) instead of rebuilding them.
    shard: Option<ShardConfig>,
    commits: AtomicU64,
    commit_nanos: AtomicU64,
    deltas_applied: AtomicU64,
    nodes_touched: AtomicU64,
    contributions_refreshed: AtomicU64,
    delta_apply_nanos: AtomicU64,
}

impl Server {
    /// Creates a server for `graph` under `schema`, building the version-0
    /// snapshot's indices (the one-off setup cost; every later version is
    /// maintained incrementally).
    pub fn new(graph: Graph, schema: &AccessSchema) -> Self {
        let indices = AccessIndexSet::build(&graph, schema);
        Self::with_indices(graph, indices)
    }

    /// Creates a server from pre-built indices.
    pub fn with_indices(graph: Graph, indices: AccessIndexSet) -> Self {
        let cache = SharedPlanCache::default();
        let fragments = SharedFragmentCache::default();
        let engine =
            Engine::with_caches_at_version(graph, indices, 0, cache.clone(), fragments.clone());
        Server {
            current: RwLock::new(Arc::new(Snapshot::new(engine))),
            cache,
            fragments,
            writer: Mutex::new(()),
            shard: None,
            commits: AtomicU64::new(0),
            commit_nanos: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            nodes_touched: AtomicU64::new(0),
            contributions_refreshed: AtomicU64::new(0),
            delta_apply_nanos: AtomicU64::new(0),
        }
    }

    /// Creates a server from a loaded snapshot bundle (`bgpq compile`
    /// output): graph, schema and indices arrive fully built, so version 0
    /// starts serving without any discovery or index-construction cost.
    pub fn from_snapshot(bundle: bgpq_engine::SnapshotBundle) -> Self {
        Self::with_indices(bundle.graph, bundle.indices)
    }

    /// Turns on partitioned execution for every snapshot this server
    /// publishes: the current snapshot's engine is rebuilt with a
    /// [`ShardRuntime`] under `config`, and each commit maintains the
    /// per-shard indices incrementally (one worker per shard) before
    /// attaching a refreshed runtime to the next snapshot's engine. Answers
    /// are identical to the unsharded server at every version.
    pub fn with_shard_config(mut self, config: ShardConfig) -> Self {
        let base = self.snapshot();
        let engine = Engine::with_caches_at_version(
            base.graph().clone(),
            base.indices().clone(),
            base.version(),
            self.cache.clone(),
            self.fragments.clone(),
        )
        .with_sharding(config);
        *self.current.get_mut().expect("snapshot pointer poisoned") =
            Arc::new(Snapshot::new(engine));
        self.shard = Some(config);
        self
    }

    /// The partitioned-execution knobs, when sharding is enabled.
    pub fn shard_config(&self) -> Option<ShardConfig> {
        self.shard
    }

    /// Pins the current snapshot. The returned `Arc` keeps that version
    /// alive (graph, indices and engine) for as long as the reader holds it,
    /// no matter how many commits land in the meantime.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot pointer poisoned"))
    }

    /// The epoch of the current snapshot.
    pub fn version(&self) -> u64 {
        self.snapshot().version()
    }

    /// Executes one request against the current snapshot (pin + execute).
    /// Callers issuing several requests that must observe the *same* version
    /// should pin a [`Server::snapshot`] once and execute on it directly.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, BgpqError> {
        self.snapshot().execute(request)
    }

    /// Executes a batch of requests against one pinned snapshot (all slots
    /// observe the same version even if commits land mid-batch), sharing
    /// index lookups between the queries' fetches — see
    /// [`Engine::execute_batch`](bgpq_engine::Engine::execute_batch).
    pub fn execute_batch(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<QueryResponse, BgpqError>> {
        self.snapshot().execute_batch(requests)
    }

    /// Applies a batch of updates atomically, publishing the next snapshot.
    ///
    /// The commit runs entirely on a private copy: clone the current graph
    /// and indices, replay the updates as graph mutations (collecting the
    /// equivalent [`GraphDelta`]s — a node removal expands to its incident
    /// edge deletions first, so maintenance sees the full `ΔG`), repair the
    /// indices incrementally, build the next engine and swap the snapshot
    /// pointer. Readers keep executing against their pinned versions
    /// throughout; an error leaves the served state untouched.
    ///
    /// ```
    /// use bgpq_engine::{AccessConstraint, AccessSchema, NodeId, Value};
    /// use bgpq_graph::GraphBuilder;
    /// use bgpq_serve::{Server, Update};
    ///
    /// let mut b = GraphBuilder::new();
    /// let y = b.add_node("year", Value::Int(2012));
    /// b.add_node("movie", Value::str("Argo"));
    /// let graph = b.build();
    /// let year = graph.interner().get("year").unwrap();
    /// let schema = AccessSchema::from_constraints([AccessConstraint::global(year, 10)]);
    /// let server = Server::new(graph, &schema);
    ///
    /// // A reader pins version 0; the writer publishes version 1.
    /// let pinned = server.snapshot();
    /// let receipt = server
    ///     .commit(&[
    ///         Update::AddNode { label: "movie".into(), value: Value::str("Gravity") },
    ///         Update::AddEdge { src: NodeId(0), dst: NodeId(2) },
    ///     ])
    ///     .unwrap();
    /// assert_eq!(receipt.version, 1);
    /// assert_eq!(receipt.new_nodes, vec![NodeId(2)]);
    /// assert_eq!(receipt.deltas, 2);
    ///
    /// // The pinned snapshot still sees the old graph; the server the new.
    /// assert_eq!(pinned.graph().node_count(), 2);
    /// assert_eq!(server.snapshot().graph().node_count(), 3);
    /// ```
    pub fn commit(&self, updates: &[Update]) -> Result<CommitReceipt, BgpqError> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let commit_started = Instant::now();
        let base = self.snapshot();
        let mut graph = base.graph().clone();
        let mut indices = base.indices().clone();

        let mut deltas: Vec<GraphDelta> = Vec::with_capacity(updates.len());
        let mut new_nodes = Vec::new();
        for update in updates {
            match update {
                Update::AddNode { label, value } => {
                    let id = graph.insert_node(label, value.clone());
                    new_nodes.push(id);
                    deltas.push(GraphDelta::InsertNode(id));
                }
                Update::AddEdge { src, dst } => {
                    if graph.insert_edge(*src, *dst)? {
                        deltas.push(GraphDelta::InsertEdge(*src, *dst));
                    }
                }
                Update::RemoveEdge { src, dst } => {
                    if graph.delete_edge(*src, *dst)? {
                        deltas.push(GraphDelta::DeleteEdge(*src, *dst));
                    }
                }
                Update::RemoveNode { node } => {
                    for edge in graph.delete_node(*node)? {
                        deltas.push(GraphDelta::DeleteEdge(edge.src, edge.dst));
                    }
                    deltas.push(GraphDelta::DeleteNode(*node));
                }
            }
        }

        let started = Instant::now();
        let maintenance = apply_deltas(&mut indices, &graph, &deltas);
        let delta_apply_nanos = started.elapsed().as_nanos() as u64;

        let version = base.version() + 1;
        let mut engine = Engine::with_caches_at_version(
            graph,
            indices,
            version,
            self.cache.clone(),
            self.fragments.clone(),
        );
        if let Some(config) = self.shard {
            // Maintain the previous runtime's per-shard indices (one worker
            // per shard) rather than rebuilding them; only the sharded
            // topology is reassembled against the new graph.
            let runtime = match base.engine().shard_runtime() {
                Some(prev) => {
                    let mut sharded = prev.indices().clone();
                    sharded.apply_deltas(engine.graph(), &deltas, config.threads);
                    ShardRuntime::from_indices(engine.graph(), sharded, config.threads)
                }
                None => ShardRuntime::build(engine.graph(), engine.indices().schema(), config),
            };
            engine = engine.with_shard_runtime(Arc::new(runtime));
        }
        let next = Arc::new(Snapshot::new(engine));
        *self.current.write().expect("snapshot pointer poisoned") = next;
        let commit_nanos = commit_started.elapsed().as_nanos() as u64;

        self.commits.fetch_add(1, Ordering::Relaxed);
        self.deltas_applied
            .fetch_add(deltas.len() as u64, Ordering::Relaxed);
        self.nodes_touched
            .fetch_add(maintenance.touched_nodes as u64, Ordering::Relaxed);
        self.contributions_refreshed.fetch_add(
            maintenance.refreshed_contributions as u64,
            Ordering::Relaxed,
        );
        self.delta_apply_nanos
            .fetch_add(delta_apply_nanos, Ordering::Relaxed);
        self.commit_nanos.fetch_add(commit_nanos, Ordering::Relaxed);

        Ok(CommitReceipt {
            version,
            new_nodes,
            deltas: deltas.len(),
            maintenance,
            delta_apply_nanos,
            commit_nanos,
        })
    }

    /// Writer-side lifetime counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            epoch: self.version(),
            commits: self.commits.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            nodes_touched: self.nodes_touched.load(Ordering::Relaxed),
            contributions_refreshed: self.contributions_refreshed.load(Ordering::Relaxed),
            delta_apply_nanos: self.delta_apply_nanos.load(Ordering::Relaxed),
            commit_nanos: self.commit_nanos.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("snapshot", &*self.snapshot())
            .field("commits", &self.commits.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_access::AccessConstraint;
    use bgpq_engine::{StrategyKind, SubgraphMatcher};
    use bgpq_graph::GraphBuilder;
    use bgpq_pattern::{PatternBuilder, Predicate};

    /// year → movie → actor star with one extra disconnected year.
    fn fixture() -> (Graph, AccessSchema) {
        let mut b = GraphBuilder::new();
        let y = b.add_node("year", Value::Int(2012));
        let m = b.add_node("movie", Value::str("Argo"));
        let a = b.add_node("actor", Value::str("Affleck"));
        b.add_node("year", Value::Int(1999));
        b.add_edge(y, m).unwrap();
        b.add_edge(m, a).unwrap();
        let g = b.build();
        let l = |name: &str| g.interner().get(name).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(l("year"), 10),
            AccessConstraint::unary(l("year"), l("movie"), 5),
            AccessConstraint::unary(l("movie"), l("actor"), 5),
        ]);
        (g, schema)
    }

    fn year_movie_actor_query(graph: &Graph, year: i64) -> QueryRequest {
        let mut pb = PatternBuilder::with_interner(graph.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, year));
        let a = pb.node("actor", Predicate::always());
        pb.edge(y, m);
        pb.edge(m, a);
        QueryRequest::build(pb.build()).finish()
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Server>();
        assert_send_sync::<Arc<Snapshot>>();
    }

    #[test]
    fn commit_publishes_new_version_and_answers_change() {
        let (g, schema) = fixture();
        let server = Server::new(g, &schema);
        assert_eq!(server.version(), 0);

        let request = year_movie_actor_query(server.snapshot().graph(), 2012);
        let before = server.execute(&request).unwrap();
        assert_eq!(before.answer.len(), 1);
        assert_eq!(before.stats.snapshot_version, 0);

        // Attach a second movie+actor to the 2012 year node.
        let base = server.snapshot();
        let next_id = base.graph().node_count() as u32;
        let receipt = server
            .commit(&[
                Update::AddNode {
                    label: "movie".into(),
                    value: Value::str("Gravity"),
                },
                Update::AddNode {
                    label: "actor".into(),
                    value: Value::str("Bullock"),
                },
                Update::AddEdge {
                    src: NodeId(0),
                    dst: NodeId(next_id),
                },
                Update::AddEdge {
                    src: NodeId(next_id),
                    dst: NodeId(next_id + 1),
                },
            ])
            .unwrap();
        assert_eq!(receipt.version, 1);
        assert_eq!(receipt.new_nodes, vec![NodeId(4), NodeId(5)]);
        assert_eq!(receipt.deltas, 4);
        assert!(receipt.maintenance.refreshed_contributions > 0);

        // The pinned old snapshot still sees the old answer...
        let old = base.execute(&request).unwrap();
        assert_eq!(old.answer.len(), 1);
        // ...while the current snapshot sees the new one, via the bounded
        // strategy backed by incrementally maintained indices.
        let after = server
            .execute(
                &QueryRequest::build(request.pattern().clone())
                    .strategy(StrategyKind::Bounded)
                    .finish(),
            )
            .unwrap();
        assert_eq!(after.answer.len(), 2);
        assert_eq!(after.stats.snapshot_version, 1);

        // The maintained answer agrees with a direct whole-graph match.
        let snapshot = server.snapshot();
        let direct = SubgraphMatcher::new(request.pattern(), snapshot.graph()).find_all();
        assert_eq!(after.answer.as_matches(), Some(&direct));
    }

    #[test]
    fn failed_commit_leaves_state_untouched() {
        let (g, schema) = fixture();
        let server = Server::new(g, &schema);
        let before_edges = server.snapshot().graph().edge_count();
        let err = server.commit(&[Update::AddEdge {
            src: NodeId(0),
            dst: NodeId(99),
        }]);
        assert!(err.is_err());
        assert_eq!(server.version(), 0);
        assert_eq!(server.snapshot().graph().edge_count(), before_edges);
        assert_eq!(server.stats().commits, 0);
    }

    #[test]
    fn node_removal_expands_to_edge_deltas() {
        let (g, schema) = fixture();
        let server = Server::new(g, &schema);
        let receipt = server
            .commit(&[Update::RemoveNode { node: NodeId(1) }])
            .unwrap();
        // movie1 had 2 incident edges: 2 DeleteEdge + 1 DeleteNode.
        assert_eq!(receipt.deltas, 3);
        let snapshot = server.snapshot();
        assert!(!snapshot.graph().is_live(NodeId(1)));
        assert_eq!(snapshot.graph().edge_count(), 0);
        // The maintained indices equal a fresh build on the mutated graph.
        let rebuilt = AccessIndexSet::build(snapshot.graph(), snapshot.indices().schema());
        for (id, fresh) in rebuilt.iter() {
            let kept = snapshot.indices().get(id).unwrap();
            assert_eq!(kept.key_count(), fresh.key_count());
            assert_eq!(kept.size(), fresh.size());
        }
    }

    #[test]
    fn version_bump_invalidates_shared_fragment_cache() {
        let (g, schema) = fixture();
        let server = Server::new(g, &schema);
        let request = year_movie_actor_query(server.snapshot().graph(), 2012);

        server.execute(&request).unwrap(); // miss, fragment cached at v0
        server.execute(&request).unwrap(); // hit
        assert_eq!(server.snapshot().engine().stats().fragment_cache_hits, 1);

        // Attach a second movie+actor to the 2012 year node: the cached v0
        // fragment no longer describes the graph.
        let next = server.snapshot().graph().node_count() as u32;
        server
            .commit(&[
                Update::AddNode {
                    label: "movie".into(),
                    value: Value::str("Gravity"),
                },
                Update::AddNode {
                    label: "actor".into(),
                    value: Value::str("Bullock"),
                },
                Update::AddEdge {
                    src: NodeId(0),
                    dst: NodeId(next),
                },
                Update::AddEdge {
                    src: NodeId(next),
                    dst: NodeId(next + 1),
                },
            ])
            .unwrap();

        // The v1 probe misses (stale fragments are invisible), re-fetches,
        // and the answer reflects the committed change — never the cache.
        let after = server.execute(&request).unwrap();
        assert_eq!(after.answer.len(), 2);
        assert_eq!(after.stats.snapshot_version, 1);
        let stats = server.snapshot().engine().stats();
        assert_eq!(
            stats.fragment_cache_invalidations, 1,
            "the v0 fragment must be retired by the v1 re-fetch"
        );
        // And the re-fetched v1 fragment serves hits again.
        let again = server.execute(&request).unwrap();
        assert_eq!(again.answer.len(), 2);
        assert_eq!(server.snapshot().engine().stats().fragment_cache_hits, 2);
    }

    /// A reader pinned before a commit keeps answering from its own
    /// version's fragments while the current snapshot re-fetches: the two
    /// cache populations coexist, and neither sees the other's data.
    #[test]
    fn pinned_reader_keeps_stale_fragments_without_polluting_current() {
        let (g, schema) = fixture();
        let server = Server::new(g, &schema);
        let request = year_movie_actor_query(server.snapshot().graph(), 2012);

        let pinned = server.snapshot();
        pinned.execute(&request).unwrap(); // fragment cached at v0
        let next = server.snapshot().graph().node_count() as u32;
        server
            .commit(&[
                Update::AddNode {
                    label: "movie".into(),
                    value: Value::str("Gravity"),
                },
                Update::AddEdge {
                    src: NodeId(0),
                    dst: NodeId(next),
                },
            ])
            .unwrap();

        // The pinned reader's repeat is a hit on the v0 fragment and still
        // sees the old answer; the current snapshot computes the new one.
        let old = pinned.execute(&request).unwrap();
        assert_eq!(old.answer.len(), 1);
        assert_eq!(old.stats.snapshot_version, 0);
        let new = server.execute(&request).unwrap();
        assert_eq!(new.stats.snapshot_version, 1);
        // Gravity has no actor yet, so the answer is still the Argo match —
        // but it must come from a fresh v1 fetch, not the stale fragment.
        assert_eq!(new.answer.len(), 1);
        assert_ne!(
            new.stats.fragment_cache,
            Some(bgpq_engine::CacheOutcome::Hit),
            "v1 must not be served the v0 fragment"
        );
    }

    /// The satellite regression at the serving level: after N commits, the
    /// current version's repeated queries must keep hitting the fragment
    /// cache — stale-version leftovers are evicted first, so version churn
    /// cannot collapse the current working set's hit rate.
    #[test]
    fn current_version_fragment_hit_rate_survives_commits() {
        let (g, schema) = fixture();
        let server = Server::new(g, &schema);
        let request = year_movie_actor_query(server.snapshot().graph(), 2012);
        for _ in 0..5 {
            // Warm the fragment at the current version, then commit.
            server.execute(&request).unwrap();
            server
                .commit(&[Update::AddNode {
                    label: "year".into(),
                    value: Value::Int(1900),
                }])
                .unwrap();
        }
        // At the final version: one warming miss, then only hits.
        server.execute(&request).unwrap();
        let stats_before = server.snapshot().engine().stats();
        for _ in 0..3 {
            let r = server.execute(&request).unwrap();
            assert_eq!(r.stats.fragment_cache, Some(bgpq_engine::CacheOutcome::Hit));
        }
        let stats = server.snapshot().engine().stats();
        assert_eq!(
            stats.fragment_cache_hits,
            stats_before.fragment_cache_hits + 3
        );
        assert_eq!(
            stats.fragment_cache_invalidations, 5,
            "each commit's re-fetch retires exactly the superseded fragment"
        );
    }

    /// A sharded server must answer exactly like the unsharded one at every
    /// version, and its commits must maintain (not rebuild) the per-shard
    /// indices so they stay equal to a fresh sharded build.
    #[test]
    fn sharded_server_answers_equal_unsharded_across_commits() {
        let (g, schema) = fixture();
        let plain = Server::new(g.clone(), &schema);
        let sharded = Server::new(g, &schema).with_shard_config(ShardConfig::new(3, 2));
        assert_eq!(sharded.shard_config(), Some(ShardConfig::new(3, 2)));
        assert!(sharded.snapshot().engine().shard_runtime().is_some());

        let request = year_movie_actor_query(plain.snapshot().graph(), 2012);
        let updates = [
            Update::AddNode {
                label: "movie".into(),
                value: Value::str("Gravity"),
            },
            Update::AddNode {
                label: "actor".into(),
                value: Value::str("Bullock"),
            },
            Update::AddEdge {
                src: NodeId(0),
                dst: NodeId(4),
            },
            Update::AddEdge {
                src: NodeId(4),
                dst: NodeId(5),
            },
        ];
        for server in [&plain, &sharded] {
            server.commit(&updates).unwrap();
            server
                .commit(&[Update::RemoveNode { node: NodeId(1) }])
                .unwrap();
        }

        let a = plain.execute(&request).unwrap();
        let b = sharded.execute(&request).unwrap();
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(b.stats.snapshot_version, 2);

        // Maintained per-shard indices equal a fresh sharded build.
        let snap = sharded.snapshot();
        let rt = snap.engine().shard_runtime().unwrap();
        let fresh = bgpq_engine::ShardRuntime::build(
            snap.graph(),
            snap.indices().schema(),
            ShardConfig::new(3, 2),
        );
        for (kept, built) in rt.indices().shards().iter().zip(fresh.indices().shards()) {
            for (id, fresh_ix) in built.iter() {
                let kept_ix = kept.get(id).unwrap();
                assert_eq!(kept_ix.key_count(), fresh_ix.key_count());
                assert_eq!(kept_ix.size(), fresh_ix.size());
            }
        }
    }

    #[test]
    fn version_bump_invalidates_shared_plan_cache() {
        let (g, schema) = fixture();
        let server = Server::new(g, &schema);
        let request = year_movie_actor_query(server.snapshot().graph(), 2012);

        server.execute(&request).unwrap(); // miss, cached at v0
        server.execute(&request).unwrap(); // hit
        assert_eq!(server.snapshot().engine().stats().plan_cache_hits, 1);

        server
            .commit(&[Update::AddNode {
                label: "year".into(),
                value: Value::Int(2020),
            }])
            .unwrap();
        let response = server.execute(&request).unwrap();
        assert_eq!(response.answer.len(), 1);
        let stats = server.snapshot().engine().stats();
        assert_eq!(stats.snapshot_version, 1);
        assert_eq!(
            stats.plan_cache_invalidations, 1,
            "the v0 plan must be dropped on the v1 probe"
        );
    }
}
