//! A minimal worker pool executing requests against pinned snapshots.
//!
//! The pool exists so callers get the serving contract without hand-rolling
//! threads: each worker pins the **current** snapshot per request (so
//! long-lived workers pick up new versions as the writer publishes them) and
//! replies through a per-request channel. The workspace is dependency-free,
//! so the queue is a `std::sync::mpsc` channel shared behind a mutex — job
//! *pickup* is serialized, execution is parallel, which is the right
//! trade-off for queries that cost orders of magnitude more than a channel
//! receive.

use crate::server::Server;
use crate::snapshot::Snapshot;
use bgpq_engine::{BgpqError, QueryRequest, QueryResponse};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// The outcome a worker sends back for one request.
pub type PoolResult = Result<QueryResponse, BgpqError>;

enum Job {
    Single {
        /// Pre-pinned snapshot to execute on; `None` pins the current one at
        /// pickup time.
        snapshot: Option<Arc<Snapshot>>,
        request: QueryRequest,
        reply: mpsc::Sender<PoolResult>,
    },
    /// A whole batch is one job: it stays on one worker and one snapshot, so
    /// the queries share the engine's batch lookup memo and all observe the
    /// same version.
    Batch {
        snapshot: Option<Arc<Snapshot>>,
        requests: Vec<QueryRequest>,
        reply: mpsc::Sender<Vec<PoolResult>>,
    },
}

/// A fixed-size pool of worker threads serving queries from a shared
/// [`Server`].
///
/// ```
/// use bgpq_engine::{AccessConstraint, AccessSchema, QueryRequest};
/// use bgpq_graph::{GraphBuilder, Value};
/// use bgpq_pattern::{PatternBuilder, Predicate};
/// use bgpq_serve::{Server, WorkerPool};
/// use std::sync::Arc;
///
/// let mut b = GraphBuilder::new();
/// let y = b.add_node("year", Value::Int(2012));
/// let m = b.add_node("movie", Value::str("Argo"));
/// b.add_edge(y, m).unwrap();
/// let graph = b.build();
/// let year = graph.interner().get("year").unwrap();
/// let movie = graph.interner().get("movie").unwrap();
/// let schema = AccessSchema::from_constraints([
///     AccessConstraint::global(year, 10),
///     AccessConstraint::unary(year, movie, 5),
/// ]);
/// let server = Arc::new(Server::new(graph, &schema));
///
/// let pool = WorkerPool::new(Arc::clone(&server), 2);
/// let mut pb = PatternBuilder::with_interner(server.snapshot().graph().interner().clone());
/// let pm = pb.node("movie", Predicate::always());
/// let py = pb.node("year", Predicate::always());
/// pb.edge(py, pm);
/// let reply = pool.submit(QueryRequest::build(pb.build()).finish());
/// let response = reply.recv().unwrap().unwrap();
/// assert_eq!(response.answer.len(), 1);
/// assert_eq!(pool.shutdown(), 1);
/// ```
pub struct WorkerPool {
    jobs: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<u64>>,
}

impl WorkerPool {
    /// Spawns `workers` threads serving queries from `server`.
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn new(server: Arc<Server>, workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        let (jobs, queue) = mpsc::channel::<Job>();
        let queue = Arc::new(Mutex::new(queue));
        let workers = (0..workers)
            .map(|_| {
                let server = Arc::clone(&server);
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut served = 0u64;
                    loop {
                        // Hold the queue lock only for the receive: the next
                        // worker can pick a job up while this one executes.
                        let job = queue.lock().expect("job queue poisoned").recv();
                        let Ok(job) = job else {
                            break; // all senders dropped: shutdown
                        };
                        match job {
                            Job::Single {
                                snapshot,
                                request,
                                reply,
                            } => {
                                let snapshot = snapshot.unwrap_or_else(|| server.snapshot());
                                let result = snapshot.execute(&request);
                                served += 1;
                                // The caller may have dropped its receiver.
                                let _ = reply.send(result);
                            }
                            Job::Batch {
                                snapshot,
                                requests,
                                reply,
                            } => {
                                let snapshot = snapshot.unwrap_or_else(|| server.snapshot());
                                let results = snapshot.execute_batch(&requests);
                                served += requests.len() as u64;
                                let _ = reply.send(results);
                            }
                        }
                    }
                    served
                })
            })
            .collect();
        WorkerPool {
            jobs: Some(jobs),
            workers,
        }
    }

    /// Enqueues one request; the returned channel yields its result. Each
    /// request is executed against the snapshot that is current when a
    /// worker picks it up.
    pub fn submit(&self, request: QueryRequest) -> mpsc::Receiver<PoolResult> {
        self.enqueue(None, request)
    }

    /// Enqueues one request to run against an explicitly pinned snapshot
    /// instead of whichever is current at pickup. This is the hook the
    /// network front end uses: the session pins a snapshot once, the pool
    /// executes on it, and the session can then render labels and values
    /// from the *same* version the answer was computed on — immune to
    /// commits landing in between.
    pub fn submit_pinned(
        &self,
        snapshot: Arc<Snapshot>,
        request: QueryRequest,
    ) -> mpsc::Receiver<PoolResult> {
        self.enqueue(Some(snapshot), request)
    }

    /// Enqueues a batch of requests as **one** job: a single worker executes
    /// them via [`Snapshot::execute_batch`] on a single snapshot pinned at
    /// pickup, so the queries share index lookups and all observe the same
    /// version. The returned channel yields the whole result vector at once,
    /// in request order.
    pub fn submit_batch(&self, requests: Vec<QueryRequest>) -> mpsc::Receiver<Vec<PoolResult>> {
        self.enqueue_batch(None, requests)
    }

    /// [`WorkerPool::submit_batch`] against an explicitly pinned snapshot —
    /// the batch analogue of [`WorkerPool::submit_pinned`].
    pub fn submit_batch_pinned(
        &self,
        snapshot: Arc<Snapshot>,
        requests: Vec<QueryRequest>,
    ) -> mpsc::Receiver<Vec<PoolResult>> {
        self.enqueue_batch(Some(snapshot), requests)
    }

    fn enqueue(
        &self,
        snapshot: Option<Arc<Snapshot>>,
        request: QueryRequest,
    ) -> mpsc::Receiver<PoolResult> {
        let (reply, result) = mpsc::channel();
        self.send_job(Job::Single {
            snapshot,
            request,
            reply,
        });
        result
    }

    fn enqueue_batch(
        &self,
        snapshot: Option<Arc<Snapshot>>,
        requests: Vec<QueryRequest>,
    ) -> mpsc::Receiver<Vec<PoolResult>> {
        let (reply, result) = mpsc::channel();
        self.send_job(Job::Batch {
            snapshot,
            requests,
            reply,
        });
        result
    }

    fn send_job(&self, job: Job) {
        self.jobs
            .as_ref()
            .expect("pool is shutting down")
            .send(job)
            .expect("workers outlive the job sender");
    }

    /// Drains the queue, joins every worker and returns the total number of
    /// requests served.
    pub fn shutdown(mut self) -> u64 {
        self.jobs.take();
        self.workers
            .drain(..)
            .map(|w| w.join().expect("worker panicked"))
            .sum()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.jobs.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
