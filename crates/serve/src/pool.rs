//! A minimal worker pool executing requests against pinned snapshots.
//!
//! The pool exists so callers get the serving contract without hand-rolling
//! threads: each worker pins the **current** snapshot per request (so
//! long-lived workers pick up new versions as the writer publishes them) and
//! replies through a per-request channel. The workspace is dependency-free,
//! so the queue is a `std::sync::mpsc` channel shared behind a mutex — job
//! *pickup* is serialized, execution is parallel, which is the right
//! trade-off for queries that cost orders of magnitude more than a channel
//! receive.

use crate::server::Server;
use crate::snapshot::Snapshot;
use bgpq_engine::{BgpqError, QueryRequest, QueryResponse};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// The outcome a worker sends back for one request.
pub type PoolResult = Result<QueryResponse, BgpqError>;

struct Job {
    /// Pre-pinned snapshot to execute on; `None` pins the current one at
    /// pickup time.
    snapshot: Option<Arc<Snapshot>>,
    request: QueryRequest,
    reply: mpsc::Sender<PoolResult>,
}

/// A fixed-size pool of worker threads serving queries from a shared
/// [`Server`].
///
/// ```
/// use bgpq_engine::{AccessConstraint, AccessSchema, QueryRequest};
/// use bgpq_graph::{GraphBuilder, Value};
/// use bgpq_pattern::{PatternBuilder, Predicate};
/// use bgpq_serve::{Server, WorkerPool};
/// use std::sync::Arc;
///
/// let mut b = GraphBuilder::new();
/// let y = b.add_node("year", Value::Int(2012));
/// let m = b.add_node("movie", Value::str("Argo"));
/// b.add_edge(y, m).unwrap();
/// let graph = b.build();
/// let year = graph.interner().get("year").unwrap();
/// let movie = graph.interner().get("movie").unwrap();
/// let schema = AccessSchema::from_constraints([
///     AccessConstraint::global(year, 10),
///     AccessConstraint::unary(year, movie, 5),
/// ]);
/// let server = Arc::new(Server::new(graph, &schema));
///
/// let pool = WorkerPool::new(Arc::clone(&server), 2);
/// let mut pb = PatternBuilder::with_interner(server.snapshot().graph().interner().clone());
/// let pm = pb.node("movie", Predicate::always());
/// let py = pb.node("year", Predicate::always());
/// pb.edge(py, pm);
/// let reply = pool.submit(QueryRequest::build(pb.build()).finish());
/// let response = reply.recv().unwrap().unwrap();
/// assert_eq!(response.answer.len(), 1);
/// assert_eq!(pool.shutdown(), 1);
/// ```
pub struct WorkerPool {
    jobs: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<u64>>,
}

impl WorkerPool {
    /// Spawns `workers` threads serving queries from `server`.
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn new(server: Arc<Server>, workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        let (jobs, queue) = mpsc::channel::<Job>();
        let queue = Arc::new(Mutex::new(queue));
        let workers = (0..workers)
            .map(|_| {
                let server = Arc::clone(&server);
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut served = 0u64;
                    loop {
                        // Hold the queue lock only for the receive: the next
                        // worker can pick a job up while this one executes.
                        let job = queue.lock().expect("job queue poisoned").recv();
                        let Ok(job) = job else {
                            break; // all senders dropped: shutdown
                        };
                        let snapshot = job.snapshot.unwrap_or_else(|| server.snapshot());
                        let result = snapshot.execute(&job.request);
                        served += 1;
                        // The caller may have dropped its reply receiver.
                        let _ = job.reply.send(result);
                    }
                    served
                })
            })
            .collect();
        WorkerPool {
            jobs: Some(jobs),
            workers,
        }
    }

    /// Enqueues one request; the returned channel yields its result. Each
    /// request is executed against the snapshot that is current when a
    /// worker picks it up.
    pub fn submit(&self, request: QueryRequest) -> mpsc::Receiver<PoolResult> {
        self.enqueue(None, request)
    }

    /// Enqueues one request to run against an explicitly pinned snapshot
    /// instead of whichever is current at pickup. This is the hook the
    /// network front end uses: the session pins a snapshot once, the pool
    /// executes on it, and the session can then render labels and values
    /// from the *same* version the answer was computed on — immune to
    /// commits landing in between.
    pub fn submit_pinned(
        &self,
        snapshot: Arc<Snapshot>,
        request: QueryRequest,
    ) -> mpsc::Receiver<PoolResult> {
        self.enqueue(Some(snapshot), request)
    }

    fn enqueue(
        &self,
        snapshot: Option<Arc<Snapshot>>,
        request: QueryRequest,
    ) -> mpsc::Receiver<PoolResult> {
        let (reply, result) = mpsc::channel();
        self.jobs
            .as_ref()
            .expect("pool is shutting down")
            .send(Job {
                snapshot,
                request,
                reply,
            })
            .expect("workers outlive the job sender");
        result
    }

    /// Drains the queue, joins every worker and returns the total number of
    /// requests served.
    pub fn shutdown(mut self) -> u64 {
        self.jobs.take();
        self.workers
            .drain(..)
            .map(|w| w.join().expect("worker panicked"))
            .sum()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.jobs.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
