//! # bgpq-serve
//!
//! The concurrent serving subsystem of the `bgpq` workspace: the first
//! stateful, mutable execution path over the bounded-evaluation pipeline of
//! *Making Pattern Queries Bounded in Big Graphs* (ICDE 2015).
//!
//! Everything below `bgpq-serve` evaluates queries over an **immutable**
//! graph. Section II of the paper, however, argues that access-schema
//! indices survive change: after an update `ΔG` it suffices to recompute
//! index contributions inside `ΔG ∪ Nb(ΔG)` — the changed nodes/edges and
//! their neighbors — no matter how large `G` is. This crate turns that claim
//! into a serving architecture:
//!
//! ```text
//!            readers (worker threads)                     single writer
//!   ┌────────────┬────────────┬──────────┐            ┌────────────────┐
//!   │ pin Arc<Snapshot> · execute · drop │            │ commit(updates)│
//!   └──────┬─────┴──────┬─────┴────┬─────┘            └───────┬────────┘
//!          ▼            ▼          ▼                          ▼
//!    Snapshot v2   Snapshot v2  Snapshot v1   clone graph+indices of v2
//!          ▲            ▲          ▲          apply mutations  → deltas
//!          │            │          │          apply_deltas (ΔG ∪ Nb(ΔG))
//!          └───── epoch-versioned chain ◄──── publish Snapshot v3
//! ```
//!
//! * [`Snapshot`] — one immutable graph version: the graph, its
//!   [`AccessIndexSet`](bgpq_access::AccessIndexSet) and a full
//!   [`Engine`](bgpq_engine::Engine) pinned to that version.
//! * [`Server`] — owns the current snapshot behind an epoch-versioned
//!   pointer. Readers pin a snapshot with one `Arc` clone and are never
//!   blocked by mutation work; the single writer builds the next snapshot
//!   **off to the side** (copy-on-write clone + incremental index
//!   maintenance instead of a rebuild) and publishes it with a pointer swap.
//! * [`WorkerPool`] — a minimal thread pool executing
//!   [`QueryRequest`](bgpq_engine::QueryRequest)s against pinned snapshots.
//! * [`AdmissionGate`] — a bounded in-flight gate with queue-depth
//!   backpressure and graceful draining; the hook `bgpq-net` puts in front
//!   of its TCP sessions so overload turns into fast typed rejections
//!   instead of unbounded buffering.
//!
//! Plan-cache correctness across versions is handled one layer down: the
//! server hands every snapshot's engine the same
//! [`SharedPlanCache`](bgpq_engine::SharedPlanCache), and cached planning
//! outcomes are validated against the snapshot version on every probe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod pool;
pub mod server;
pub mod snapshot;

pub use gate::{Admission, AdmissionGate, AdmissionPermit, GateStats};
pub use pool::WorkerPool;
pub use server::{CommitReceipt, Server, ServerStats, Update};
pub use snapshot::Snapshot;
