//! Closed-loop serving throughput benchmark: queries/sec at 1/2/4/8 worker
//! threads under a mixed read+update workload.
//!
//! Each thread tier gets a **fresh server** over the same base graph. Worker
//! threads pin the current snapshot and execute bounded queries back-to-back
//! until the deadline; one writer thread concurrently commits update batches
//! (insert a movie cluster, periodically remove the oldest one) at a fixed
//! cadence, exercising copy-on-write snapshots plus incremental index
//! maintenance. Readers are never blocked by the writer, so on a machine
//! with enough cores throughput scales with the worker count; the report
//! records the available parallelism so single-core results are
//! interpretable. Results land in JSON (default `BENCH_serve.json`).
//!
//! ```sh
//! cargo run --release -p bgpq-serve --bin bench_serve            # full run
//! cargo run --release -p bgpq-serve --bin bench_serve -- --smoke # CI smoke
//! ```

use bgpq_engine::{AccessConstraint, AccessSchema, QueryRequest, ShardConfig, StrategyKind};
use bgpq_graph::{Graph, GraphBuilder, NodeId, Value};
use bgpq_pattern::{Pattern, PatternBuilder, Predicate};
use bgpq_serve::{Server, Update};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

struct BenchConfig {
    /// Movie clusters in the generated base graph.
    movies: usize,
    /// Distinct queries in the read workload.
    queries: usize,
    /// Closed-loop measurement window per thread tier.
    duration_ms: u64,
    /// Worker-thread tiers to measure.
    threads: Vec<usize>,
    /// Pause between writer commits (the update cadence).
    writer_period_us: u64,
    /// Output path for the JSON report.
    out: String,
    /// Exit non-zero when the best multi-thread qps falls below
    /// `min_scaling ×` the single-thread qps.
    min_scaling: Option<f64>,
    /// Shard count for partitioned execution inside each tier's server
    /// (0 = unsharded).
    partitions: usize,
    /// Worker threads of the shard runtime (0 = same as `partitions`).
    shard_threads: usize,
    /// Exit non-zero when the best multi-thread scaling factor *per
    /// effective reader* (`factor / min(threads, cores)`) falls below this
    /// — the per-core throughput gate a 1-core CI runner can enforce.
    min_scaling_per_core: Option<f64>,
}

impl BenchConfig {
    fn parse(args: &[String]) -> Result<Self, String> {
        let smoke = args.iter().any(|a| a == "--smoke");
        let mut config = if smoke {
            BenchConfig {
                movies: 300,
                queries: 5,
                duration_ms: 150,
                threads: vec![1, 2, 4],
                writer_period_us: 3_000,
                out: "BENCH_serve.json".to_string(),
                min_scaling: None,
                partitions: 0,
                shard_threads: 0,
                min_scaling_per_core: None,
            }
        } else {
            BenchConfig {
                movies: 2_000,
                queries: 10,
                duration_ms: 400,
                threads: vec![1, 2, 4, 8],
                writer_period_us: 3_000,
                out: "BENCH_serve.json".to_string(),
                min_scaling: None,
                partitions: 0,
                shard_threads: 0,
                min_scaling_per_core: None,
            }
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_for = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} expects a value"))
            };
            match arg.as_str() {
                "--smoke" => {}
                "--movies" => config.movies = parse_num(&value_for("--movies")?)?,
                "--queries" => config.queries = parse_num(&value_for("--queries")?)?,
                "--duration-ms" => {
                    config.duration_ms = parse_num(&value_for("--duration-ms")?)? as u64
                }
                "--writer-period-us" => {
                    config.writer_period_us = parse_num(&value_for("--writer-period-us")?)? as u64
                }
                "--threads" => {
                    let raw = value_for("--threads")?;
                    config.threads = raw
                        .split(',')
                        .map(parse_num)
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "--out" => config.out = value_for("--out")?,
                "--min-scaling" => {
                    let raw = value_for("--min-scaling")?;
                    config.min_scaling =
                        Some(raw.parse().map_err(|_| format!("not a number: {raw:?}"))?);
                }
                "--partitions" => config.partitions = parse_num(&value_for("--partitions")?)?,
                "--shard-threads" => {
                    config.shard_threads = parse_num(&value_for("--shard-threads")?)?
                }
                "--min-scaling-per-core" => {
                    let raw = value_for("--min-scaling-per-core")?;
                    config.min_scaling_per_core =
                        Some(raw.parse().map_err(|_| format!("not a number: {raw:?}"))?);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if config.queries == 0 || config.duration_ms == 0 || config.threads.is_empty() {
            return Err("--queries, --duration-ms and --threads must be non-empty".into());
        }
        Ok(config)
    }

    /// The shard configuration every tier's server runs under, if any —
    /// either flag alone implies the other (same defaulting as the CLI's
    /// `--partitions`/`--threads`).
    fn shard(&self) -> Option<ShardConfig> {
        if self.partitions == 0 && self.shard_threads == 0 {
            return None;
        }
        let partitions = if self.partitions == 0 {
            self.shard_threads
        } else {
            self.partitions
        };
        let threads = if self.shard_threads == 0 {
            self.partitions
        } else {
            self.shard_threads
        };
        Some(ShardConfig::new(partitions, threads))
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

/// Anchor nodes of the base graph the writer links new clusters to.
struct Anchors {
    years: Vec<NodeId>,
    awards: Vec<NodeId>,
    countries: Vec<NodeId>,
}

/// The IMDb-shaped base graph of the engine bench: `movies` clusters, each a
/// movie linked from a (year, award) pair and to 2 actors.
fn build_graph(movies: usize) -> (Graph, Anchors) {
    let mut b = GraphBuilder::new();
    let years: Vec<_> = (0..20)
        .map(|i| b.add_node("year", Value::Int(2000 + i)))
        .collect();
    let awards: Vec<_> = (0..5)
        .map(|i| b.add_node("award", Value::str(format!("award{i}"))))
        .collect();
    let countries: Vec<_> = (0..10)
        .map(|i| b.add_node("country", Value::str(format!("c{i}"))))
        .collect();
    for i in 0..movies {
        let m = b.add_node("movie", Value::Int(i as i64));
        b.add_edge(years[i % years.len()], m).unwrap();
        b.add_edge(awards[i % awards.len()], m).unwrap();
        for j in 0..2 {
            let a = b.add_node("actor", Value::Int((10 * i + j) as i64));
            b.add_edge(m, a).unwrap();
            b.add_edge(a, countries[(i + j) % countries.len()]).unwrap();
        }
    }
    (
        b.build(),
        Anchors {
            years,
            awards,
            countries,
        },
    )
}

fn build_schema(graph: &Graph, movies: usize) -> AccessSchema {
    let l = |name: &str| graph.interner().get(name).unwrap();
    // Generous bounds: the writer adds clusters while the bench runs.
    let per_pair = movies / 10 + 10;
    AccessSchema::from_constraints([
        AccessConstraint::global(l("year"), 20),
        AccessConstraint::global(l("award"), 5),
        AccessConstraint::new([l("year"), l("award")], l("movie"), per_pair),
        AccessConstraint::unary(l("movie"), l("actor"), 8),
        AccessConstraint::unary(l("actor"), l("country"), 1),
    ])
}

fn build_query(graph: &Graph, year: i64) -> Pattern {
    let mut pb = PatternBuilder::with_interner(graph.interner().clone());
    let m = pb.node("movie", Predicate::always());
    let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, year));
    let a = pb.node("award", Predicate::always());
    let act = pb.node("actor", Predicate::always());
    pb.edge(y, m);
    pb.edge(a, m);
    pb.edge(m, act);
    pb.build()
}

/// The batch inserting one movie cluster (movie + 2 actors + 4 edges),
/// given the id the next inserted node will receive.
fn insert_cluster_batch(anchors: &Anchors, round: usize, next_id: u32) -> Vec<Update> {
    let movie = NodeId(next_id);
    let actor0 = NodeId(next_id + 1);
    let actor1 = NodeId(next_id + 2);
    vec![
        Update::AddNode {
            label: "movie".into(),
            value: Value::Int(1_000_000 + round as i64),
        },
        Update::AddNode {
            label: "actor".into(),
            value: Value::Int(2_000_000 + round as i64),
        },
        Update::AddNode {
            label: "actor".into(),
            value: Value::Int(3_000_000 + round as i64),
        },
        Update::AddEdge {
            src: anchors.years[round % anchors.years.len()],
            dst: movie,
        },
        Update::AddEdge {
            src: anchors.awards[round % anchors.awards.len()],
            dst: movie,
        },
        Update::AddEdge {
            src: movie,
            dst: actor0,
        },
        Update::AddEdge {
            src: movie,
            dst: actor1,
        },
        Update::AddEdge {
            src: actor0,
            dst: anchors.countries[round % anchors.countries.len()],
        },
        Update::AddEdge {
            src: actor1,
            dst: anchors.countries[(round + 1) % anchors.countries.len()],
        },
    ]
}

struct TierResult {
    threads: usize,
    queries: u64,
    answers: u64,
    qps: f64,
    commits: u64,
    avg_commit_us: f64,
    avg_delta_apply_us: f64,
    nodes_touched: u64,
    final_version: u64,
    plan_cache_invalidations: u64,
    fragment_cache_hits: u64,
    fragment_cache_invalidations: u64,
}

/// One closed-loop measurement: `threads` readers hammering the server while
/// one writer commits at a fixed cadence.
#[allow(clippy::too_many_arguments)]
fn run_tier(
    base_graph: &Graph,
    schema: &AccessSchema,
    anchors: &Anchors,
    queries: &[Pattern],
    threads: usize,
    duration: Duration,
    writer_period: Duration,
    shard: Option<ShardConfig>,
) -> TierResult {
    let mut server = Server::new(base_graph.clone(), schema);
    if let Some(config) = shard {
        server = server.with_shard_config(config);
    }
    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let anchors = Anchors {
            years: anchors.years.clone(),
            awards: anchors.awards.clone(),
            countries: anchors.countries.clone(),
        };
        thread::spawn(move || {
            let mut round = 0usize;
            // (movie, actor, actor) clusters added by this writer, oldest first.
            let mut live_clusters: Vec<[NodeId; 3]> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let next_id = server.snapshot().graph().node_count() as u32;
                let batch = insert_cluster_batch(&anchors, round, next_id);
                server.commit(&batch).expect("writer batches are valid");
                live_clusters.push([NodeId(next_id), NodeId(next_id + 1), NodeId(next_id + 2)]);
                // Every other round, retire the oldest cluster so the mix
                // exercises node/edge deletion too.
                if round % 2 == 1 {
                    let oldest = live_clusters.remove(0);
                    let batch: Vec<Update> = oldest
                        .iter()
                        .map(|&node| Update::RemoveNode { node })
                        .collect();
                    server.commit(&batch).expect("cluster nodes are live");
                }
                round += 1;
                thread::sleep(writer_period);
            }
        })
    };

    let deadline = Instant::now() + duration;
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let server = Arc::clone(&server);
            let queries: Vec<Pattern> = queries.to_vec();
            thread::spawn(move || {
                let mut served = 0u64;
                let mut answers = 0u64;
                let mut i = w; // stagger the starting query per worker
                while Instant::now() < deadline {
                    let q = &queries[i % queries.len()];
                    let response = server
                        .execute(&QueryRequest::build(q.clone()).finish())
                        .expect("serving queries never fail");
                    // The schema keeps these queries bounded throughout.
                    assert_eq!(response.strategy, StrategyKind::Bounded);
                    answers += response.answer.len() as u64;
                    served += 1;
                    i += 1;
                }
                (served, answers)
            })
        })
        .collect();

    let mut total_queries = 0u64;
    let mut total_answers = 0u64;
    for worker in workers {
        let (served, answers) = worker.join().expect("worker panicked");
        total_queries += served;
        total_answers += answers;
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer panicked");

    let stats = server.stats();
    let engine_stats = server.snapshot().engine().stats();
    TierResult {
        threads,
        queries: total_queries,
        answers: total_answers,
        qps: total_queries as f64 / duration.as_secs_f64(),
        commits: stats.commits,
        avg_commit_us: stats.commit_nanos as f64 / stats.commits.max(1) as f64 / 1_000.0,
        avg_delta_apply_us: stats.delta_apply_nanos as f64 / stats.commits.max(1) as f64 / 1_000.0,
        nodes_touched: stats.nodes_touched,
        final_version: stats.epoch,
        plan_cache_invalidations: engine_stats.plan_cache_invalidations,
        fragment_cache_hits: engine_stats.fragment_cache_hits,
        fragment_cache_invalidations: engine_stats.fragment_cache_invalidations,
    }
}

/// The repeated-hot-query serving comparison: one closed loop running the
/// workload one query at a time vs the same loop submitting it as one
/// [`bgpq_serve::Snapshot::execute_batch`] call per iteration, on a quiet
/// server (no writer). Both loops run against the same warmed server, so
/// the numbers isolate dispatch + lookup sharing, not cold caches.
struct BatchLoopResult {
    sequential_qps: f64,
    batch_qps: f64,
    fragment_cache_hits: u64,
}

fn run_batch_loop(
    base_graph: &Graph,
    schema: &AccessSchema,
    queries: &[Pattern],
    duration: Duration,
) -> BatchLoopResult {
    let server = Server::new(base_graph.clone(), schema);
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::build(q.clone()).finish())
        .collect();
    // Warm pass: plan and fragment caches populated before either loop.
    let snapshot = server.snapshot();
    for request in &requests {
        snapshot
            .execute(request)
            .expect("serving queries never fail");
    }

    let deadline = Instant::now() + duration;
    let mut sequential = 0u64;
    while Instant::now() < deadline {
        let snapshot = server.snapshot();
        for request in &requests {
            snapshot
                .execute(request)
                .expect("serving queries never fail");
            sequential += 1;
        }
    }

    let deadline = Instant::now() + duration;
    let mut batched = 0u64;
    while Instant::now() < deadline {
        let snapshot = server.snapshot();
        for result in snapshot.execute_batch(&requests) {
            result.expect("serving queries never fail");
            batched += 1;
        }
    }

    BatchLoopResult {
        sequential_qps: sequential as f64 / duration.as_secs_f64(),
        batch_qps: batched as f64 / duration.as_secs_f64(),
        fragment_cache_hits: server.snapshot().engine().stats().fragment_cache_hits,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match BenchConfig::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_serve: {e}");
            eprintln!(
                "usage: bench_serve [--smoke] [--movies N] [--queries K] [--duration-ms D] \
                 [--threads 1,2,4,8] [--writer-period-us U] [--partitions P] \
                 [--shard-threads T] [--out PATH] [--min-scaling X] \
                 [--min-scaling-per-core X]"
            );
            std::process::exit(2);
        }
    };

    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    let (graph, anchors) = build_graph(config.movies);
    let schema = build_schema(&graph, config.movies);
    println!(
        "base graph: {} nodes, {} edges; {} cores available",
        graph.node_count(),
        graph.edge_count(),
        cores
    );

    let queries: Vec<Pattern> = (0..config.queries)
        .map(|i| build_query(&graph, 2000 + (i % 20) as i64))
        .collect();

    let duration = Duration::from_millis(config.duration_ms);
    let writer_period = Duration::from_micros(config.writer_period_us);
    let tiers: Vec<TierResult> = config
        .threads
        .iter()
        .map(|&threads| {
            let tier = run_tier(
                &graph,
                &schema,
                &anchors,
                &queries,
                threads,
                duration,
                writer_period,
                config.shard(),
            );
            println!(
                "{:>2} worker(s): {:>8.0} qps ({} queries, {} commits of {:.1} us avg, \
                 of which delta apply {:.1} us, final version {}, \
                 {} fragment-cache hits / {} invalidations)",
                tier.threads,
                tier.qps,
                tier.queries,
                tier.commits,
                tier.avg_commit_us,
                tier.avg_delta_apply_us,
                tier.final_version,
                tier.fragment_cache_hits,
                tier.fragment_cache_invalidations
            );
            tier
        })
        .collect();

    let batch = run_batch_loop(&graph, &schema, &queries, duration);
    println!(
        "batch loop: {:.0} qps sequential vs {:.0} qps batched \
         ({} fragment-cache hits)",
        batch.sequential_qps, batch.batch_qps, batch.fragment_cache_hits
    );

    let single = tiers.iter().find(|t| t.threads == 1);
    let best_multi = tiers
        .iter()
        .filter(|t| t.threads > 1)
        .max_by(|a, b| a.qps.total_cmp(&b.qps));
    let scaling = match (single, best_multi) {
        (Some(s), Some(m)) if s.qps > 0.0 => Some((m.threads, m.qps / s.qps)),
        _ => None,
    };

    let tier_json: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                "    {{\"threads\": {}, \"queries\": {}, \"answers\": {}, \"qps\": {:.0}, \
                 \"commits\": {}, \"avg_commit_us\": {:.1}, \"avg_delta_apply_us\": {:.1}, \
                 \"nodes_touched\": {}, \"final_version\": {}, \
                 \"plan_cache_invalidations\": {}, \"fragment_cache_hits\": {}, \
                 \"fragment_cache_invalidations\": {}}}",
                t.threads,
                t.queries,
                t.answers,
                t.qps,
                t.commits,
                t.avg_commit_us,
                t.avg_delta_apply_us,
                t.nodes_touched,
                t.final_version,
                t.plan_cache_invalidations,
                t.fragment_cache_hits,
                t.fragment_cache_invalidations
            )
        })
        .collect();
    let scaling_json = match scaling {
        Some((threads, factor)) => format!(
            "{{\"best_multi_threads\": {threads}, \"best_multi_over_single\": {factor:.2}}}"
        ),
        None => "null".to_string(),
    };
    let (shard_partitions, shard_threads) = match config.shard() {
        Some(c) => (c.partitions, c.threads),
        None => (0, 0),
    };
    let report = format!(
        "{{\n  \"config\": {{\"movies\": {}, \"queries\": {}, \"duration_ms\": {}, \
         \"writer_period_us\": {}, \"cores\": {}, \"partitions\": {}, \"threads\": {}}},\n  \"graph\": {{\"nodes\": {}, \"edges\": {}}},\n  \
         \"tiers\": [\n{}\n  ],\n  \"batch\": {{\"sequential_qps\": {:.0}, \"batch_qps\": {:.0}, \
         \"fragment_cache_hits\": {}}},\n  \"scaling\": {}\n}}\n",
        config.movies,
        config.queries,
        config.duration_ms,
        config.writer_period_us,
        cores,
        shard_partitions,
        shard_threads,
        graph.node_count(),
        graph.edge_count(),
        tier_json.join(",\n"),
        batch.sequential_qps,
        batch.batch_qps,
        batch.fragment_cache_hits,
        scaling_json
    );
    std::fs::write(&config.out, &report).expect("write bench report");
    println!("report -> {}", config.out);

    if let Some(min) = config.min_scaling {
        match scaling {
            Some((threads, factor)) => {
                if factor < min {
                    eprintln!(
                        "bench_serve: REGRESSION — {threads}-thread qps is only {factor:.2}x \
                         the single-thread qps (required: {min:.2}x, cores: {cores})"
                    );
                    std::process::exit(1);
                }
                println!("bench_serve: scaling gate passed ({factor:.2}x >= {min:.2}x)");
            }
            None => {
                eprintln!(
                    "bench_serve: --min-scaling needs a 1-thread tier and a multi-thread tier"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(min) = config.min_scaling_per_core {
        match scaling {
            Some((threads, factor)) => {
                // Normalizing by the readers the machine can actually run
                // concurrently keeps the gate meaningful on a 1-core CI
                // runner: there it reduces to "multi-threading costs at
                // most 1/min of single-thread throughput".
                let per_core = factor / threads.min(cores).max(1) as f64;
                if per_core < min {
                    eprintln!(
                        "bench_serve: REGRESSION — per-core scaling is {per_core:.2} \
                         ({threads} readers on {cores} cores, factor {factor:.2}); \
                         required: {min:.2}"
                    );
                    std::process::exit(1);
                }
                println!("bench_serve: per-core scaling gate passed ({per_core:.2} >= {min:.2})");
            }
            None => {
                eprintln!(
                    "bench_serve: --min-scaling-per-core needs a 1-thread tier and a \
                     multi-thread tier"
                );
                std::process::exit(2);
            }
        }
    }
}
