//! Dependency-free benchmark: `VF2` vs `optVF2` vs `bVF2` through the engine.
//!
//! Builds a deterministic IMDb-shaped graph, an access schema that makes the
//! query family effectively bounded, and times the three evaluation tiers on
//! a repeated workload — repeats exercise the engine's plan cache. Results
//! are written as JSON (default `BENCH_engine.json`), seeding the
//! workspace's performance trajectory.
//!
//! ```sh
//! cargo run --release -p bgpq-engine --bin bench            # full run
//! cargo run --release -p bgpq-engine --bin bench -- --smoke # CI smoke run
//! ```

use bgpq_engine::{
    apply_deltas, discover_schema, load_snapshot, opt_subgraph_match, save_snapshot,
    AccessConstraint, AccessIndexSet, AccessSchema, CacheOutcome, DiscoveryConfig, Engine, Graph,
    GraphBuilder, GraphDelta, QueryRequest, Semantics, ShardConfig, StrategyKind, SubgraphMatcher,
};
use bgpq_graph::bitset::dedup_with_bitset;
use bgpq_graph::io::{load_graph, load_graph_snapshot, load_jsonl, save_graph_snapshot};
use bgpq_graph::{NodeBitSet, NodeId, Value};
use bgpq_pattern::{Pattern, PatternBuilder, Predicate};
use bgpq_workload::{
    generate_workload, stream_graph, ArrivalClock, LatencyHistogram, Scenario, ScenarioConfig,
    WorkloadConfig,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Benchmark parameters, overridable from the command line.
struct BenchConfig {
    /// Number of movie stars in the generated graph.
    movies: usize,
    /// Distinct queries in the workload (distinct year predicates).
    queries: usize,
    /// How many times the whole workload repeats (cache-hit rounds).
    rounds: usize,
    /// Output path for the JSON report.
    out: String,
    /// Exit non-zero when `speedup.vf2_over_bvf2` falls below this (the CI
    /// bench-regression gate).
    min_speedup: Option<f64>,
    /// Exit non-zero when any checked-in dataset's binary-over-text load
    /// speedup falls below this.
    min_load_speedup: Option<f64>,
    /// Exit non-zero when the fragment-cache hit speedup (uncached bVF2
    /// latency over cache-hit latency on the hot query) falls below this.
    min_fragment_hit_speedup: Option<f64>,
    /// Shard count of the partitioned comparison.
    partitions: usize,
    /// Worker threads of the partitioned comparison.
    threads: usize,
    /// Exit non-zero when the bitmap-dedup speedup over the sorted-vec
    /// baseline falls below this (1.0 = "no worse than sorting the raw
    /// union").
    min_bitmap_speedup: Option<f64>,
    /// Exit non-zero when partitioned speedup *per effective worker*
    /// (`speedup / min(threads, cores)`) falls below this — the scaling
    /// gate a 1-core CI runner can still enforce meaningfully.
    min_parallel_per_core: Option<f64>,
    /// Run only the open-loop section (plus the graph/engine it needs) —
    /// the fast CI gate mode behind `--open-loop`.
    open_loop_only: bool,
    /// Offered-load tiers of the open-loop section, queries per second.
    offered: Vec<u64>,
    /// Open-loop measurement window per tier.
    duration_ms: u64,
    /// Concurrent executor lanes of the open-loop section.
    lanes: usize,
    /// Exit non-zero when the *lowest* offered tier's p99 exceeds this many
    /// milliseconds (higher tiers deliberately overload the engine, so
    /// their queueing-inflated p99 is data, not a regression signal).
    max_p99_ms: Option<f64>,
    /// `|G|` scales of the fragment-scaling section.
    scales: Vec<usize>,
    /// Queries per scale in the fragment-scaling workload.
    workload_queries: usize,
    /// Exit non-zero when avg `|G_Q|` at the largest scale exceeds this
    /// multiple of avg `|G_Q|` at the smallest — the scale-invariance gate
    /// (bounded fragments must not track `|G|`).
    max_fragment_growth: Option<f64>,
}

impl BenchConfig {
    fn parse(args: &[String]) -> Result<Self, String> {
        // --smoke only swaps the defaults; explicit flags always win,
        // regardless of the order they appear in.
        let smoke = args.iter().any(|a| a == "--smoke");
        let mut config = if smoke {
            BenchConfig {
                movies: 300,
                queries: 5,
                rounds: 2,
                out: "BENCH_engine.json".to_string(),
                min_speedup: None,
                min_load_speedup: None,
                min_fragment_hit_speedup: None,
                partitions: 4,
                threads: 2,
                min_bitmap_speedup: None,
                min_parallel_per_core: None,
                open_loop_only: false,
                offered: vec![200, 1_000],
                duration_ms: 150,
                lanes: 4,
                max_p99_ms: None,
                scales: vec![2_000, 10_000, 50_000],
                workload_queries: 8,
                max_fragment_growth: None,
            }
        } else {
            BenchConfig {
                movies: 3000,
                queries: 10,
                rounds: 3,
                out: "BENCH_engine.json".to_string(),
                min_speedup: None,
                min_load_speedup: None,
                min_fragment_hit_speedup: None,
                partitions: 4,
                threads: 2,
                min_bitmap_speedup: None,
                min_parallel_per_core: None,
                open_loop_only: false,
                offered: vec![500, 2_000, 8_000],
                duration_ms: 400,
                lanes: 4,
                max_p99_ms: None,
                scales: vec![10_000, 100_000, 1_000_000],
                workload_queries: 12,
                max_fragment_growth: None,
            }
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_for = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} expects a value"))
            };
            match arg.as_str() {
                "--smoke" => {}
                "--movies" => config.movies = parse_num(&value_for("--movies")?)?,
                "--queries" => config.queries = parse_num(&value_for("--queries")?)?,
                "--rounds" => config.rounds = parse_num(&value_for("--rounds")?)?,
                "--out" => config.out = value_for("--out")?,
                "--min-speedup" => {
                    let raw = value_for("--min-speedup")?;
                    config.min_speedup =
                        Some(raw.parse().map_err(|_| format!("not a number: {raw:?}"))?);
                }
                "--min-load-speedup" => {
                    let raw = value_for("--min-load-speedup")?;
                    config.min_load_speedup =
                        Some(raw.parse().map_err(|_| format!("not a number: {raw:?}"))?);
                }
                "--min-fragment-hit-speedup" => {
                    let raw = value_for("--min-fragment-hit-speedup")?;
                    config.min_fragment_hit_speedup =
                        Some(raw.parse().map_err(|_| format!("not a number: {raw:?}"))?);
                }
                "--partitions" => config.partitions = parse_num(&value_for("--partitions")?)?,
                "--threads" => config.threads = parse_num(&value_for("--threads")?)?,
                "--min-bitmap-speedup" => {
                    let raw = value_for("--min-bitmap-speedup")?;
                    config.min_bitmap_speedup =
                        Some(raw.parse().map_err(|_| format!("not a number: {raw:?}"))?);
                }
                "--min-parallel-per-core" => {
                    let raw = value_for("--min-parallel-per-core")?;
                    config.min_parallel_per_core =
                        Some(raw.parse().map_err(|_| format!("not a number: {raw:?}"))?);
                }
                "--open-loop" => config.open_loop_only = true,
                "--offered" => {
                    config.offered = value_for("--offered")?
                        .split(',')
                        .map(|s| parse_num(s).map(|n| n as u64))
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "--duration-ms" => {
                    config.duration_ms = parse_num(&value_for("--duration-ms")?)? as u64
                }
                "--lanes" => config.lanes = parse_num(&value_for("--lanes")?)?,
                "--max-p99-ms" => {
                    let raw = value_for("--max-p99-ms")?;
                    config.max_p99_ms =
                        Some(raw.parse().map_err(|_| format!("not a number: {raw:?}"))?);
                }
                "--scales" => {
                    config.scales = value_for("--scales")?
                        .split(',')
                        .map(parse_num)
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "--workload-queries" => {
                    config.workload_queries = parse_num(&value_for("--workload-queries")?)?
                }
                "--max-fragment-growth" => {
                    let raw = value_for("--max-fragment-growth")?;
                    config.max_fragment_growth =
                        Some(raw.parse().map_err(|_| format!("not a number: {raw:?}"))?);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if config.queries == 0 || config.rounds == 0 {
            return Err("--queries and --rounds must be positive".into());
        }
        if config.partitions == 0 || config.threads == 0 {
            return Err("--partitions and --threads must be positive".into());
        }
        if config.offered.is_empty() || config.duration_ms == 0 || config.lanes == 0 {
            return Err("--offered, --duration-ms and --lanes must be non-empty".into());
        }
        if config.scales.len() < 2 || config.workload_queries == 0 {
            return Err("--scales needs at least two scales, --workload-queries > 0".into());
        }
        Ok(config)
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

/// A scaled version of the paper's running example: `movies` movie stars,
/// each linked from a (year, award) pair and to actors, plus noise nodes
/// bounded evaluation must never touch.
fn build_graph(movies: usize) -> Graph {
    let mut b = GraphBuilder::new();
    let years: Vec<_> = (0..20)
        .map(|i| b.add_node("year", Value::Int(2000 + i)))
        .collect();
    let awards: Vec<_> = (0..5)
        .map(|i| b.add_node("award", Value::str(format!("award{i}"))))
        .collect();
    let countries: Vec<_> = (0..10)
        .map(|i| b.add_node("country", Value::str(format!("c{i}"))))
        .collect();
    for i in 0..movies {
        let m = b.add_node("movie", Value::Int(i as i64));
        b.add_edge(years[i % years.len()], m).unwrap();
        b.add_edge(awards[i % awards.len()], m).unwrap();
        for j in 0..3 {
            let a = b.add_node("actor", Value::Int((10 * i + j) as i64));
            b.add_edge(m, a).unwrap();
            b.add_edge(a, countries[(i + j) % countries.len()]).unwrap();
        }
    }
    // Unrelated noise: visible to whole-graph scans, invisible to the fetch.
    for i in 0..movies {
        b.add_node("noise", Value::Int(i as i64));
    }
    b.build()
}

/// The access schema the generator satisfies by construction.
fn build_schema(graph: &Graph, movies: usize) -> AccessSchema {
    let l = |name: &str| graph.interner().get(name).unwrap();
    let per_pair = movies / 20 + 1;
    AccessSchema::from_constraints([
        AccessConstraint::global(l("year"), 20),
        AccessConstraint::global(l("award"), 5),
        AccessConstraint::new([l("year"), l("award")], l("movie"), per_pair),
        AccessConstraint::unary(l("movie"), l("actor"), 3),
        AccessConstraint::unary(l("actor"), l("country"), 1),
    ])
}

/// The repeated hot query for the fragment-cache comparison: broad
/// `always()` predicates on the pair-key side (every year × award, so the
/// fetch issues the full lookup fan-out) with one selective leaf predicate
/// (so matching on the fetched fragment is cheap). Fetch-dominated by
/// construction — the case the fragment cache exists for.
fn build_hot_query(graph: &Graph) -> Pattern {
    let mut pb = PatternBuilder::with_interner(graph.interner().clone());
    let m = pb.node("movie", Predicate::always());
    let y = pb.node("year", Predicate::always());
    let a = pb.node("award", Predicate::always());
    let act = pb.node("actor", Predicate::single(bgpq_pattern::Op::Eq, 5));
    pb.edge(y, m);
    pb.edge(a, m);
    pb.edge(m, act);
    pb.build()
}

/// What the fragment-cache comparison measured on the hot query.
struct FragmentCacheBench {
    uncached: Timing,
    hit: Timing,
    fragment_nodes: u64,
    lookups_per_miss: u64,
}

impl FragmentCacheBench {
    fn hit_speedup(&self) -> f64 {
        self.uncached.avg_micros() / self.hit.avg_micros().max(0.001)
    }
}

/// Times the hot query through a fragment-cache-disabled engine (every run
/// re-fetches) against cache hits on a warmed engine. Answers are asserted
/// identical; only the fetch work differs.
fn bench_fragment_cache(engine: &Engine, reps: usize) -> FragmentCacheBench {
    let hot = build_hot_query(engine.graph());
    let request = QueryRequest::build(hot)
        .strategy(StrategyKind::Bounded)
        .finish();
    let uncached_engine = Engine::with_indices(engine.graph().clone(), engine.indices().clone())
        .with_fragment_cache_capacity(0);

    // Warm both plan caches (and `engine`'s fragment cache) untimed so the
    // timed loops compare pure fetch-vs-hit work.
    let warm = uncached_engine
        .execute(&request)
        .expect("hot query bounded");
    let first = engine.execute(&request).expect("hot query bounded");
    assert_eq!(first.answer, warm.answer, "cached diverged from uncached");
    let lookups_per_miss = first.stats.fetch.as_ref().map_or(0, |f| f.index_lookups);
    let fragment_nodes = first
        .stats
        .fetch
        .as_ref()
        .map_or(0, |f| f.fragment_nodes as u64);

    let mut uncached = Timing::default();
    let mut hit = Timing::default();
    for _ in 0..reps {
        let t = Instant::now();
        let response = uncached_engine.execute(&request).expect("bounded");
        uncached.record(t.elapsed().as_nanos(), response.answer.len());
        assert_eq!(response.stats.fragment_cache, Some(CacheOutcome::Bypass));

        let t = Instant::now();
        let response = engine.execute(&request).expect("bounded");
        hit.record(t.elapsed().as_nanos(), response.answer.len());
        assert_eq!(response.stats.fragment_cache, Some(CacheOutcome::Hit));
        assert_eq!(response.answer, warm.answer, "hit diverged from uncached");
    }
    FragmentCacheBench {
        uncached,
        hit,
        fragment_nodes,
        lookups_per_miss,
    }
}

/// What the batched-execution comparison measured.
struct BatchBench {
    sequential: Timing,
    batched: Timing,
    lookups_sequential: u64,
    lookups_batched: u64,
    lookups_deduped: u64,
}

/// Times the workload executed one query at a time against the same
/// workload submitted through [`Engine::execute_batch`] (one shared lookup
/// memo). The fragment cache is disabled on the measured engine so the
/// delta is purely the batch-level lookup sharing.
fn bench_batch(engine: &Engine, queries: &[Pattern], reps: usize) -> BatchBench {
    let memo_engine = Engine::with_indices(engine.graph().clone(), engine.indices().clone())
        .with_fragment_cache_capacity(0);
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| {
            QueryRequest::build(q.clone())
                .strategy(StrategyKind::Bounded)
                .finish()
        })
        .collect();
    // Untimed warm pass: plan-cache population must not skew either side.
    for request in &requests {
        memo_engine.execute(request).expect("bounded");
    }

    let mut sequential = Timing::default();
    let mut batched = Timing::default();
    let mut lookups_sequential = 0u64;
    let mut lookups_batched = 0u64;
    let mut lookups_deduped = 0u64;
    for rep in 0..reps {
        let t = Instant::now();
        let mut answers = 0usize;
        for request in &requests {
            let response = memo_engine.execute(request).expect("bounded");
            answers += response.answer.len();
            if rep == 0 {
                lookups_sequential += response.stats.fetch.as_ref().map_or(0, |f| f.index_lookups);
            }
        }
        sequential.record(t.elapsed().as_nanos(), answers);

        let t = Instant::now();
        let results = memo_engine.execute_batch(&requests);
        let nanos = t.elapsed().as_nanos();
        let mut answers = 0usize;
        for (result, request) in results.iter().zip(&requests) {
            let response = result.as_ref().expect("bounded");
            answers += response.answer.len();
            if rep == 0 {
                let fetch = response.stats.fetch.as_ref();
                lookups_batched += fetch.map_or(0, |f| f.index_lookups);
                lookups_deduped += fetch.map_or(0, |f| f.lookups_deduped);
                // Correctness spot-check, outside the timed region.
                let alone = memo_engine.execute(request).expect("bounded");
                assert_eq!(response.answer, alone.answer, "batch diverged");
            }
        }
        batched.record(nanos, answers);
    }
    BatchBench {
        sequential,
        batched,
        lookups_sequential,
        lookups_batched,
        lookups_deduped,
    }
}

/// What the partitioned-execution comparison measured.
struct PartitionedBench {
    serial: Timing,
    parallel: Timing,
    partitions: usize,
    threads: usize,
}

impl PartitionedBench {
    fn speedup(&self) -> f64 {
        self.serial.avg_micros() / self.parallel.avg_micros().max(0.001)
    }

    /// Speedup divided by the worker count the machine can actually run
    /// concurrently. On a 1-core runner this degenerates to plain speedup,
    /// so a gate like 0.5 still means "partitioning costs at most 2x" —
    /// per-core throughput stays checkable without real parallelism.
    fn per_core_speedup(&self, cores: usize) -> f64 {
        self.speedup() / self.threads.min(cores.max(1)) as f64
    }
}

/// Times the workload on a serial engine against an engine with a shard
/// runtime attached (per-partition candidate fetch + parallel bVF2), both
/// with the fragment cache disabled so every run does real fetch + match
/// work. Answers are asserted identical — the merge-determinism guarantee,
/// measured rather than assumed.
fn bench_partitioned(
    engine: &Engine,
    queries: &[Pattern],
    reps: usize,
    partitions: usize,
    threads: usize,
) -> PartitionedBench {
    let serial_engine = Engine::with_indices(engine.graph().clone(), engine.indices().clone())
        .with_fragment_cache_capacity(0);
    let parallel_engine = Engine::with_indices(engine.graph().clone(), engine.indices().clone())
        .with_fragment_cache_capacity(0)
        .with_sharding(ShardConfig::new(partitions, threads));
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| {
            QueryRequest::build(q.clone())
                .strategy(StrategyKind::Bounded)
                .finish()
        })
        .collect();
    // Untimed warm pass populating both plan caches; answer identity is
    // checked here, outside the timed region.
    for request in &requests {
        let serial = serial_engine.execute(request).expect("bounded");
        let parallel = parallel_engine.execute(request).expect("bounded");
        assert_eq!(
            serial.answer, parallel.answer,
            "partitioned execution diverged from serial"
        );
    }

    let mut serial = Timing::default();
    let mut parallel = Timing::default();
    for _ in 0..reps {
        let t = Instant::now();
        let mut answers = 0usize;
        for request in &requests {
            answers += serial_engine
                .execute(request)
                .expect("bounded")
                .answer
                .len();
        }
        serial.record(t.elapsed().as_nanos(), answers);

        let t = Instant::now();
        let mut answers = 0usize;
        for request in &requests {
            answers += parallel_engine
                .execute(request)
                .expect("bounded")
                .answer
                .len();
        }
        parallel.record(t.elapsed().as_nanos(), answers);
    }
    assert_eq!(serial.answers, parallel.answers, "answer counts diverged");
    PartitionedBench {
        serial,
        parallel,
        partitions,
        threads,
    }
}

/// What the bitmap-vs-sorted-vec dedup comparison measured.
struct BitmapBench {
    sorted_vec: Timing,
    bitmap: Timing,
    union_len: usize,
    unique: usize,
}

impl BitmapBench {
    fn speedup(&self) -> f64 {
        self.sorted_vec.avg_micros() / self.bitmap.avg_micros().max(0.001)
    }
}

/// Times the candidate-fetch dedup strategies head to head on the union
/// shape `fetch_candidate_sets` actually sees: the concatenation of every
/// (year, award) key side's neighbor list, where each movie appears once
/// per incident key. The baseline sorts the raw duplicated union and
/// `dedup()`s; the bitmap path drops repeats in O(n) first and sorts only
/// the survivors.
fn bench_bitmap_dedup(graph: &Graph, reps: usize) -> BitmapBench {
    let mut union_template: Vec<NodeId> = Vec::new();
    for label in ["year", "award"] {
        let id = graph.interner().get(label).expect("bench label exists");
        for &key in graph.nodes_with_label(id) {
            union_template.extend_from_slice(graph.out_neighbors(key));
        }
    }
    let mut seen = NodeBitSet::with_capacity(graph.node_count());

    let mut sorted_vec = Timing::default();
    let mut bitmap = Timing::default();
    let mut baseline: Vec<NodeId> = Vec::new();
    for rep in 0..reps.max(10) {
        let mut v = union_template.clone();
        let t = Instant::now();
        v.sort_unstable();
        v.dedup();
        sorted_vec.record(t.elapsed().as_nanos(), v.len());
        if rep == 0 {
            baseline = v.clone();
        }
        std::hint::black_box(&v);

        let mut v = union_template.clone();
        let t = Instant::now();
        dedup_with_bitset(&mut v, &mut seen);
        v.sort_unstable();
        bitmap.record(t.elapsed().as_nanos(), v.len());
        if rep == 0 {
            assert_eq!(v, baseline, "bitmap dedup diverged from sort+dedup");
        }
        std::hint::black_box(&v);
    }
    BitmapBench {
        sorted_vec,
        bitmap,
        union_len: union_template.len(),
        unique: baseline.len(),
    }
}

/// One open-loop tier's outcome.
struct OpenLoopTier {
    offered_qps: u64,
    scheduled: u64,
    completed: u64,
    achieved_qps: f64,
    latency: LatencyHistogram,
}

/// Open-loop execution directly against the engine: `lanes` executor
/// threads share one strict arrival clock at `offered` queries per second —
/// lane `c` owns arrivals `c, c+L, c+2L, …` — and latency is measured from
/// the *scheduled* arrival, so queueing delay past engine capacity shows up
/// in the percentiles instead of being absorbed by a coordinating sender
/// (no coordinated omission). The same clock + histogram drive the TCP
/// bench in `bgpq-net`; this is the engine-only counterpart.
fn run_open_loop_tier(
    engine: &Engine,
    requests: &[QueryRequest],
    offered: u64,
    duration: Duration,
    lanes: usize,
) -> OpenLoopTier {
    let clock = ArrivalClock::new(offered, duration, Duration::from_millis(2));
    let lane_results: Vec<(u64, u64, LatencyHistogram)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..lanes)
            .map(|c| {
                s.spawn(move || {
                    let mut latency = LatencyHistogram::new();
                    let (mut completed, mut scheduled) = (0u64, 0u64);
                    let mut i = c as u64;
                    while let Some(arrival) = clock.wait_for(i) {
                        scheduled += 1;
                        let request = &requests[i as usize % requests.len()];
                        engine
                            .execute(request)
                            .expect("open-loop queries are bounded");
                        completed += 1;
                        latency.record(arrival.elapsed().as_micros() as u64);
                        i += lanes as u64;
                    }
                    (completed, scheduled, latency)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("lane panicked"))
            .collect()
    });
    let mut tier = OpenLoopTier {
        offered_qps: offered,
        scheduled: 0,
        completed: 0,
        achieved_qps: 0.0,
        latency: LatencyHistogram::new(),
    };
    for (completed, scheduled, latency) in lane_results {
        tier.completed += completed;
        tier.scheduled += scheduled;
        tier.latency.merge(&latency);
    }
    tier.achieved_qps = tier.completed as f64 / duration.as_secs_f64();
    tier
}

/// One `|G|` scale of the fragment-scaling sweep.
struct ScalePoint {
    scale: usize,
    nodes: usize,
    edges: usize,
    build_ms: f64,
    queries: usize,
    avg_fragment_nodes: f64,
    fragment_fraction: f64,
    avg_query_us: f64,
    maintenance_us_per_batch: f64,
    refreshed_per_batch: f64,
}

/// The fixed skewed-social recipe of the sweep: one seed and one knob set
/// pin the graph shape and value domains across every scale, so only `|G|`
/// varies between the sweep's points.
fn scaling_scenario(scale: usize) -> ScenarioConfig {
    ScenarioConfig {
        zipf: Some(1.1),
        hot_fraction: Some(0.5),
        domain: Some(50),
        ..ScenarioConfig::new(scale, 7)
    }
}

/// Fresh-post maintenance batches applied per scale point.
const MAINTENANCE_BATCHES: usize = 200;

/// Measures `avg |G_Q|` vs `|G|` and the incremental maintenance cost on
/// the same-seed skewed social scenario at each scale: the paper's two
/// size-independence claims (fragments bounded by the plan, maintenance
/// bounded by `|ΔG ∪ Nb(ΔG)|`) as one curve each.
fn bench_fragment_scaling(scales: &[usize], workload_queries: usize) -> Vec<ScalePoint> {
    scales
        .iter()
        .map(|&scale| {
            let t = Instant::now();
            let config = scaling_scenario(scale);
            let mut graph = stream_graph(Scenario::Social, &config);
            let schema = discover_schema(&graph, &DiscoveryConfig::simple());
            // Uncapped build: the workload generator certifies boundedness
            // against the schema alone, and the engine's planner excludes
            // constraints whose index truncated at the combination cap — a
            // truncated index here would turn certified-bounded queries into
            // refusals. Unary/global constraints keep this O(|E|) regardless.
            let mut indices = AccessIndexSet::build_with_cap(&graph, &schema, usize::MAX);
            let build_ms = t.elapsed().as_nanos() as f64 / 1e6;

            // Maintenance-cost curve: absorb fresh post + author + tag edge
            // batches. Locality says this cost must stay flat as |G| grows.
            let label = |name: &str| graph.interner().get(name).expect("social label exists");
            let users: Vec<NodeId> = graph.nodes_with_label(label("user")).to_vec();
            let tags: Vec<NodeId> = graph.nodes_with_label(label("tag")).to_vec();
            let mut maintenance_nanos = 0u128;
            let mut refreshed = 0u64;
            for i in 0..MAINTENANCE_BATCHES {
                let p = graph.insert_node("post", Value::Int((scale + i) as i64));
                let u = users[(i * 31) % users.len()];
                let tg = tags[(i * 17) % tags.len()];
                graph.insert_edge(u, p).expect("endpoints exist");
                graph.insert_edge(p, tg).expect("endpoints exist");
                let deltas = [
                    GraphDelta::InsertNode(p),
                    GraphDelta::InsertEdge(u, p),
                    GraphDelta::InsertEdge(p, tg),
                ];
                let t = Instant::now();
                let stats = apply_deltas(&mut indices, &graph, &deltas);
                maintenance_nanos += t.elapsed().as_nanos();
                refreshed += stats.refreshed_contributions as u64;
            }

            // Same-seed bounded workload at every scale: identical query
            // recipe, so avg |G_Q| tracking |G| would be a violation of the
            // boundedness contract, not workload drift.
            let wconfig = WorkloadConfig {
                queries: workload_queries,
                seed: 0x1CDE_2015,
                bounded_fraction: 1.0,
                selectivity: Some(0.5),
                min_nodes: 3,
                max_nodes: 5,
                semantics: Semantics::Isomorphism,
                shape_weights: [2, 1, 0, 1],
            };
            let workload = generate_workload(&graph, &schema, &wconfig)
                .expect("curated social tier keeps bounded queries generable");
            let nodes = graph.live_node_count();
            let edges = graph.edge_count();
            let engine = Engine::with_indices(graph, indices);
            let (mut fragment_nodes, mut runs) = (0u64, 0u64);
            let mut total_nanos = 0u128;
            for q in &workload.queries {
                let request = QueryRequest::build(q.pattern.clone())
                    .strategy(StrategyKind::Bounded)
                    .finish();
                let response = engine.execute(&request).expect("workload flagged bounded");
                total_nanos += response.stats.total_nanos as u128;
                if let Some(fetch) = &response.stats.fetch {
                    fragment_nodes += fetch.fragment_nodes as u64;
                    runs += 1;
                }
            }
            let avg_fragment = fragment_nodes as f64 / runs.max(1) as f64;
            ScalePoint {
                scale,
                nodes,
                edges,
                build_ms,
                queries: workload.queries.len(),
                avg_fragment_nodes: avg_fragment,
                fragment_fraction: avg_fragment / nodes.max(1) as f64,
                avg_query_us: total_nanos as f64 / workload.queries.len().max(1) as f64 / 1e3,
                maintenance_us_per_batch: maintenance_nanos as f64
                    / MAINTENANCE_BATCHES as f64
                    / 1e3,
                refreshed_per_batch: refreshed as f64 / MAINTENANCE_BATCHES as f64,
            }
        })
        .collect()
}

/// avg `|G_Q|` at the largest scale over the smallest — the number the
/// `--max-fragment-growth` gate checks.
fn fragment_growth(points: &[ScalePoint]) -> f64 {
    let first = points
        .first()
        .map_or(1.0, |p| p.avg_fragment_nodes.max(1.0));
    let last = points.last().map_or(1.0, |p| p.avg_fragment_nodes.max(1.0));
    last / first
}

fn open_loop_json(tiers: &[OpenLoopTier], config: &BenchConfig, cores: usize) -> String {
    let tier_json: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                "      {{\"offered_qps\": {}, \"scheduled\": {}, \"completed\": {}, \
                 \"achieved_qps\": {:.0}, \"latency_us\": {{\"p50\": {}, \"p95\": {}, \
                 \"p99\": {}, \"mean\": {}, \"max\": {}}}}}",
                t.offered_qps,
                t.scheduled,
                t.completed,
                t.achieved_qps,
                t.latency.quantile(0.5),
                t.latency.quantile(0.95),
                t.latency.quantile(0.99),
                t.latency.mean(),
                t.latency.max(),
            )
        })
        .collect();
    format!(
        "{{\n    \"config\": {{\"duration_ms\": {}, \"lanes\": {}, \"cores\": {}}},\n    \
         \"tiers\": [\n{}\n    ]\n  }}",
        config.duration_ms,
        config.lanes,
        cores,
        tier_json.join(",\n")
    )
}

fn fragment_scaling_json(points: &[ScalePoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "      {{\"scale\": {}, \"nodes\": {}, \"edges\": {}, \"build_ms\": {:.1}, \
                 \"queries\": {}, \"avg_fragment_nodes\": {:.1}, \"fragment_fraction\": {:.6}, \
                 \"avg_query_us\": {:.1}, \"maintenance_us_per_batch\": {:.2}, \
                 \"refreshed_per_batch\": {:.1}}}",
                p.scale,
                p.nodes,
                p.edges,
                p.build_ms,
                p.queries,
                p.avg_fragment_nodes,
                p.fragment_fraction,
                p.avg_query_us,
                p.maintenance_us_per_batch,
                p.refreshed_per_batch,
            )
        })
        .collect();
    format!(
        "{{\n    \"scenario\": \"social\", \"zipf\": 1.1, \"hot_fraction\": 0.5, \
         \"domain\": 50,\n    \"maintenance_batches\": {},\n    \"fragment_growth\": {:.3},\n    \
         \"scales\": [\n{}\n    ]\n  }}",
        MAINTENANCE_BATCHES,
        fragment_growth(points),
        rows.join(",\n")
    )
}

/// The query family: award-winning movies of a given year, with their
/// actors and the actors' countries. Distinct years give distinct patterns
/// (distinct fingerprints); repeating a year exercises the plan cache.
fn build_query(graph: &Graph, year: i64) -> Pattern {
    let mut pb = PatternBuilder::with_interner(graph.interner().clone());
    let m = pb.node("movie", Predicate::always());
    let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, year));
    let a = pb.node("award", Predicate::always());
    let act = pb.node("actor", Predicate::always());
    let c = pb.node("country", Predicate::always());
    pb.edge(y, m);
    pb.edge(a, m);
    pb.edge(m, act);
    pb.edge(act, c);
    pb.build()
}

#[derive(Default)]
struct Timing {
    total_nanos: u128,
    runs: u64,
    answers: u64,
}

impl Timing {
    fn record(&mut self, nanos: u128, answers: usize) {
        self.total_nanos += nanos;
        self.runs += 1;
        self.answers += answers as u64;
    }

    fn avg_micros(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        self.total_nanos as f64 / self.runs as f64 / 1_000.0
    }
}

/// One dataset's text-vs-binary load comparison (min-of-rounds, in ms).
struct LoadTiming {
    name: &'static str,
    /// Line-oriented parse of the checked-in file into a `Graph`.
    text_parse_ms: f64,
    /// Binary load of the same graph from its snapshot sections.
    snapshot_load_ms: f64,
    /// Binary load of the *full* compiled bundle — graph plus the embedded
    /// schema and pre-built indices, i.e. everything `query --snapshot`
    /// needs. The text path would additionally pay discovery + index build.
    bundle_load_ms: f64,
}

impl LoadTiming {
    fn speedup(&self) -> f64 {
        self.text_parse_ms / self.snapshot_load_ms.max(1e-6)
    }
}

/// Minimum wall-clock over `rounds` runs of `f`, in milliseconds.
fn min_ms<T>(rounds: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos() as f64 / 1e6);
    }
    best
}

/// Times loading each checked-in dataset through its line-oriented parser
/// vs. through a compiled binary snapshot (graph + schema + indices). The
/// snapshot side does strictly more — it also restores the indices — and
/// must still win by a wide margin, because it bulk-reads sections instead
/// of parsing, re-interning and re-sorting per record.
fn bench_snapshot_loads(rounds: usize) -> Vec<LoadTiming> {
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data");
    type Parser = fn(&Path) -> Graph;
    let datasets: [(&'static str, PathBuf, Parser); 3] = [
        ("social", data.join("social.tsv"), |p| {
            load_graph(p).expect("checked-in dataset parses")
        }),
        ("citation", data.join("citation.jsonl"), |p| {
            load_jsonl(p).expect("checked-in dataset parses")
        }),
        ("products", data.join("products.jsonl"), |p| {
            load_jsonl(p).expect("checked-in dataset parses")
        }),
    ];
    let tmp = std::env::temp_dir().join("bgpq_bench_snapshots");
    std::fs::create_dir_all(&tmp).expect("temp dir");

    datasets
        .into_iter()
        .map(|(name, path, parse)| {
            let graph = parse(&path);
            let schema = discover_schema(&graph, &DiscoveryConfig::default());
            let indices = AccessIndexSet::build(&graph, &schema);
            let graph_snap = tmp.join(format!("{name}.graph.bgpq"));
            let bundle_snap = tmp.join(format!("{name}.bgpq"));
            save_graph_snapshot(&graph, &graph_snap).expect("compile graph snapshot");
            save_snapshot(&graph, &indices, &bundle_snap).expect("compile bundle");

            // Like for like: both sides produce exactly a `Graph`.
            let text_parse_ms = min_ms(rounds, || parse(&path));
            let snapshot_load_ms = min_ms(rounds, || {
                load_graph_snapshot(&graph_snap).expect("snapshot loads")
            });
            let bundle_load_ms = min_ms(rounds, || {
                load_snapshot(&bundle_snap).expect("bundle loads")
            });
            std::fs::remove_file(&graph_snap).ok();
            std::fs::remove_file(&bundle_snap).ok();
            LoadTiming {
                name,
                text_parse_ms,
                snapshot_load_ms,
                bundle_load_ms,
            }
        })
        .collect()
}

fn json_entry(name: &str, t: &Timing) -> String {
    format!(
        "    \"{}\": {{\"runs\": {}, \"total_ms\": {:.3}, \"avg_us\": {:.1}, \"answers\": {}}}",
        name,
        t.runs,
        t.total_nanos as f64 / 1_000_000.0,
        t.avg_micros(),
        t.answers
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match BenchConfig::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench: {e}");
            eprintln!(
                "usage: bench [--smoke] [--movies N] [--queries K] [--rounds R] \
                 [--partitions P] [--threads T] [--out PATH] [--min-speedup X] \
                 [--min-load-speedup X] [--min-fragment-hit-speedup X] \
                 [--min-bitmap-speedup X] [--min-parallel-per-core X] \
                 [--open-loop] [--offered Q1,Q2,..] [--duration-ms D] [--lanes L] \
                 [--max-p99-ms X] [--scales S1,S2,..] [--workload-queries K] \
                 [--max-fragment-growth X]"
            );
            std::process::exit(2);
        }
    };

    let build_start = Instant::now();
    let graph = build_graph(config.movies);
    let schema = build_schema(&graph, config.movies);
    let engine = Engine::new(graph, &schema);
    let build_ms = build_start.elapsed().as_millis();
    println!(
        "graph: {} nodes, {} edges; indices built in {build_ms} ms",
        engine.graph().node_count(),
        engine.graph().edge_count()
    );

    let queries: Vec<Pattern> = (0..config.queries)
        .map(|i| build_query(engine.graph(), 2000 + (i % 20) as i64))
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Open-loop tiers: a strict arrival grid per offered-load tier, latency
    // measured from the scheduled arrival (see `run_open_loop_tier`). Plan
    // caches are warmed untimed so tier 0 doesn't pay the planning cost.
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| {
            QueryRequest::build(q.clone())
                .strategy(StrategyKind::Bounded)
                .finish()
        })
        .collect();
    for request in &requests {
        engine.execute(request).expect("warm queries are bounded");
    }
    let open_loop: Vec<OpenLoopTier> = config
        .offered
        .iter()
        .map(|&offered| {
            let tier = run_open_loop_tier(
                &engine,
                &requests,
                offered,
                Duration::from_millis(config.duration_ms),
                config.lanes,
            );
            println!(
                "open-loop {:>6} qps offered: {:>6.0} achieved on {} lanes, \
                 p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
                tier.offered_qps,
                tier.achieved_qps,
                config.lanes,
                tier.latency.quantile(0.5) as f64 / 1_000.0,
                tier.latency.quantile(0.95) as f64 / 1_000.0,
                tier.latency.quantile(0.99) as f64 / 1_000.0,
            );
            tier
        })
        .collect();
    if let Some(max) = config.max_p99_ms {
        // Gate the lowest tier only: overload tiers queue by design.
        let p99_ms = open_loop[0].latency.quantile(0.99) as f64 / 1_000.0;
        if p99_ms > max {
            eprintln!(
                "bench: REGRESSION — open_loop p99 at {} offered qps is {p99_ms:.2} ms, \
                 above the allowed {max:.2} ms (on {cores} cores)",
                open_loop[0].offered_qps
            );
            std::process::exit(1);
        }
        println!("bench: open-loop p99 gate passed ({p99_ms:.2} <= {max:.2} ms)");
    }
    if config.open_loop_only {
        println!("open-loop only: skipping comparison sections, report untouched");
        return;
    }

    let mut vf2 = Timing::default();
    let mut opt = Timing::default();
    let mut bounded = Timing::default();
    let mut fragment_nodes = 0u64;
    let mut fragment_build_nanos = 0u128;
    let mut match_nanos = 0u128;

    for round in 0..config.rounds {
        for q in &queries {
            let t = Instant::now();
            let plain = SubgraphMatcher::new(q, engine.graph()).find_all();
            vf2.record(t.elapsed().as_nanos(), plain.len());

            let t = Instant::now();
            let seeded = opt_subgraph_match(q, engine.graph(), engine.indices());
            opt.record(t.elapsed().as_nanos(), seeded.len());

            let t = Instant::now();
            let response = engine
                .execute(
                    &QueryRequest::build(q.clone())
                        .strategy(StrategyKind::Bounded)
                        .finish(),
                )
                .expect("bench queries are bounded by construction");
            bounded.record(t.elapsed().as_nanos(), response.answer.len());
            fragment_build_nanos += response.stats.fragment_build_nanos as u128;
            match_nanos += response.stats.match_nanos as u128;

            if let Some(fetch) = &response.stats.fetch {
                fragment_nodes += fetch.fragment_nodes as u64;
            }
            assert_eq!(plain, seeded, "optVF2 diverged from VF2");
            assert_eq!(
                Some(&plain),
                response.answer.as_matches(),
                "bVF2 diverged from VF2"
            );
        }
        println!(
            "round {}: plan cache {} hits / {} misses",
            round + 1,
            engine.stats().plan_cache_hits,
            engine.stats().plan_cache_misses
        );
    }

    let reps = (config.rounds * config.queries).max(10);
    let fragment = bench_fragment_cache(&engine, reps);
    println!(
        "fragment cache: uncached {:.1} us vs hit {:.1} us ({:.2}x) on the hot query \
         ({} lookups per miss, |G_Q| = {} nodes)",
        fragment.uncached.avg_micros(),
        fragment.hit.avg_micros(),
        fragment.hit_speedup(),
        fragment.lookups_per_miss,
        fragment.fragment_nodes
    );
    let batch = bench_batch(&engine, &queries, config.rounds.max(3));
    println!(
        "batch: sequential {:.1} us vs batched {:.1} us per workload pass \
         ({} lookups alone, {} issued + {} deduped batched)",
        batch.sequential.avg_micros(),
        batch.batched.avg_micros(),
        batch.lookups_sequential,
        batch.lookups_batched,
        batch.lookups_deduped
    );

    let partitioned = bench_partitioned(
        &engine,
        &queries,
        config.rounds.max(3),
        config.partitions,
        config.threads,
    );
    println!(
        "partitioned: serial {:.1} us vs {} shards / {} threads {:.1} us per workload pass \
         ({:.2}x, {:.2}x per effective worker on {} cores), answers identical",
        partitioned.serial.avg_micros(),
        partitioned.partitions,
        partitioned.threads,
        partitioned.parallel.avg_micros(),
        partitioned.speedup(),
        partitioned.per_core_speedup(cores),
        cores
    );
    let bitmap = bench_bitmap_dedup(engine.graph(), config.rounds * config.queries);
    println!(
        "bitmap dedup: sort+dedup {:.1} us vs bitmap {:.1} us ({:.2}x) on a \
         {}-entry union ({} unique)",
        bitmap.sorted_vec.avg_micros(),
        bitmap.bitmap.avg_micros(),
        bitmap.speedup(),
        bitmap.union_len,
        bitmap.unique
    );

    let scaling = bench_fragment_scaling(&config.scales, config.workload_queries);
    for p in &scaling {
        println!(
            "scale {:>8}: |G| = {} nodes / {} edges (built in {:.0} ms), \
             avg |G_Q| = {:.1} nodes ({:.4}% of |G|), query {:.1} us avg, \
             maintenance {:.1} us per 3-delta batch ({:.1} contributions)",
            p.scale,
            p.nodes,
            p.edges,
            p.build_ms,
            p.avg_fragment_nodes,
            100.0 * p.fragment_fraction,
            p.avg_query_us,
            p.maintenance_us_per_batch,
            p.refreshed_per_batch,
        );
    }
    let growth = fragment_growth(&scaling);
    let graph_growth = scaling.last().map_or(1.0, |p| p.nodes as f64)
        / scaling.first().map_or(1.0, |p| p.nodes.max(1) as f64);
    println!("fragment scaling: avg |G_Q| grew {growth:.2}x while |G| grew {graph_growth:.0}x");

    let loads = bench_snapshot_loads(15);
    for l in &loads {
        println!(
            "load {}: text parse {:.3} ms | snapshot load {:.3} ms ({:.1}x) | \
             full bundle {:.3} ms",
            l.name,
            l.text_parse_ms,
            l.snapshot_load_ms,
            l.speedup(),
            l.bundle_load_ms
        );
    }
    let snapshot_load_json = loads
        .iter()
        .map(|l| {
            format!(
                "    \"{}\": {{\"text_parse_ms\": {:.3}, \"snapshot_load_ms\": {:.3}, \
                 \"bundle_load_ms\": {:.3}, \"speedup\": {:.2}}}",
                l.name,
                l.text_parse_ms,
                l.snapshot_load_ms,
                l.bundle_load_ms,
                l.speedup()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let stats = engine.stats();
    let graph_nodes = engine.graph().node_count() as f64;
    let avg_fragment = fragment_nodes as f64 / bounded.runs.max(1) as f64;
    let runs = bounded.runs.max(1) as f64;
    let avg_build_us = fragment_build_nanos as f64 / runs / 1_000.0;
    let avg_match_us = match_nanos as f64 / runs / 1_000.0;
    let vf2_over_bvf2 = vf2.avg_micros() / bounded.avg_micros().max(0.001);
    let report = format!
(
        "{{\n  \"config\": {{\"movies\": {}, \"queries\": {}, \"rounds\": {}, \"cores\": {}, \"partitions\": {}, \"threads\": {}}},\n  \"graph\": {{\"nodes\": {}, \"edges\": {}}},\n  \"algorithms\": {{\n{},\n{},\n{}\n  }},\n  \"bvf2_breakdown\": {{\"fragment_build_us\": {:.1}, \"match_us\": {:.1}}},\n  \"fragment\": {{\"avg_nodes\": {:.1}, \"avg_fraction_of_graph\": {:.5}}},\n  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n  \"fragment_cache\": {{\"uncached_us\": {:.1}, \"hit_us\": {:.1}, \"hit_speedup\": {:.2}, \"lookups_per_miss\": {}, \"fragment_nodes\": {}}},\n  \"batch\": {{\"sequential_us\": {:.1}, \"batch_us\": {:.1}, \"lookups_sequential\": {}, \"lookups_batched\": {}, \"lookups_deduped\": {}}},\n  \"partitioned\": {{\"partitions\": {}, \"threads\": {}, \"serial_us\": {:.1}, \"parallel_us\": {:.1}, \"speedup\": {:.2}, \"per_core_speedup\": {:.2}}},\n  \"bitmap_dedup\": {{\"sorted_vec_us\": {:.1}, \"bitmap_us\": {:.1}, \"speedup\": {:.2}, \"union_len\": {}, \"unique\": {}}},\n  \"snapshot_load\": {{\n{}\n  }},\n  \"open_loop\": {},\n  \"fragment_scaling\": {},\n  \"speedup\": {{\"vf2_over_bvf2\": {:.2}, \"optvf2_over_bvf2\": {:.2}}}\n}}\n",
        config.movies,
        config.queries,
        config.rounds,
        cores,
        config.partitions,
        config.threads,
        engine.graph().node_count(),
        engine.graph().edge_count(),
        json_entry("vf2", &vf2),
        json_entry("optvf2", &opt),
        json_entry("bvf2_engine", &bounded),
        avg_build_us,
        avg_match_us,
        avg_fragment,
        avg_fragment / graph_nodes,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.plan_cache_evictions,
        fragment.uncached.avg_micros(),
        fragment.hit.avg_micros(),
        fragment.hit_speedup(),
        fragment.lookups_per_miss,
        fragment.fragment_nodes,
        batch.sequential.avg_micros(),
        batch.batched.avg_micros(),
        batch.lookups_sequential,
        batch.lookups_batched,
        batch.lookups_deduped,
        partitioned.partitions,
        partitioned.threads,
        partitioned.serial.avg_micros(),
        partitioned.parallel.avg_micros(),
        partitioned.speedup(),
        partitioned.per_core_speedup(cores),
        bitmap.sorted_vec.avg_micros(),
        bitmap.bitmap.avg_micros(),
        bitmap.speedup(),
        bitmap.union_len,
        bitmap.unique,
        snapshot_load_json,
        open_loop_json(&open_loop, &config, cores),
        fragment_scaling_json(&scaling),
        vf2_over_bvf2,
        opt.avg_micros() / bounded.avg_micros().max(0.001),
    );
    std::fs::write(&config.out, &report).expect("write bench report");
    println!(
        "vf2 {:.1} us | optvf2 {:.1} us | bvf2(engine) {:.1} us per query \
         (fragment build {:.1} us + match {:.1} us); report -> {}",
        vf2.avg_micros(),
        opt.avg_micros(),
        bounded.avg_micros(),
        avg_build_us,
        avg_match_us,
        config.out
    );
    if let Some(min) = config.min_speedup {
        if vf2_over_bvf2 < min {
            eprintln!(
                "bench: REGRESSION — speedup.vf2_over_bvf2 = {vf2_over_bvf2:.2} \
                 is below the required minimum {min:.2}"
            );
            std::process::exit(1);
        }
        println!("bench: speedup gate passed ({vf2_over_bvf2:.2} >= {min:.2})");
    }
    if let Some(min) = config.min_fragment_hit_speedup {
        let speedup = fragment.hit_speedup();
        if speedup < min {
            eprintln!(
                "bench: REGRESSION — fragment_cache.hit_speedup = {speedup:.2} \
                 is below the required minimum {min:.2}"
            );
            std::process::exit(1);
        }
        println!("bench: fragment-cache hit gate passed ({speedup:.2} >= {min:.2})");
    }
    if let Some(min) = config.min_bitmap_speedup {
        let speedup = bitmap.speedup();
        if speedup < min {
            eprintln!(
                "bench: REGRESSION — bitmap_dedup.speedup = {speedup:.2} \
                 is below the required minimum {min:.2}"
            );
            std::process::exit(1);
        }
        println!("bench: bitmap dedup gate passed ({speedup:.2} >= {min:.2})");
    }
    if let Some(min) = config.min_parallel_per_core {
        let per_core = partitioned.per_core_speedup(cores);
        if per_core < min {
            eprintln!(
                "bench: REGRESSION — partitioned.per_core_speedup = {per_core:.2} \
                 is below the required minimum {min:.2} \
                 ({} threads on {cores} cores)",
                partitioned.threads
            );
            std::process::exit(1);
        }
        println!("bench: partitioned per-core gate passed ({per_core:.2} >= {min:.2})");
    }
    if let Some(max) = config.max_fragment_growth {
        if growth > max {
            eprintln!(
                "bench: REGRESSION — fragment_scaling.fragment_growth = {growth:.2} \
                 exceeds the allowed {max:.2} (avg |G_Q| is tracking |G|)"
            );
            std::process::exit(1);
        }
        println!("bench: fragment-growth gate passed ({growth:.2} <= {max:.2})");
    }
    if let Some(min) = config.min_load_speedup {
        for l in &loads {
            let speedup = l.speedup();
            if speedup < min {
                eprintln!(
                    "bench: REGRESSION — snapshot_load.{}.speedup = {speedup:.2} \
                     is below the required minimum {min:.2}",
                    l.name
                );
                std::process::exit(1);
            }
        }
        println!("bench: snapshot load gate passed (all datasets >= {min:.2}x)");
    }
}
