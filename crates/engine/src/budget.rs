//! Mapping service-level deadlines onto the engine's deterministic budgets.
//!
//! The engine's only notion of "time" is the search-step budget
//! ([`QueryRequest::step_budget`](crate::QueryRequest::step_budget)): a
//! deterministic counter the matchers check as they expand search-tree
//! nodes. A serving front end, however, promises clients *wall-clock*
//! deadlines ("answer within 50 ms or tell me you couldn't"). [`BudgetPolicy`]
//! bridges the two: it converts a deadline into a step budget using a
//! calibrated steps-per-millisecond rate, so the service-level contract maps
//! onto the same mechanism that makes bounded evaluation enforceable inside
//! the engine — and stays reproducible in tests, where a real timer would
//! flake.
//!
//! The default rate is deliberately conservative (a step is a candidate
//! expansion plus predicate/adjacency checks, tens of nanoseconds in release
//! builds; we budget as if each cost 50 ns) so a deadline-derived budget
//! aborts *before* the wall-clock deadline on release hardware rather than
//! after.

use std::time::Duration;

/// Converts per-request deadlines into engine step budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetPolicy {
    /// Matcher steps granted per millisecond of deadline.
    pub steps_per_milli: u64,
    /// Lower bound on any derived budget, so a tiny deadline still lets a
    /// query inspect a handful of candidates instead of aborting on arrival.
    pub floor_steps: u64,
}

impl Default for BudgetPolicy {
    /// 20 000 steps/ms (50 ns/step) with a 500-step floor.
    fn default() -> Self {
        BudgetPolicy {
            steps_per_milli: 20_000,
            floor_steps: 500,
        }
    }
}

impl BudgetPolicy {
    /// The step budget for a request that must finish within `deadline`.
    /// Sub-millisecond deadlines round up to one millisecond before the
    /// floor applies; the result saturates instead of overflowing.
    ///
    /// The wire protocol never delivers a zero deadline: `deadline_ms: 0`
    /// is rejected at decode (see `bgpq-net`), so the 1 ms round-up here
    /// only smooths genuinely sub-millisecond [`Duration`]s from embedded
    /// callers — it is a floor, not a loophole for "no deadline".
    pub fn step_budget_for(&self, deadline: Duration) -> u64 {
        let millis = u64::try_from(deadline.as_millis().max(1)).unwrap_or(u64::MAX);
        millis
            .saturating_mul(self.steps_per_milli)
            .max(self.floor_steps)
    }

    /// Combines a deadline with an explicit step budget: the effective
    /// budget is the smaller of the two (a client may not buy more work
    /// with a long deadline than its explicit budget allows, nor the other
    /// way around).
    pub fn effective_step_budget(
        &self,
        deadline: Option<Duration>,
        explicit: Option<u64>,
    ) -> Option<u64> {
        match (deadline.map(|d| self.step_budget_for(d)), explicit) {
            (Some(from_deadline), Some(explicit)) => Some(from_deadline.min(explicit)),
            (Some(from_deadline), None) => Some(from_deadline),
            (None, explicit) => explicit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_maps_linearly_with_floor() {
        let policy = BudgetPolicy::default();
        assert_eq!(policy.step_budget_for(Duration::from_millis(10)), 200_000);
        // Sub-millisecond deadlines get one millisecond's worth of steps.
        assert_eq!(policy.step_budget_for(Duration::from_micros(100)), 20_000);
        let tiny = BudgetPolicy {
            steps_per_milli: 10,
            floor_steps: 500,
        };
        assert_eq!(tiny.step_budget_for(Duration::from_millis(3)), 500);
        assert_eq!(tiny.step_budget_for(Duration::from_millis(60)), 600);
    }

    #[test]
    fn huge_deadlines_saturate() {
        let policy = BudgetPolicy::default();
        assert_eq!(policy.step_budget_for(Duration::MAX), u64::MAX);
    }

    #[test]
    fn effective_budget_takes_the_minimum() {
        let policy = BudgetPolicy {
            steps_per_milli: 1_000,
            floor_steps: 1,
        };
        let d = Some(Duration::from_millis(5)); // 5_000 steps
        assert_eq!(policy.effective_step_budget(d, None), Some(5_000));
        assert_eq!(policy.effective_step_budget(d, Some(2_000)), Some(2_000));
        assert_eq!(policy.effective_step_budget(d, Some(9_000)), Some(5_000));
        assert_eq!(policy.effective_step_budget(None, Some(7)), Some(7));
        assert_eq!(policy.effective_step_budget(None, None), None);
    }
}
