//! Unified execution and engine statistics.

use bgpq_core::FetchStats;
use std::fmt;

/// What the plan cache did for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The plan (or the planner's refusal) was served from the cache.
    Hit,
    /// The planner ran and its outcome was inserted into the cache.
    Miss,
    /// The cache is disabled (capacity 0); the planner ran uncached.
    Bypass,
}

impl fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheOutcome::Hit => write!(f, "hit"),
            CacheOutcome::Miss => write!(f, "miss"),
            CacheOutcome::Bypass => write!(f, "bypass"),
        }
    }
}

/// Per-request execution statistics, unified across strategies.
///
/// Fields that only make sense for some strategies are `Option`s: a
/// [`Baseline`](crate::StrategyKind::Baseline) run has no fetch, a
/// simulation run has no matcher step counter.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// The snapshot version (epoch) of the engine that served the request —
    /// lets a caller of a concurrently-updated serving layer attribute an
    /// answer to the exact graph version it was computed on.
    pub snapshot_version: u64,
    /// Nanoseconds spent deciding boundedness / retrieving the plan
    /// (including the cache probe).
    pub plan_nanos: u64,
    /// Nanoseconds spent fetching candidates and building the fragment view
    /// (`0` unless the bounded strategy ran) — the paper-side cost of
    /// assembling `G_Q` before any matching happens.
    pub fragment_build_nanos: u64,
    /// Nanoseconds spent in the matcher proper (for bounded runs, the
    /// strategy's execution time minus [`ExecStats::fragment_build_nanos`]).
    pub match_nanos: u64,
    /// End-to-end nanoseconds for the request inside the engine.
    pub total_nanos: u64,
    /// What the plan cache did for this request.
    pub plan_cache: Option<CacheOutcome>,
    /// What the fragment cache did for this request (`Some` iff the bounded
    /// strategy ran). On a [`CacheOutcome::Hit`] the fetch skipped every
    /// index lookup: [`ExecStats::fetch`] then reports only this request's
    /// own work (zero lookups, the view-construction time), while the
    /// fragment-size fields still describe the reused fragment.
    pub fragment_cache: Option<CacheOutcome>,
    /// Candidate nodes rejected by the pattern's predicates before matching,
    /// reported by **every** strategy: the bounded tier counts fetched nodes
    /// its predicates dropped, the seeded tier counts drops during candidate
    /// seeding, and the baseline counts label-compatible nodes failing their
    /// predicate.
    pub predicate_filtered: u64,
    /// Fetch counters (index lookups, fragment size `|G_Q|`), present iff
    /// the bounded strategy ran.
    pub fetch: Option<FetchStats>,
    /// The plan's a-priori bound on fetched nodes — compare with
    /// [`FetchStats::fragment_nodes`] for the paper's "actual vs. worst
    /// case" measurement. Present iff the pattern is effectively bounded.
    pub worst_case_nodes: Option<u64>,
    /// Search-tree nodes the matcher expanded (VF2-family strategies only).
    pub matcher_steps: Option<u64>,
    /// True when the matcher stopped early because the request's step
    /// budget was exhausted — the answer may be incomplete.
    pub aborted: bool,
}

impl ExecStats {
    /// Fraction of the worst-case node bound the fetch actually used, when
    /// both sides are known (`None` for unbounded patterns or non-bounded
    /// strategies; `0.0` when the worst case is itself zero).
    pub fn fetch_utilization(&self) -> Option<f64> {
        let fetch = self.fetch.as_ref()?;
        let bound = self.worst_case_nodes?;
        if bound == 0 {
            return Some(0.0);
        }
        Some(fetch.fragment_nodes as f64 / bound as f64)
    }
}

/// Counters over an [`Engine`](crate::Engine)'s lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// The snapshot version (epoch) this engine serves; `0` for standalone
    /// engines, the commit epoch for engines in a serving snapshot chain.
    pub snapshot_version: u64,
    /// Requests executed (successful or not).
    pub queries: u64,
    /// Requests answered by the bounded strategy.
    pub bounded_runs: u64,
    /// Requests that wanted the bounded strategy but fell back because the
    /// pattern is unbounded under the engine's schema.
    pub fallbacks: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (planner runs that were cached).
    pub plan_cache_misses: u64,
    /// Plans evicted to respect the cache capacity.
    pub plan_cache_evictions: u64,
    /// Cached planning outcomes dropped because they were computed against a
    /// different snapshot version than the probing engine's — the cost of a
    /// version bump under a shared plan cache.
    pub plan_cache_invalidations: u64,
    /// Plans (or negative outcomes) currently cached.
    pub cached_plans: usize,
    /// Fragment-cache hits: bounded queries that reused a cached candidate
    /// set and skipped every index lookup.
    pub fragment_cache_hits: u64,
    /// Fragment-cache misses (fetch passes whose candidate set was cached).
    pub fragment_cache_misses: u64,
    /// Candidate sets evicted to respect the fragment-cache capacity.
    pub fragment_cache_evictions: u64,
    /// Cached candidate sets retired because a newer snapshot version
    /// re-fetched the same key — the commit-piggybacked invalidation of the
    /// fragment cache.
    pub fragment_cache_invalidations: u64,
    /// Candidate sets currently cached.
    pub cached_fragments: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_utilization_requires_both_sides() {
        let mut s = ExecStats::default();
        assert_eq!(s.fetch_utilization(), None);
        s.worst_case_nodes = Some(10);
        assert_eq!(s.fetch_utilization(), None);
        s.fetch = Some(FetchStats {
            fragment_nodes: 5,
            ..FetchStats::default()
        });
        assert_eq!(s.fetch_utilization(), Some(0.5));
        s.worst_case_nodes = Some(0);
        assert_eq!(s.fetch_utilization(), Some(0.0));
    }

    #[test]
    fn cache_outcome_displays() {
        assert_eq!(CacheOutcome::Hit.to_string(), "hit");
        assert_eq!(CacheOutcome::Miss.to_string(), "miss");
        assert_eq!(CacheOutcome::Bypass.to_string(), "bypass");
    }
}
