//! # bgpq-engine
//!
//! The session-oriented query engine of the `bgpq` workspace — the single
//! public entry point over the pipeline of *Making Pattern Queries Bounded
//! in Big Graphs* (Cao, Fan, Huai, Huang, ICDE 2015).
//!
//! The lower crates expose the paper's pieces as free functions: deciding
//! effective boundedness ([`plan_query`]), fetching the bounded fragment
//! `G_Q` ([`execute_plan`]), and the matchers (`VF2`/`optVF2`/`bVF2`,
//! `gsim`/`optgsim`/`bSim`). A production caller serving many queries over
//! one graph should not hand-wire those per request; the [`Engine`] does it
//! once, per session:
//!
//! ```text
//!  QueryRequest ──► plan cache (LRU, keyed by pattern fingerprint
//!       │            + semantics; caches unbounded verdicts too)
//!       ▼
//!  strategy selection ──► Bounded (bVF2/bSim)        when a plan exists
//!       │                 IndexSeeded (optVF2/optgsim)  else, with indices
//!       ▼                 Baseline (VF2/gsim)           always
//!  QueryResponse { answer, strategy, ExecStats, Explain? }
//! ```
//!
//! All strategies return identical answers — the engine trades cost, never
//! correctness — so callers get the paper's bounded evaluation whenever the
//! schema supports it and a graceful, *sound* fallback whenever it does
//! not.
//!
//! The crate re-exports the request-facing types of the whole workspace
//! (patterns, schemas, matchers, plans, the unified [`BgpqError`]), so
//! `bgpq-engine` is the only dependency an application needs; the free
//! functions remain available for callers that want to drive single steps
//! themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
mod cache;
pub mod engine;
pub mod error;
pub mod request;
pub mod response;
pub mod stats;
pub mod strategy;

pub use budget::BudgetPolicy;
pub use cache::{SharedFragmentCache, SharedPlanCache};
pub use engine::{
    Engine, DEFAULT_FRAGMENT_CACHE_CAPACITY, DEFAULT_PLAN_CACHE_CAPACITY, INITIAL_SNAPSHOT_VERSION,
};
pub use error::BgpqError;
pub use request::{QueryRequest, QueryRequestBuilder};
pub use response::{Explain, QueryAnswer, QueryResponse};
pub use stats::{CacheOutcome, EngineStats, ExecStats};
pub use strategy::{Baseline, Bounded, IndexSeeded, Strategy, StrategyKind, StrategyRun};

// The workspace's request-facing surface, re-exported so applications can
// depend on `bgpq-engine` alone.
pub use bgpq_access::{
    apply_delta, apply_deltas, check_schema, discover_schema, load_schema, load_snapshot,
    read_schema, read_snapshot, save_schema, save_snapshot, write_schema, write_snapshot,
    AccessConstraint, AccessIndexSet, AccessSchema, ConstraintId, ConstraintIndex, ConstraintKind,
    DiscoveryConfig, GraphDelta, MaintenanceStats, SnapshotBundle, TouchedNodes,
};
pub use bgpq_core::{
    bounded_simulation_match, bounded_simulation_match_planned,
    bounded_simulation_match_prefetched, bounded_subgraph_match, bounded_subgraph_match_planned,
    bounded_subgraph_match_prefetched, execute_plan, fetch_candidate_sets, plan_for_indices,
    plan_query, BoundedRun, CandidateSet, FetchResult, FetchStats, LookupMemo, PlanError,
    QueryPlan, Semantics,
};
pub use bgpq_graph::{
    FragmentView, Graph, GraphAccess, GraphBuilder, GraphError, Label, LabelInterner, NodeId,
    ScratchArena, SnapshotError, Subgraph, Value,
};
pub use bgpq_matching::{
    opt_simulation_match, opt_simulation_match_stats, opt_subgraph_match, opt_subgraph_match_stats,
    simulation_match, Match, MatchSet, SeedStats, SimulationMatcher, SimulationRelation,
    SubgraphMatcher, Vf2Config, Vf2Stats,
};
pub use bgpq_pattern::{
    parse_pattern, Pattern, PatternBuilder, PatternFingerprint, Predicate, WorkloadGenerator,
};
pub use bgpq_shard::{
    decode_shards_section, encode_shards_section, load_sharded_snapshot, save_sharded_snapshot,
    PartitionScheme, PartitionSpec, ShardConfig, ShardRuntime, ShardedGraph, ShardedIndexSet,
};
