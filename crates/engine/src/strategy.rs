//! Evaluation strategies and their selection contract.
//!
//! The paper's three evaluation tiers become implementations of one
//! [`Strategy`] trait:
//!
//! * [`Bounded`] — `bVF2`/`bSim`: fetch the bounded fragment `G_Q` through
//!   access-constraint indices and match on it. Requires a [`QueryPlan`],
//!   i.e. the pattern must be effectively bounded under the engine's schema
//!   for the requested semantics.
//! * [`IndexSeeded`] — `optVF2`/`optgsim`: match on the whole graph, but
//!   narrow candidate sets through the indices first. Sound for every
//!   pattern; useful whenever the schema is non-empty.
//! * [`Baseline`] — `VF2`/`gsim`: plain whole-graph matching. Always
//!   applicable.
//!
//! All three return identical answers (the equivalence suites lock this
//! down); they differ only in cost. The [`Engine`] walks its
//! strategies in this order and runs the first applicable one, which gives
//! the automatic bounded → seeded → baseline fallback the paper's
//! experiments hand-wired.

use crate::engine::Engine;
use crate::request::QueryRequest;
use crate::response::QueryAnswer;
use crate::stats::CacheOutcome;
use bgpq_core::{FetchStats, QueryPlan, Semantics};
use bgpq_graph::Graph;
use bgpq_matching::{
    opt_simulation_match_stats, opt_subgraph_match_stats, simulation_match, SubgraphMatcher,
    Vf2Config,
};
use bgpq_pattern::Pattern;
use std::fmt;

/// Identifies a strategy, in responses and for per-request overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Bounded evaluation on the fetched fragment (`bVF2`/`bSim`).
    Bounded,
    /// Whole-graph matching with index-seeded candidates
    /// (`optVF2`/`optgsim`).
    IndexSeeded,
    /// Plain whole-graph matching (`VF2`/`gsim`).
    Baseline,
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyKind::Bounded => write!(f, "bounded (bVF2/bSim)"),
            StrategyKind::IndexSeeded => write!(f, "index-seeded (optVF2/optgsim)"),
            StrategyKind::Baseline => write!(f, "baseline (VF2/gsim)"),
        }
    }
}

/// What a strategy hands back to the engine: the answer plus whatever
/// counters the tier produces.
#[derive(Debug, Clone)]
pub struct StrategyRun {
    /// The answer, over node ids of the engine's graph.
    pub answer: QueryAnswer,
    /// Fetch counters, when the strategy fetched a fragment.
    pub fetch: Option<FetchStats>,
    /// Candidate nodes the pattern's predicates rejected before matching
    /// (see [`ExecStats::predicate_filtered`](crate::ExecStats::predicate_filtered)
    /// for the per-strategy meaning). Populated by every strategy.
    pub predicate_filtered: u64,
    /// Search-tree steps, when the strategy ran a VF2-family search.
    pub matcher_steps: Option<u64>,
    /// True when the search stopped on the request's step budget.
    pub aborted: bool,
    /// What the fragment cache did, when the bounded strategy consulted it
    /// (`None` for the non-bounded tiers, which fetch no fragment).
    pub fragment_cache: Option<CacheOutcome>,
}

/// One evaluation tier the engine can dispatch a request to.
///
/// Implementations must return, for every request they claim to be
/// applicable to, exactly the same answer as every other strategy (modulo
/// truncation by the request's budgets): strategies trade cost, never
/// correctness. The engine guarantees `execute` is only called when
/// `is_applicable` returned true with the same arguments.
pub trait Strategy: Send + Sync {
    /// The tier this strategy implements.
    fn kind(&self) -> StrategyKind;

    /// Whether this strategy can serve `request` on `engine`. `plan` is the
    /// cached planning outcome for the request's pattern and semantics —
    /// `Some` iff the pattern is effectively bounded under the engine's
    /// schema.
    fn is_applicable(
        &self,
        engine: &Engine,
        request: &QueryRequest,
        plan: Option<&QueryPlan>,
    ) -> bool;

    /// Evaluates `request` on `engine`.
    fn execute(
        &self,
        engine: &Engine,
        request: &QueryRequest,
        plan: Option<&QueryPlan>,
    ) -> StrategyRun;
}

/// Translates the request's budgets into matcher knobs.
pub(crate) fn vf2_config(request: &QueryRequest) -> Vf2Config {
    Vf2Config {
        max_matches: request.max_matches(),
        max_steps: request.step_budget(),
    }
}

/// `bVF2`/`bSim` on the fetched bounded fragment.
pub struct Bounded;

impl Strategy for Bounded {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Bounded
    }

    fn is_applicable(&self, _: &Engine, _: &QueryRequest, plan: Option<&QueryPlan>) -> bool {
        plan.is_some()
    }

    fn execute(
        &self,
        engine: &Engine,
        request: &QueryRequest,
        plan: Option<&QueryPlan>,
    ) -> StrategyRun {
        let plan = plan.expect("engine dispatches Bounded only with a plan");
        // The bounded tier lives on the engine: it owns the fragment cache
        // and the batch lookup memo this trait's signature cannot carry.
        engine.run_bounded(request, plan, None)
    }
}

/// `optVF2`/`optgsim`: whole-graph matching with index-narrowed candidates.
pub struct IndexSeeded;

impl Strategy for IndexSeeded {
    fn kind(&self) -> StrategyKind {
        StrategyKind::IndexSeeded
    }

    fn is_applicable(&self, engine: &Engine, _: &QueryRequest, _: Option<&QueryPlan>) -> bool {
        // With no indices, seeding degenerates to label scans — identical to
        // the baseline at strictly more bookkeeping, so don't claim it.
        !engine.indices().is_empty()
    }

    fn execute(
        &self,
        engine: &Engine,
        request: &QueryRequest,
        _: Option<&QueryPlan>,
    ) -> StrategyRun {
        match request.semantics() {
            Semantics::Isomorphism => {
                let (matches, stats, seed) = opt_subgraph_match_stats(
                    request.pattern(),
                    engine.graph(),
                    engine.indices(),
                    vf2_config(request),
                );
                StrategyRun {
                    answer: QueryAnswer::Matches(matches),
                    fetch: None,
                    predicate_filtered: seed.predicate_filtered,
                    matcher_steps: Some(stats.steps),
                    aborted: stats.aborted,
                    fragment_cache: None,
                }
            }
            Semantics::Simulation => {
                let (relation, seed) =
                    opt_simulation_match_stats(request.pattern(), engine.graph(), engine.indices());
                StrategyRun {
                    answer: QueryAnswer::Simulation(relation),
                    fetch: None,
                    predicate_filtered: seed.predicate_filtered,
                    matcher_steps: None,
                    aborted: false,
                    fragment_cache: None,
                }
            }
        }
    }
}

/// `VF2`/`gsim`: plain whole-graph matching, the always-available floor.
pub struct Baseline;

impl Strategy for Baseline {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Baseline
    }

    fn is_applicable(&self, _: &Engine, _: &QueryRequest, _: Option<&QueryPlan>) -> bool {
        true
    }

    fn execute(
        &self,
        engine: &Engine,
        request: &QueryRequest,
        _: Option<&QueryPlan>,
    ) -> StrategyRun {
        let predicate_filtered = label_scan_predicate_filtered(request.pattern(), engine.graph());
        match request.semantics() {
            Semantics::Isomorphism => {
                let (matches, stats) = SubgraphMatcher::new(request.pattern(), engine.graph())
                    .with_config(vf2_config(request))
                    .run();
                StrategyRun {
                    answer: QueryAnswer::Matches(matches),
                    fetch: None,
                    predicate_filtered,
                    matcher_steps: Some(stats.steps),
                    aborted: stats.aborted,
                    fragment_cache: None,
                }
            }
            Semantics::Simulation => StrategyRun {
                answer: QueryAnswer::Simulation(simulation_match(
                    request.pattern(),
                    engine.graph(),
                )),
                fetch: None,
                predicate_filtered,
                matcher_steps: None,
                aborted: false,
                fragment_cache: None,
            },
        }
    }
}

/// The baseline's `predicate_filtered` counter: label-compatible data nodes
/// each pattern node's predicate rejects. A reporting scan (one pass over
/// the label index per pattern node), kept out of the matchers so it cannot
/// perturb their search statistics.
fn label_scan_predicate_filtered(pattern: &Pattern, graph: &Graph) -> u64 {
    pattern
        .nodes()
        .map(|u| {
            graph
                .nodes_with_label(pattern.label(u))
                .iter()
                .filter(|&&v| !pattern.predicate(u).eval(graph.value(v)))
                .count() as u64
        })
        .sum()
}
