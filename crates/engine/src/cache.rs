//! The LRU plan cache.
//!
//! Planning — the effective-boundedness closure of
//! [`bgpq_core::plan_query`] — is cheap next to matching, but a
//! session-oriented engine sees the *same* patterns over and over (dashboard
//! queries, templated lookups), and the planner's outcome for a pattern
//! never changes while the schema is fixed. [`PlanCache`] memoizes it, keyed
//! by the canonical [`PatternFingerprint`](bgpq_pattern::PatternFingerprint)
//! plus the [`Semantics`]: the second identical request skips the closure
//! entirely, and *negative* outcomes (the pattern is unbounded) are cached
//! too, so repeated unbounded queries skip straight to their fallback
//! strategy.
//!
//! Eviction is least-recently-used over a bounded number of entries. The
//! implementation keeps a logical clock per entry and evicts the smallest
//! stamp — `O(capacity)` per eviction, which for the intended capacities
//! (tens to a few thousand plans, each a handful of steps) is noise
//! compared to one avoided planning run.
//!
//! Under a **mutable** graph the planner's outcome is no longer eternal: an
//! update can create or destroy the index coverage a plan (or an unbounded
//! verdict) depends on. Slots are therefore keyed by *(pattern fingerprint,
//! semantics, snapshot version)*: a probe only ever sees outcomes planned
//! against its own version, entries of **different versions coexist** (a
//! reader pinned to an old snapshot keeps its cache locality instead of
//! fighting the current version's readers slot for slot), and re-planning a
//! pattern at a newer version retires that pattern's strictly-older entries,
//! counted as *invalidations*. A [`SharedPlanCache`] can be handed to the
//! engines of successive snapshots so the chain shares one bounded cache
//! without ever serving a stale plan.

use bgpq_core::{PlanError, QueryPlan, Semantics};
use bgpq_pattern::PatternFingerprint;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: what the planner's outcome depends on, given a fixed schema.
pub(crate) type PlanKey = (PatternFingerprint, Semantics);

/// A memoized planning outcome — the plan, or the planner's refusal.
pub(crate) type PlanOutcome = Arc<Result<QueryPlan, PlanError>>;

struct Slot {
    outcome: PlanOutcome,
    last_used: u64,
}

/// A bounded least-recently-used cache of planning outcomes.
pub(crate) struct PlanCache {
    capacity: usize,
    /// Keyed by (pattern fingerprint + semantics, snapshot version).
    slots: HashMap<(PlanKey, u64), Slot>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// A plan cache that can be shared by the engines of successive graph
/// snapshots (see [`Engine::with_indices_at_version`](crate::Engine::with_indices_at_version)).
///
/// Cloning is cheap and shares the underlying cache. Entries are validated
/// against the probing engine's snapshot version, so sharing never serves a
/// plan computed against another version's index coverage.
#[derive(Clone)]
pub struct SharedPlanCache(pub(crate) Arc<Mutex<PlanCache>>);

impl SharedPlanCache {
    /// Creates a shared cache holding at most `capacity` outcomes
    /// (`0` disables caching).
    pub fn with_capacity(capacity: usize) -> Self {
        SharedPlanCache(Arc::new(Mutex::new(PlanCache::new(capacity))))
    }
}

impl Default for SharedPlanCache {
    /// A shared cache with the engine's default capacity.
    fn default() -> Self {
        Self::with_capacity(crate::engine::DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for SharedPlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cache = self.0.lock().expect("plan cache poisoned");
        f.debug_struct("SharedPlanCache")
            .field("capacity", &cache.capacity)
            .field("len", &cache.len())
            .finish()
    }
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` outcomes. Capacity `0`
    /// disables caching (every lookup reports [`CacheOutcome::Bypass`]).
    pub(crate) fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            slots: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Looks `key` up for an engine at `version`, counting a hit or a miss.
    /// Only an outcome planned against exactly `version` is returned — a
    /// commit may have changed the index coverage the plan (or unbounded
    /// verdict) depends on, so other versions' slots are invisible (though
    /// retained for the readers pinned to them). Returns `None` both on a
    /// miss and when caching is disabled — the caller distinguishes the two
    /// via [`PlanCache::is_enabled`] and is expected to plan *outside* the
    /// cache lock, then [`PlanCache::insert`] the outcome: holding the lock
    /// across a planning run would serialize unrelated requests behind it.
    pub(crate) fn probe(&mut self, key: &PlanKey, version: u64) -> Option<PlanOutcome> {
        if self.capacity == 0 {
            return None;
        }
        self.clock += 1;
        match self.slots.get_mut(&(*key, version)) {
            Some(slot) => {
                slot.last_used = self.clock;
                self.hits += 1;
                Some(Arc::clone(&slot.outcome))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches `outcome` under `key` for `version`, evicting the
    /// least-recently-used entry when full. Inserting at a version retires
    /// the pattern's entries of **strictly older** versions (counted as
    /// invalidations): they are superseded for every reader that will still
    /// probe them at that version or later, while a pinned reader's
    /// re-insert at an *older* version leaves newer entries untouched — the
    /// two populations coexist instead of evicting each other. Re-inserting
    /// a present key (two threads raced on the same miss) replaces the slot
    /// without eviction. No-op when disabled.
    pub(crate) fn insert(&mut self, key: PlanKey, version: u64, outcome: PlanOutcome) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let stale: Vec<(PlanKey, u64)> = self
            .slots
            .keys()
            .filter(|&&(k, v)| k == key && v < version)
            .copied()
            .collect();
        for old in stale {
            self.slots.remove(&old);
            self.invalidations += 1;
        }
        let full_key = (key, version);
        if !self.slots.contains_key(&full_key) && self.slots.len() >= self.capacity {
            if let Some(&lru) = self
                .slots
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k)
            {
                self.slots.remove(&lru);
                self.evictions += 1;
            }
        }
        self.slots.insert(
            full_key,
            Slot {
                outcome,
                last_used: self.clock,
            },
        );
    }

    /// False when the capacity is zero (lookups bypass the cache).
    pub(crate) fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    pub(crate) fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u128) -> PlanKey {
        (PatternFingerprint(i), Semantics::Isomorphism)
    }

    fn empty_plan(sem: Semantics) -> Result<QueryPlan, PlanError> {
        Ok(QueryPlan {
            semantics: sem,
            steps: Vec::new(),
        })
    }

    /// Probe-then-insert at version 0, the way the engine drives the cache.
    fn fill(cache: &mut PlanCache, k: PlanKey) -> Option<PlanOutcome> {
        let probed = cache.probe(&k, 0);
        if probed.is_none() && cache.is_enabled() {
            cache.insert(k, 0, Arc::new(empty_plan(k.1)));
        }
        probed
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let mut cache = PlanCache::new(4);
        assert!(fill(&mut cache, key(1)).is_none());
        assert!(fill(&mut cache, key(1)).is_some());
        assert!(fill(&mut cache, key(1)).is_some());
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn semantics_is_part_of_the_key() {
        let mut cache = PlanCache::new(4);
        let fp = PatternFingerprint(9);
        fill(&mut cache, (fp, Semantics::Isomorphism));
        assert!(
            fill(&mut cache, (fp, Semantics::Simulation)).is_none(),
            "same fingerprint, other semantics: miss"
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_drops_the_least_recently_used() {
        let mut cache = PlanCache::new(2);
        fill(&mut cache, key(1));
        fill(&mut cache, key(2));
        // Touch key 1 so key 2 becomes the LRU.
        assert!(fill(&mut cache, key(1)).is_some());
        fill(&mut cache, key(3));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        // Key 2 was evicted; key 1 survived.
        assert!(fill(&mut cache, key(1)).is_some());
        assert!(fill(&mut cache, key(2)).is_none());
    }

    #[test]
    fn racing_reinsert_of_a_present_key_does_not_evict() {
        let mut cache = PlanCache::new(2);
        fill(&mut cache, key(1));
        fill(&mut cache, key(2));
        // Two threads raced on key 2's miss; the loser re-inserts.
        cache.insert(key(2), 0, Arc::new(empty_plan(Semantics::Isomorphism)));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.probe(&key(1), 0).is_some(), "key 1 must survive");
    }

    #[test]
    fn zero_capacity_bypasses() {
        let mut cache = PlanCache::new(0);
        assert!(!cache.is_enabled());
        assert!(cache.probe(&key(5), 0).is_none());
        cache.insert(key(5), 0, Arc::new(empty_plan(Semantics::Isomorphism)));
        assert!(cache.probe(&key(5), 0).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0, "bypass counts neither hit nor miss");
    }

    #[test]
    fn negative_outcomes_are_cached() {
        let mut cache = PlanCache::new(2);
        let k = key(7);
        assert!(cache.probe(&k, 0).is_none());
        cache.insert(
            k,
            0,
            Arc::new(Err(PlanError {
                semantics: Semantics::Isomorphism,
                uncovered: vec![],
            })),
        );
        let cached = cache.probe(&k, 0).expect("unbounded verdicts are memoized");
        assert!(cached.is_err());
    }

    #[test]
    fn version_bump_invalidates_stale_slots() {
        let mut cache = PlanCache::new(4);
        let k = key(3);
        cache.insert(k, 0, Arc::new(empty_plan(Semantics::Isomorphism)));
        assert!(cache.probe(&k, 0).is_some());
        // A newer snapshot version must not see the version-0 plan; the slot
        // is retained for readers still pinned to version 0.
        assert!(cache.probe(&k, 1).is_none());
        assert_eq!(cache.invalidations(), 0);
        assert_eq!(cache.len(), 1);
        // Re-planning at version 1 retires the superseded version-0 slot.
        cache.insert(k, 1, Arc::new(empty_plan(Semantics::Isomorphism)));
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.probe(&k, 1).is_some());
    }

    #[test]
    fn pinned_old_version_coexists_with_current() {
        let mut cache = PlanCache::new(4);
        let k = key(4);
        cache.insert(k, 1, Arc::new(empty_plan(Semantics::Isomorphism)));
        // A reader pinned to version 0 misses, re-plans, and re-inserts at
        // its own version without touching the current version's slot...
        assert!(cache.probe(&k, 0).is_none());
        cache.insert(k, 0, Arc::new(empty_plan(Semantics::Isomorphism)));
        assert_eq!(cache.invalidations(), 0, "older inserts retire nothing");
        assert_eq!(cache.len(), 2);
        // ...so from here on both populations hit steadily (no ping-pong).
        assert!(cache.probe(&k, 0).is_some());
        assert!(cache.probe(&k, 1).is_some());
        assert!(cache.probe(&k, 0).is_some());
        assert_eq!(cache.misses(), 1);
    }
}
