//! The LRU caches: planning outcomes and fetched fragments.
//!
//! Planning — the effective-boundedness closure of
//! [`bgpq_core::plan_query`] — is cheap next to matching, but a
//! session-oriented engine sees the *same* patterns over and over (dashboard
//! queries, templated lookups), and the planner's outcome for a pattern
//! never changes while the schema is fixed. The plan cache memoizes it,
//! keyed by the canonical
//! [`PatternFingerprint`](bgpq_pattern::PatternFingerprint) plus the
//! [`Semantics`]: the second identical request skips the closure entirely,
//! and *negative* outcomes (the pattern is unbounded) are cached too, so
//! repeated unbounded queries skip straight to their fallback strategy.
//!
//! The **fragment cache** applies the same machinery one level down: the
//! fetched [`CandidateSet`] — every index lookup plus predicate filtering
//! behind one bounded query, which together with the pattern determines the
//! fragment `G_Q` — is itself deterministic per (pattern fingerprint,
//! semantics, snapshot version). The fingerprint canonically covers the
//! pattern's structure, labels *and* predicate constants, and planning is
//! deterministic, so the same key the plan cache uses also fully determines
//! the fetched candidate sets. A repeated hot query skips every lookup and
//! goes straight to view construction and matching.
//!
//! Both caches share one implementation, [`VersionedCache`]. Eviction is
//! least-recently-used over a bounded number of entries, with one
//! refinement: entries of **strictly older snapshot versions** than the
//! inserting engine's are preferred as victims over current-version
//! entries, regardless of recency. Without this, a stale-version slot whose
//! pinned readers are long gone can outlive a hot current-version slot on
//! an old `last_used` stamp. The scan is `O(capacity)` per eviction — noise
//! compared to one avoided planning run or fetch pass.
//!
//! Under a **mutable** graph a cached outcome is no longer eternal: an
//! update can change the index coverage a plan depends on, or the graph
//! region a fragment was fetched from. Slots are therefore keyed by
//! *(pattern fingerprint, semantics, snapshot version)*: a probe only ever
//! sees outcomes computed against its own version, entries of **different
//! versions coexist** (a reader pinned to an old snapshot keeps its cache
//! locality instead of fighting the current version's readers slot for
//! slot), and re-inserting a key at a newer version retires that key's
//! strictly-older entries, counted as *invalidations*. A [`SharedPlanCache`]
//! / [`SharedFragmentCache`] can be handed to the engines of successive
//! snapshots so the chain shares one bounded cache without ever serving a
//! stale entry — commit-time invalidation piggybacks on the first
//! re-execution at the new version instead of requiring an eager sweep.

use bgpq_core::{CandidateSet, PlanError, QueryPlan, Semantics};
use bgpq_pattern::PatternFingerprint;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: what the planner's outcome — and, given the deterministic
/// planner, the fetched candidate set — depends on, given a fixed schema.
pub(crate) type PlanKey = (PatternFingerprint, Semantics);

/// A memoized planning outcome — the plan, or the planner's refusal.
pub(crate) type PlanOutcome = Arc<Result<QueryPlan, PlanError>>;

/// A memoized fetch outcome: the candidate sets (and thus the fragment
/// `G_Q`) of one bounded query at one snapshot version.
pub(crate) type FragmentEntry = Arc<CandidateSet>;

struct Slot<V> {
    outcome: V,
    last_used: u64,
}

/// A bounded least-recently-used cache of versioned outcomes.
pub(crate) struct VersionedCache<V> {
    capacity: usize,
    /// Keyed by (pattern fingerprint + semantics, snapshot version).
    slots: HashMap<(PlanKey, u64), Slot<V>>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// The plan cache: memoized planning outcomes.
pub(crate) type PlanCache = VersionedCache<PlanOutcome>;

/// The fragment cache: memoized candidate sets.
pub(crate) type FragmentCache = VersionedCache<FragmentEntry>;

/// A plan cache that can be shared by the engines of successive graph
/// snapshots (see [`Engine::with_indices_at_version`](crate::Engine::with_indices_at_version)).
///
/// Cloning is cheap and shares the underlying cache. Entries are validated
/// against the probing engine's snapshot version, so sharing never serves a
/// plan computed against another version's index coverage.
#[derive(Clone)]
pub struct SharedPlanCache(pub(crate) Arc<Mutex<PlanCache>>);

impl SharedPlanCache {
    /// Creates a shared cache holding at most `capacity` outcomes
    /// (`0` disables caching).
    pub fn with_capacity(capacity: usize) -> Self {
        SharedPlanCache(Arc::new(Mutex::new(PlanCache::new(capacity))))
    }
}

impl Default for SharedPlanCache {
    /// A shared cache with the engine's default capacity.
    fn default() -> Self {
        Self::with_capacity(crate::engine::DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for SharedPlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cache = self.0.lock().expect("plan cache poisoned");
        f.debug_struct("SharedPlanCache")
            .field("capacity", &cache.capacity)
            .field("len", &cache.len())
            .finish()
    }
}

/// A fragment cache that can be shared by the engines of successive graph
/// snapshots, exactly as [`SharedPlanCache`] is — same keying, same
/// multi-version coexistence, same commit-piggybacked invalidation.
///
/// Cloning is cheap and shares the underlying cache. Entries are validated
/// against the probing engine's snapshot version, so sharing never serves a
/// candidate set fetched from another version's graph or indices.
#[derive(Clone)]
pub struct SharedFragmentCache(pub(crate) Arc<Mutex<FragmentCache>>);

impl SharedFragmentCache {
    /// Creates a shared cache holding at most `capacity` candidate sets
    /// (`0` disables fragment caching).
    pub fn with_capacity(capacity: usize) -> Self {
        SharedFragmentCache(Arc::new(Mutex::new(FragmentCache::new(capacity))))
    }
}

impl Default for SharedFragmentCache {
    /// A shared cache with the engine's default capacity.
    fn default() -> Self {
        Self::with_capacity(crate::engine::DEFAULT_FRAGMENT_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for SharedFragmentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cache = self.0.lock().expect("fragment cache poisoned");
        f.debug_struct("SharedFragmentCache")
            .field("capacity", &cache.capacity)
            .field("len", &cache.len())
            .finish()
    }
}

impl<V: Clone> VersionedCache<V> {
    /// Creates a cache holding at most `capacity` outcomes. Capacity `0`
    /// disables caching (every lookup reports [`CacheOutcome::Bypass`]).
    pub(crate) fn new(capacity: usize) -> Self {
        VersionedCache {
            capacity,
            slots: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Looks `key` up for an engine at `version`, counting a hit or a miss.
    /// Only an outcome planned against exactly `version` is returned — a
    /// commit may have changed the index coverage the plan (or unbounded
    /// verdict) depends on, so other versions' slots are invisible (though
    /// retained for the readers pinned to them). Returns `None` both on a
    /// miss and when caching is disabled — the caller distinguishes the two
    /// via [`VersionedCache::is_enabled`] and is expected to compute the
    /// outcome *outside* the cache lock, then [`VersionedCache::insert`] it:
    /// holding the lock across a planning run or a fetch pass would
    /// serialize unrelated requests behind it.
    pub(crate) fn probe(&mut self, key: &PlanKey, version: u64) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        self.clock += 1;
        match self.slots.get_mut(&(*key, version)) {
            Some(slot) => {
                slot.last_used = self.clock;
                self.hits += 1;
                Some(slot.outcome.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches `outcome` under `key` for `version`, evicting an entry when
    /// full. Inserting at a version retires the key's entries of **strictly
    /// older** versions (counted as invalidations): they are superseded for
    /// every reader that will still probe them at that version or later,
    /// while a pinned reader's re-insert at an *older* version leaves newer
    /// entries untouched — the two populations coexist instead of evicting
    /// each other. Re-inserting a present key (two threads raced on the same
    /// miss) replaces the slot without eviction. No-op when disabled.
    ///
    /// Eviction prefers the least-recently-used slot among entries of
    /// versions **strictly older** than `version` — leftovers of superseded
    /// snapshots whose pinned readers are mostly gone — and only when no
    /// such entry exists falls back to global LRU. A plain global LRU can
    /// evict a hot current-version slot while a stale-version slot survives
    /// on an old `last_used` stamp, collapsing the current version's hit
    /// rate under version churn.
    pub(crate) fn insert(&mut self, key: PlanKey, version: u64, outcome: V) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let stale: Vec<(PlanKey, u64)> = self
            .slots
            .keys()
            .filter(|&&(k, v)| k == key && v < version)
            .copied()
            .collect();
        for old in stale {
            self.slots.remove(&old);
            self.invalidations += 1;
        }
        let full_key = (key, version);
        if !self.slots.contains_key(&full_key) && self.slots.len() >= self.capacity {
            let victim = self
                .slots
                .iter()
                .filter(|(&(_, v), _)| v < version)
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(&k, _)| k)
                .or_else(|| {
                    self.slots
                        .iter()
                        .min_by_key(|(_, slot)| slot.last_used)
                        .map(|(&k, _)| k)
                });
            if let Some(lru) = victim {
                self.slots.remove(&lru);
                self.evictions += 1;
            }
        }
        self.slots.insert(
            full_key,
            Slot {
                outcome,
                last_used: self.clock,
            },
        );
    }

    /// False when the capacity is zero (lookups bypass the cache).
    pub(crate) fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    pub(crate) fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u128) -> PlanKey {
        (PatternFingerprint(i), Semantics::Isomorphism)
    }

    fn empty_plan(sem: Semantics) -> Result<QueryPlan, PlanError> {
        Ok(QueryPlan {
            semantics: sem,
            steps: Vec::new(),
        })
    }

    /// Probe-then-insert at version 0, the way the engine drives the cache.
    fn fill(cache: &mut PlanCache, k: PlanKey) -> Option<PlanOutcome> {
        let probed = cache.probe(&k, 0);
        if probed.is_none() && cache.is_enabled() {
            cache.insert(k, 0, Arc::new(empty_plan(k.1)));
        }
        probed
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let mut cache = PlanCache::new(4);
        assert!(fill(&mut cache, key(1)).is_none());
        assert!(fill(&mut cache, key(1)).is_some());
        assert!(fill(&mut cache, key(1)).is_some());
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn semantics_is_part_of_the_key() {
        let mut cache = PlanCache::new(4);
        let fp = PatternFingerprint(9);
        fill(&mut cache, (fp, Semantics::Isomorphism));
        assert!(
            fill(&mut cache, (fp, Semantics::Simulation)).is_none(),
            "same fingerprint, other semantics: miss"
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_drops_the_least_recently_used() {
        let mut cache = PlanCache::new(2);
        fill(&mut cache, key(1));
        fill(&mut cache, key(2));
        // Touch key 1 so key 2 becomes the LRU.
        assert!(fill(&mut cache, key(1)).is_some());
        fill(&mut cache, key(3));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        // Key 2 was evicted; key 1 survived.
        assert!(fill(&mut cache, key(1)).is_some());
        assert!(fill(&mut cache, key(2)).is_none());
    }

    #[test]
    fn racing_reinsert_of_a_present_key_does_not_evict() {
        let mut cache = PlanCache::new(2);
        fill(&mut cache, key(1));
        fill(&mut cache, key(2));
        // Two threads raced on key 2's miss; the loser re-inserts.
        cache.insert(key(2), 0, Arc::new(empty_plan(Semantics::Isomorphism)));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.probe(&key(1), 0).is_some(), "key 1 must survive");
    }

    #[test]
    fn zero_capacity_bypasses() {
        let mut cache = PlanCache::new(0);
        assert!(!cache.is_enabled());
        assert!(cache.probe(&key(5), 0).is_none());
        cache.insert(key(5), 0, Arc::new(empty_plan(Semantics::Isomorphism)));
        assert!(cache.probe(&key(5), 0).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0, "bypass counts neither hit nor miss");
    }

    #[test]
    fn negative_outcomes_are_cached() {
        let mut cache = PlanCache::new(2);
        let k = key(7);
        assert!(cache.probe(&k, 0).is_none());
        cache.insert(
            k,
            0,
            Arc::new(Err(PlanError {
                semantics: Semantics::Isomorphism,
                uncovered: vec![],
            })),
        );
        let cached = cache.probe(&k, 0).expect("unbounded verdicts are memoized");
        assert!(cached.is_err());
    }

    #[test]
    fn version_bump_invalidates_stale_slots() {
        let mut cache = PlanCache::new(4);
        let k = key(3);
        cache.insert(k, 0, Arc::new(empty_plan(Semantics::Isomorphism)));
        assert!(cache.probe(&k, 0).is_some());
        // A newer snapshot version must not see the version-0 plan; the slot
        // is retained for readers still pinned to version 0.
        assert!(cache.probe(&k, 1).is_none());
        assert_eq!(cache.invalidations(), 0);
        assert_eq!(cache.len(), 1);
        // Re-planning at version 1 retires the superseded version-0 slot.
        cache.insert(k, 1, Arc::new(empty_plan(Semantics::Isomorphism)));
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.probe(&k, 1).is_some());
    }

    /// Regression: a stale-version slot kept fresh by a pinned reader must
    /// not push a current-version slot out of a full cache. Global LRU did
    /// exactly that — the stale slot's recent `last_used` stamp made the
    /// *current* version's least-recent slot the victim.
    #[test]
    fn stale_version_slots_are_evicted_before_current_ones() {
        let mut cache = PlanCache::new(2);
        let outcome = || Arc::new(empty_plan(Semantics::Isomorphism));
        cache.insert(key(1), 0, outcome());
        cache.insert(key(2), 1, outcome());
        // A reader still pinned to version 0 keeps its slot hot.
        assert!(cache.probe(&key(1), 0).is_some());
        // A current-version insert into the full cache must victimize the
        // strictly-older version-0 slot, not the current-version key 2 —
        // even though key 2 is now the least recently used.
        cache.insert(key(3), 1, outcome());
        assert_eq!(cache.evictions(), 1);
        assert!(cache.probe(&key(2), 1).is_some(), "current slot survives");
        assert!(cache.probe(&key(3), 1).is_some());
        assert!(cache.probe(&key(1), 0).is_none(), "stale slot was evicted");
    }

    /// Under version churn (one leftover entry per superseded version), the
    /// current version's working set must stay fully cached: every eviction
    /// takes a strictly-older leftover.
    #[test]
    fn current_version_working_set_survives_version_churn() {
        let mut cache = PlanCache::new(4);
        let outcome = || Arc::new(empty_plan(Semantics::Isomorphism));
        let hot = [key(1), key(2), key(3)];
        for version in 1..=5u64 {
            // Each "commit" leaves one entry only ever used at its version.
            cache.insert(key(100 + u128::from(version)), version, outcome());
            // The hot working set re-derives at the new version.
            for k in hot {
                if cache.probe(&k, version).is_none() {
                    cache.insert(k, version, outcome());
                }
            }
        }
        // After the churn, the entire current-version working set hits.
        let hits_before = cache.hits();
        for k in hot {
            assert!(cache.probe(&k, 5).is_some());
        }
        assert_eq!(cache.hits(), hits_before + hot.len() as u64);
        // Every surviving slot is a current-version slot plus at most the
        // newest leftover: strictly-older versions were preferred victims.
        assert!(cache.len() <= 4);
    }

    #[test]
    fn pinned_old_version_coexists_with_current() {
        let mut cache = PlanCache::new(4);
        let k = key(4);
        cache.insert(k, 1, Arc::new(empty_plan(Semantics::Isomorphism)));
        // A reader pinned to version 0 misses, re-plans, and re-inserts at
        // its own version without touching the current version's slot...
        assert!(cache.probe(&k, 0).is_none());
        cache.insert(k, 0, Arc::new(empty_plan(Semantics::Isomorphism)));
        assert_eq!(cache.invalidations(), 0, "older inserts retire nothing");
        assert_eq!(cache.len(), 2);
        // ...so from here on both populations hit steadily (no ping-pong).
        assert!(cache.probe(&k, 0).is_some());
        assert!(cache.probe(&k, 1).is_some());
        assert!(cache.probe(&k, 0).is_some());
        assert_eq!(cache.misses(), 1);
    }
}
