//! The session-oriented engine.

use crate::cache::{FragmentEntry, PlanOutcome, SharedFragmentCache, SharedPlanCache};
use crate::error::BgpqError;
use crate::request::QueryRequest;
use crate::response::{Explain, QueryAnswer, QueryResponse};
use crate::stats::{CacheOutcome, EngineStats, ExecStats};
use crate::strategy::{
    vf2_config, Baseline, Bounded, IndexSeeded, Strategy, StrategyKind, StrategyRun,
};
use bgpq_access::{AccessIndexSet, AccessSchema};
use bgpq_core::{
    bounded_simulation_match_prefetched, bounded_subgraph_match_prefetched, fetch_candidate_sets,
    plan_for_indices, FetchStats, LookupMemo, PlanError, QueryPlan, Semantics,
};
use bgpq_graph::{ArenaPool, ScratchArena};
use bgpq_shard::{
    parallel_bounded_simulation_match_prefetched, parallel_bounded_subgraph_match_prefetched,
    sharded_fetch_candidate_sets, ShardConfig, ShardRuntime,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The version of a standalone engine's (only) snapshot.
pub const INITIAL_SNAPSHOT_VERSION: u64 = 0;

/// Default number of planning outcomes the engine memoizes.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Default number of fetched candidate sets the engine memoizes. Fragments
/// are heavier than plans (whole candidate sets instead of a handful of
/// steps), so the default is smaller than
/// [`DEFAULT_PLAN_CACHE_CAPACITY`].
pub const DEFAULT_FRAGMENT_CACHE_CAPACITY: usize = 128;

/// A session-oriented query engine over one graph and one access schema.
///
/// The engine owns the [`Graph`](bgpq_graph::Graph) and the
/// [`AccessIndexSet`] built for its schema, and serves repeated
/// [`QueryRequest`]s through [`Engine::execute`]. Per request it
///
/// 1. retrieves the planning outcome from the LRU plan cache (keyed by the
///    pattern's canonical fingerprint and the semantics), running the
///    effective-boundedness decision only on a miss;
/// 2. selects a [`Strategy`]: [`Bounded`] when a plan exists, else
///    [`IndexSeeded`] when the schema is non-empty, else [`Baseline`] — or
///    the strategy the request forced;
/// 3. executes it and returns a typed [`QueryResponse`] with the answer,
///    the strategy used, and unified [`ExecStats`].
///
/// `execute` takes `&self` — the engine is `Sync` and can be shared across
/// threads behind an `Arc`, with the plan cache guarded internally.
///
/// ```
/// use bgpq_engine::{AccessConstraint, AccessSchema, Engine, QueryRequest};
/// use bgpq_graph::{GraphBuilder, Value};
/// use bgpq_pattern::{PatternBuilder, Predicate};
///
/// // A toy graph: one movie from 2012 with one actor, plus noise.
/// let mut b = GraphBuilder::new();
/// let y = b.add_node("year", Value::Int(2012));
/// let m = b.add_node("movie", Value::str("Argo"));
/// let a = b.add_node("actor", Value::str("Affleck"));
/// b.add_edge(y, m).unwrap();
/// b.add_edge(m, a).unwrap();
/// let graph = b.build();
///
/// let year = graph.interner().get("year").unwrap();
/// let movie = graph.interner().get("movie").unwrap();
/// let actor = graph.interner().get("actor").unwrap();
/// let schema = AccessSchema::from_constraints([
///     AccessConstraint::global(year, 10),
///     AccessConstraint::unary(year, movie, 5),
///     AccessConstraint::unary(movie, actor, 5),
/// ]);
/// let engine = Engine::new(graph, &schema);
///
/// let mut pb = PatternBuilder::with_interner(engine.graph().interner().clone());
/// let pm = pb.node("movie", Predicate::always());
/// let py = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, 2012));
/// let pa = pb.node("actor", Predicate::always());
/// pb.edge(py, pm);
/// pb.edge(pm, pa);
///
/// let request = QueryRequest::build(pb.build()).finish();
/// let response = engine.execute(&request).unwrap();
/// assert_eq!(response.answer.len(), 1);
/// assert_eq!(response.strategy, bgpq_engine::StrategyKind::Bounded);
/// // A second identical request is served from the plan cache.
/// let again = engine.execute(&request).unwrap();
/// assert_eq!(engine.stats().plan_cache_hits, 1);
/// assert_eq!(again.answer, response.answer);
/// ```
pub struct Engine {
    graph: bgpq_graph::Graph,
    indices: AccessIndexSet,
    /// The snapshot version this engine serves. Standalone engines stay at
    /// [`INITIAL_SNAPSHOT_VERSION`]; a serving layer derives one engine per
    /// graph snapshot with monotonically increasing versions.
    version: u64,
    strategies: Vec<Box<dyn Strategy>>,
    cache: SharedPlanCache,
    /// Cached fetched candidate sets, keyed like the plan cache: a repeated
    /// bounded query reuses its fragment instead of re-issuing lookups.
    fragments: SharedFragmentCache,
    /// Pool of fragment-construction arenas, one checked out per in-flight
    /// bounded execution; buffers are reused across queries so steady-state
    /// fragment builds allocate nothing. Worker-aware: parallel sharded
    /// executions pin each worker thread to its own slot, anonymous callers
    /// take any free slot, and two concurrent executions can never alias an
    /// arena.
    scratch: ArenaPool,
    /// Partitioned-execution state, when the engine was built with
    /// [`Engine::with_sharding`] (or handed a runtime directly). `None`
    /// keeps every request on the serial single-shard path; `Some` routes
    /// eligible bounded executions through the parallel sharded fetch and
    /// matchers, which return answers identical to the serial path.
    shard: Option<Arc<ShardRuntime>>,
    queries: AtomicU64,
    bounded_runs: AtomicU64,
    fallbacks: AtomicU64,
}

impl Engine {
    /// Creates an engine for `graph` under `schema`, building one index per
    /// constraint (the one-off session setup cost).
    pub fn new(graph: bgpq_graph::Graph, schema: &AccessSchema) -> Self {
        let indices = AccessIndexSet::build(&graph, schema);
        Self::with_indices(graph, indices)
    }

    /// Creates an engine from pre-built indices (e.g. indices maintained
    /// incrementally by `bgpq_access::maintenance` across graph updates).
    pub fn with_indices(graph: bgpq_graph::Graph, indices: AccessIndexSet) -> Self {
        Self::with_indices_at_version(
            graph,
            indices,
            INITIAL_SNAPSHOT_VERSION,
            SharedPlanCache::default(),
        )
    }

    /// Creates the engine of one **graph snapshot** in a serving chain: the
    /// graph and indices as of `version`, plus a plan cache shared with the
    /// engines of the other snapshots. Cached plans (and unbounded verdicts)
    /// are keyed by snapshot version, so a version bump — which may change
    /// the schema's index coverage — makes them re-derive instead of being
    /// served stale, while engines of different versions coexist in the
    /// shared cache. The fragment cache is private to this engine; serving
    /// chains that want fragment reuse across snapshots use
    /// [`Engine::with_caches_at_version`].
    pub fn with_indices_at_version(
        graph: bgpq_graph::Graph,
        indices: AccessIndexSet,
        version: u64,
        cache: SharedPlanCache,
    ) -> Self {
        Self::with_caches_at_version(
            graph,
            indices,
            version,
            cache,
            SharedFragmentCache::default(),
        )
    }

    /// [`Engine::with_indices_at_version`] with an explicitly shared
    /// fragment cache as well: the serving layer hands the same
    /// [`SharedFragmentCache`] to the engines of successive snapshots, so
    /// commit-time invalidation (newer versions retiring strictly-older
    /// entries) and pinned-reader coexistence work for cached fragments
    /// exactly as they do for cached plans.
    pub fn with_caches_at_version(
        graph: bgpq_graph::Graph,
        indices: AccessIndexSet,
        version: u64,
        cache: SharedPlanCache,
        fragments: SharedFragmentCache,
    ) -> Self {
        Engine {
            graph,
            indices,
            version,
            strategies: vec![Box::new(Bounded), Box::new(IndexSeeded), Box::new(Baseline)],
            cache,
            fragments,
            scratch: ArenaPool::new(std::thread::available_parallelism().map_or(1, |n| n.get())),
            shard: None,
            queries: AtomicU64::new(0),
            bounded_runs: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Creates an engine from a loaded snapshot bundle: the graph, schema
    /// and indices come out of the container fully built, so no schema
    /// discovery or index construction happens here — the preprocessing
    /// cost was paid once, by `bgpq compile`.
    pub fn from_snapshot(bundle: bgpq_access::SnapshotBundle) -> Self {
        Self::with_indices(bundle.graph, bundle.indices)
    }

    /// Replaces the plan cache with one of the given capacity (`0` disables
    /// caching). Existing cached plans and cache counters are dropped (the
    /// new cache is private to this engine).
    pub fn with_plan_cache_capacity(self, capacity: usize) -> Self {
        Engine {
            cache: SharedPlanCache::with_capacity(capacity),
            ..self
        }
    }

    /// Replaces the fragment cache with one of the given capacity (`0`
    /// disables fragment caching — every bounded query re-fetches). Existing
    /// cached candidate sets and cache counters are dropped (the new cache
    /// is private to this engine).
    pub fn with_fragment_cache_capacity(self, capacity: usize) -> Self {
        Engine {
            fragments: SharedFragmentCache::with_capacity(capacity),
            ..self
        }
    }

    /// Turns on partitioned execution: partitions the engine's graph and
    /// builds per-shard indices under `config`, then routes eligible bounded
    /// executions through the parallel sharded path. Answers are identical
    /// to the serial engine for every `(partitions, threads)` combination;
    /// budgeted requests (match/step limits) keep taking the serial path.
    pub fn with_sharding(self, config: ShardConfig) -> Self {
        let runtime = ShardRuntime::build(&self.graph, self.indices.schema(), config);
        self.with_shard_runtime(Arc::new(runtime))
    }

    /// Attaches an already-built [`ShardRuntime`] (the snapshot-load and
    /// serving-commit paths, where the runtime is maintained incrementally
    /// instead of rebuilt). The runtime's indices must have been built or
    /// maintained against this engine's graph and schema.
    pub fn with_shard_runtime(self, runtime: Arc<ShardRuntime>) -> Self {
        Engine {
            shard: Some(runtime),
            ..self
        }
    }

    /// The partitioned-execution runtime, when sharding is enabled.
    pub fn shard_runtime(&self) -> Option<&ShardRuntime> {
        self.shard.as_deref()
    }

    /// The snapshot version this engine serves
    /// ([`INITIAL_SNAPSHOT_VERSION`] for standalone engines).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The data graph the engine serves queries over.
    pub fn graph(&self) -> &bgpq_graph::Graph {
        &self.graph
    }

    /// The access indices backing the engine's schema.
    pub fn indices(&self) -> &AccessIndexSet {
        &self.indices
    }

    /// Runs `f` with a [`ScratchArena`] checked out of the engine's
    /// worker-aware [`ArenaPool`]. Concurrent bounded executions each get
    /// their own arena — a busy slot is skipped, never shared — so two
    /// in-flight fragment builds can never alias one arena.
    pub(crate) fn with_scratch<R>(&self, f: impl FnOnce(&mut ScratchArena) -> R) -> R {
        self.scratch.with_any(f)
    }

    /// The engine's worker-aware scratch-arena pool. Parallel execution
    /// paths pin worker `i` to slot `i` via
    /// [`ArenaPool::with_worker`]; single-shard paths go through
    /// [`ArenaPool::with_any`].
    pub fn arena_pool(&self) -> &ArenaPool {
        &self.scratch
    }

    /// Executes one request: plan (cached) → select strategy → run.
    ///
    /// The request's pattern must be built against the engine graph's label
    /// interner (clone it via `engine.graph().interner()`): matching
    /// compares raw label ids, so a pattern from a foreign interner is
    /// rejected with [`BgpqError::PatternMismatch`] rather than silently
    /// returning wrong answers. Beyond that, automatic selection never
    /// fails — every engine can at least run the baseline. The remaining
    /// errors arise from a forced strategy the engine cannot honor:
    /// [`BgpqError::Unbounded`] when [`StrategyKind::Bounded`] was demanded
    /// for an unbounded pattern, [`BgpqError::StrategyUnavailable`]
    /// otherwise.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, BgpqError> {
        self.execute_inner(request, None)
    }

    /// Executes a batch of requests against this snapshot, sharing one
    /// [`LookupMemo`] across their fetches: index lookups that overlap
    /// between the queries — the common case for templated queries over a
    /// hot subgraph — are issued once and feed every fetch in the batch.
    ///
    /// Answers are identical to executing each request individually via
    /// [`Engine::execute`], in order; per-request failures (pattern
    /// mismatch, forced-strategy errors) are reported per slot without
    /// failing the batch.
    pub fn execute_batch(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<QueryResponse, BgpqError>> {
        let mut memo = LookupMemo::new();
        requests
            .iter()
            .map(|request| self.execute_inner(request, Some(&mut memo)))
            .collect()
    }

    fn execute_inner(
        &self,
        request: &QueryRequest,
        memo: Option<&mut LookupMemo>,
    ) -> Result<QueryResponse, BgpqError> {
        let started = Instant::now();
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.check_pattern_alignment(request.pattern())?;

        let (outcome, cache_outcome) = self.planning_outcome(request);
        let plan_nanos = started.elapsed().as_nanos() as u64;
        let plan = outcome.as_ref().as_ref().ok();

        let strategy = self.select_strategy(request, plan, outcome.as_ref().as_ref().err())?;
        if strategy.kind() == StrategyKind::Bounded {
            self.bounded_runs.fetch_add(1, Ordering::Relaxed);
        } else if plan.is_none() && request.forced_strategy().is_none() {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
        }

        let match_started = Instant::now();
        // The bounded tier is dispatched directly so the batch lookup memo
        // reaches the fetch; the trait object path cannot carry it.
        let run = if strategy.kind() == StrategyKind::Bounded {
            let plan = plan.expect("Bounded is only applicable with a plan");
            self.run_bounded(request, plan, memo)
        } else {
            strategy.execute(self, request, plan)
        };
        let exec_nanos = match_started.elapsed().as_nanos() as u64;
        let fragment_build_nanos = run
            .fetch
            .as_ref()
            .map_or(0, |fetch| fetch.fragment_build_nanos);

        let stats = ExecStats {
            snapshot_version: self.version,
            plan_nanos,
            fragment_build_nanos,
            match_nanos: exec_nanos.saturating_sub(fragment_build_nanos),
            total_nanos: started.elapsed().as_nanos() as u64,
            plan_cache: Some(cache_outcome),
            fragment_cache: run.fragment_cache,
            predicate_filtered: run.predicate_filtered,
            fetch: run.fetch,
            worst_case_nodes: plan.map(QueryPlan::worst_case_nodes),
            matcher_steps: run.matcher_steps,
            aborted: run.aborted,
        };
        let explain = request.explain_requested().then(|| Explain {
            strategy: strategy.kind(),
            plan: plan.cloned(),
            fallback_reason: outcome.as_ref().as_ref().err().map(PlanError::to_string),
        });
        Ok(QueryResponse {
            answer: run.answer,
            strategy: strategy.kind(),
            stats,
            explain,
        })
    }

    /// Runs the bounded tier: fragment-cache probe, fetch on a miss (through
    /// `memo` when executing as part of a batch), zero-copy view build and
    /// match. Cached candidate sets are keyed exactly like cached plans —
    /// (pattern fingerprint, semantics, snapshot version) — which is sound
    /// because the fingerprint canonically covers the pattern's structure,
    /// labels and predicate constants, and planning and fetching are
    /// deterministic for a fixed snapshot.
    pub(crate) fn run_bounded(
        &self,
        request: &QueryRequest,
        plan: &QueryPlan,
        memo: Option<&mut LookupMemo>,
    ) -> StrategyRun {
        let key = (request.pattern().fingerprint(), request.semantics());
        let (enabled, probed) = {
            let mut cache = self.fragments.0.lock().expect("fragment cache poisoned");
            (cache.is_enabled(), cache.probe(&key, self.version))
        };
        let (entry, fragment_cache) = match probed {
            Some(entry) => (entry, CacheOutcome::Hit),
            None => {
                // Fetch outside the cache lock; racing misses both fetch and
                // the second insert harmlessly replaces the first (fetching
                // is deterministic per snapshot).
                let fetched = match memo {
                    // Batch fetches keep the serial path: the shared memo is
                    // the batch's cross-query dedup state and must observe
                    // every lookup in order.
                    Some(memo) => fetch_candidate_sets(
                        plan,
                        request.pattern(),
                        &self.graph,
                        &self.indices,
                        memo,
                    ),
                    None => match self.shard.as_deref() {
                        Some(rt) => sharded_fetch_candidate_sets(
                            plan,
                            request.pattern(),
                            &self.graph,
                            rt.indices(),
                            rt.threads(),
                        ),
                        None => {
                            let mut own = LookupMemo::new();
                            fetch_candidate_sets(
                                plan,
                                request.pattern(),
                                &self.graph,
                                &self.indices,
                                &mut own,
                            )
                        }
                    },
                };
                let entry: FragmentEntry = Arc::new(fetched);
                if enabled {
                    self.fragments
                        .0
                        .lock()
                        .expect("fragment cache poisoned")
                        .insert(key, self.version, Arc::clone(&entry));
                    (entry, CacheOutcome::Miss)
                } else {
                    (entry, CacheOutcome::Bypass)
                }
            }
        };

        match request.semantics() {
            Semantics::Isomorphism => {
                let (matches, mut fetch, stats) = match self.shard.as_deref() {
                    Some(rt) => parallel_bounded_subgraph_match_prefetched(
                        request.pattern(),
                        &self.graph,
                        &entry,
                        vf2_config(request),
                        rt.pool(),
                        rt.threads(),
                    ),
                    None => self.with_scratch(|scratch| {
                        bounded_subgraph_match_prefetched(
                            request.pattern(),
                            &self.graph,
                            &entry,
                            vf2_config(request),
                            scratch,
                        )
                    }),
                };
                if fragment_cache == CacheOutcome::Hit {
                    subtract_cached_baseline(&mut fetch, &entry.stats);
                }
                StrategyRun {
                    answer: QueryAnswer::Matches(matches),
                    predicate_filtered: fetch.predicate_filtered,
                    fetch: Some(fetch),
                    matcher_steps: Some(stats.steps),
                    aborted: stats.aborted,
                    fragment_cache: Some(fragment_cache),
                }
            }
            Semantics::Simulation => {
                let (relation, mut fetch) = match self.shard.as_deref() {
                    Some(rt) => parallel_bounded_simulation_match_prefetched(
                        request.pattern(),
                        &self.graph,
                        &entry,
                        rt.pool(),
                    ),
                    None => self.with_scratch(|scratch| {
                        bounded_simulation_match_prefetched(
                            request.pattern(),
                            &self.graph,
                            &entry,
                            scratch,
                        )
                    }),
                };
                if fragment_cache == CacheOutcome::Hit {
                    subtract_cached_baseline(&mut fetch, &entry.stats);
                }
                StrategyRun {
                    answer: QueryAnswer::Simulation(relation),
                    predicate_filtered: fetch.predicate_filtered,
                    fetch: Some(fetch),
                    matcher_steps: None,
                    aborted: false,
                    fragment_cache: Some(fragment_cache),
                }
            }
        }
    }

    /// Lifetime counters: queries served, bounded runs, fallbacks and plan
    /// cache behavior.
    pub fn stats(&self) -> EngineStats {
        let cache = self.cache.0.lock().expect("plan cache poisoned");
        let fragments = self.fragments.0.lock().expect("fragment cache poisoned");
        EngineStats {
            snapshot_version: self.version,
            queries: self.queries.load(Ordering::Relaxed),
            bounded_runs: self.bounded_runs.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            plan_cache_hits: cache.hits(),
            plan_cache_misses: cache.misses(),
            plan_cache_evictions: cache.evictions(),
            plan_cache_invalidations: cache.invalidations(),
            cached_plans: cache.len(),
            fragment_cache_hits: fragments.hits(),
            fragment_cache_misses: fragments.misses(),
            fragment_cache_evictions: fragments.evictions(),
            fragment_cache_invalidations: fragments.invalidations(),
            cached_fragments: fragments.len(),
        }
    }

    /// Rejects patterns whose label ids disagree with the engine graph's
    /// interner. Alignment per pattern node: its label name resolves to the
    /// *same* id in the graph's interner — or to no id at all while the
    /// pattern's id is also unassigned in the graph (a label the graph has
    /// never seen can only produce an empty candidate set, never a wrong
    /// one). Anything else means raw-id comparisons would cross names.
    fn check_pattern_alignment(&self, pattern: &bgpq_pattern::Pattern) -> Result<(), BgpqError> {
        let graph_interner = self.graph.interner();
        for u in pattern.nodes() {
            let label = pattern.label(u);
            let aligned = match pattern.interner().name(label) {
                Some(name) => match graph_interner.get(name) {
                    Some(graph_label) => graph_label == label,
                    None => !graph_interner.contains(label),
                },
                // The pattern's own interner does not know the id: only
                // safe when the graph cannot produce it either.
                None => !graph_interner.contains(label),
            };
            if !aligned {
                return Err(BgpqError::PatternMismatch {
                    node: u,
                    label: pattern.label_name(u),
                });
            }
        }
        Ok(())
    }

    /// Cached planning outcome for the request's (fingerprint, semantics).
    ///
    /// The planner runs *outside* the cache lock: concurrent requests only
    /// contend for the duration of a map probe or insert, never a planning
    /// closure. Two threads racing on the same miss both plan; the second
    /// insert harmlessly replaces the first (same schema, same pattern —
    /// planning is deterministic).
    fn planning_outcome(&self, request: &QueryRequest) -> (PlanOutcome, CacheOutcome) {
        let key = (request.pattern().fingerprint(), request.semantics());
        let (enabled, probed) = {
            let mut cache = self.cache.0.lock().expect("plan cache poisoned");
            (cache.is_enabled(), cache.probe(&key, self.version))
        };
        if let Some(outcome) = probed {
            return (outcome, CacheOutcome::Hit);
        }
        let outcome: PlanOutcome = Arc::new(plan_for_indices(
            request.pattern(),
            &self.indices,
            request.semantics(),
        ));
        if !enabled {
            return (outcome, CacheOutcome::Bypass);
        }
        self.cache.0.lock().expect("plan cache poisoned").insert(
            key,
            self.version,
            Arc::clone(&outcome),
        );
        (outcome, CacheOutcome::Miss)
    }

    /// First applicable strategy in tier order, or the forced one.
    fn select_strategy(
        &self,
        request: &QueryRequest,
        plan: Option<&QueryPlan>,
        plan_err: Option<&PlanError>,
    ) -> Result<&dyn Strategy, BgpqError> {
        if let Some(kind) = request.forced_strategy() {
            let strategy = self
                .strategies
                .iter()
                .find(|s| s.kind() == kind)
                .expect("all kinds are registered");
            if strategy.is_applicable(self, request, plan) {
                return Ok(strategy.as_ref());
            }
            return Err(match (kind, plan_err) {
                (StrategyKind::Bounded, Some(err)) => BgpqError::Unbounded(err.clone()),
                _ => BgpqError::StrategyUnavailable {
                    requested: kind,
                    reason: "the engine's access schema cannot support it".into(),
                },
            });
        }
        let strategy = self
            .strategies
            .iter()
            .find(|s| s.is_applicable(self, request, plan))
            .expect("Baseline is always applicable");
        Ok(strategy.as_ref())
    }
}

/// Rebases a cache-hit request's fetch counters onto its *own* work: the
/// cached [`FetchStats`] baseline — the lookups, filtering and lookup-side
/// time spent when the fragment was originally fetched — is subtracted, so
/// the request reports zero index lookups and only its view-construction
/// time, while the fragment-size fields (not part of the baseline delta)
/// keep describing the reused fragment.
fn subtract_cached_baseline(fetch: &mut FetchStats, baseline: &FetchStats) {
    fetch.index_lookups = fetch.index_lookups.saturating_sub(baseline.index_lookups);
    fetch.lookups_deduped = fetch
        .lookups_deduped
        .saturating_sub(baseline.lookups_deduped);
    fetch.nodes_returned = fetch.nodes_returned.saturating_sub(baseline.nodes_returned);
    fetch.predicate_filtered = fetch
        .predicate_filtered
        .saturating_sub(baseline.predicate_filtered);
    fetch.fragment_build_nanos = fetch
        .fragment_build_nanos
        .saturating_sub(baseline.fragment_build_nanos);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The engine must stay shareable across threads.
    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }
}
