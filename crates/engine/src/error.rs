//! The unified workspace error type.
//!
//! Before the engine existed, callers hand-wired `bgpq-core` planning and
//! `bgpq-graph` construction and had to juggle [`PlanError`] and
//! [`GraphError`] separately. [`BgpqError`] folds every per-crate error enum
//! into one `std::error::Error` with `From` conversions, so engine callers
//! can use `?` across the whole workspace.

use bgpq_core::PlanError;
use bgpq_graph::GraphError;
use std::fmt;

use crate::strategy::StrategyKind;

/// Any error the `bgpq` workspace can produce, unified for engine callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpqError {
    /// Building, mutating or (de)serializing a data graph failed.
    Graph(GraphError),
    /// The pattern is not effectively bounded under the engine's schema for
    /// the requested semantics, and the request insisted on the
    /// [`Bounded`](StrategyKind::Bounded) strategy.
    Unbounded(PlanError),
    /// The request forced a strategy that cannot serve it (e.g.
    /// [`IndexSeeded`](StrategyKind::IndexSeeded) on an engine with an empty
    /// access schema).
    StrategyUnavailable {
        /// The strategy the request demanded.
        requested: StrategyKind,
        /// Why the engine cannot run it.
        reason: String,
    },
    /// The request's pattern was built against a label interner that does
    /// not agree with the engine graph's: some pattern label id would be
    /// compared against a graph label id carrying a different name, which
    /// would silently corrupt answers. Build patterns with
    /// `PatternBuilder::with_interner(engine.graph().interner().clone())`.
    PatternMismatch {
        /// The first misaligned pattern node.
        node: bgpq_pattern::PatternNodeId,
        /// That node's label name as the pattern understands it.
        label: String,
    },
}

impl fmt::Display for BgpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpqError::Graph(e) => write!(f, "graph error: {e}"),
            BgpqError::Unbounded(e) => write!(f, "{e}"),
            BgpqError::StrategyUnavailable { requested, reason } => {
                write!(f, "strategy {requested} unavailable: {reason}")
            }
            BgpqError::PatternMismatch { node, label } => {
                write!(
                    f,
                    "pattern node {node} (label {label:?}) was built against a label \
                     interner that disagrees with the engine's graph; build patterns \
                     with the graph's interner"
                )
            }
        }
    }
}

impl std::error::Error for BgpqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BgpqError::Graph(e) => Some(e),
            BgpqError::Unbounded(e) => Some(e),
            BgpqError::StrategyUnavailable { .. } | BgpqError::PatternMismatch { .. } => None,
        }
    }
}

impl From<GraphError> for BgpqError {
    fn from(err: GraphError) -> Self {
        BgpqError::Graph(err)
    }
}

impl From<PlanError> for BgpqError {
    fn from(err: PlanError) -> Self {
        BgpqError::Unbounded(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_core::Semantics;
    use bgpq_pattern::PatternNodeId;
    use std::error::Error;

    #[test]
    fn conversions_and_sources() {
        let g: BgpqError = GraphError::NodeNotFound(3).into();
        assert!(matches!(g, BgpqError::Graph(_)));
        assert!(g.source().is_some());
        assert!(g.to_string().contains("node 3 not found"));

        let p: BgpqError = PlanError {
            semantics: Semantics::Isomorphism,
            uncovered: vec![PatternNodeId(0)],
        }
        .into();
        assert!(matches!(p, BgpqError::Unbounded(_)));
        assert!(p.source().is_some());
        assert!(p.to_string().contains("not effectively bounded"));

        let s = BgpqError::StrategyUnavailable {
            requested: StrategyKind::IndexSeeded,
            reason: "empty schema".into(),
        };
        assert!(s.source().is_none());
        assert!(s.to_string().contains("optVF2/optgsim"));
    }

    /// The point of the unification: one `?` works across crates.
    #[test]
    fn question_mark_compatibility() {
        fn fails_graph() -> Result<(), BgpqError> {
            Err(GraphError::DuplicateNode(1))?;
            Ok(())
        }
        fn fails_plan() -> Result<(), BgpqError> {
            Err(PlanError {
                semantics: Semantics::Simulation,
                uncovered: vec![],
            })?;
            Ok(())
        }
        assert!(fails_graph().is_err());
        assert!(fails_plan().is_err());
    }
}
