//! Typed query responses.

use crate::stats::ExecStats;
use crate::strategy::StrategyKind;
use bgpq_core::QueryPlan;
use bgpq_matching::{MatchSet, SimulationRelation};

/// The answer of one query, shaped by its
/// [`Semantics`](bgpq_core::Semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// Subgraph-isomorphism answers: the canonical match set.
    Matches(MatchSet),
    /// Simulation answers: the maximum simulation relation.
    Simulation(SimulationRelation),
}

impl QueryAnswer {
    /// The match set, when this is an isomorphism answer.
    pub fn as_matches(&self) -> Option<&MatchSet> {
        match self {
            QueryAnswer::Matches(m) => Some(m),
            QueryAnswer::Simulation(_) => None,
        }
    }

    /// The simulation relation, when this is a simulation answer.
    pub fn as_simulation(&self) -> Option<&SimulationRelation> {
        match self {
            QueryAnswer::Matches(_) => None,
            QueryAnswer::Simulation(r) => Some(r),
        }
    }

    /// True when the query has no match at all.
    pub fn is_empty(&self) -> bool {
        match self {
            QueryAnswer::Matches(m) => m.is_empty(),
            QueryAnswer::Simulation(r) => r.is_empty(),
        }
    }

    /// Number of answer items: matches for isomorphism, `(u, v)` pairs for
    /// simulation.
    pub fn len(&self) -> usize {
        match self {
            QueryAnswer::Matches(m) => m.len(),
            QueryAnswer::Simulation(r) => r.pair_count(),
        }
    }
}

/// How the engine arrived at an answer, attached to the response when the
/// request set [`explain`](crate::QueryRequestBuilder::explain).
#[derive(Debug, Clone)]
pub struct Explain {
    /// The strategy that produced the answer.
    pub strategy: StrategyKind,
    /// The fetch plan, when the pattern is effectively bounded under the
    /// engine's schema for the requested semantics.
    pub plan: Option<QueryPlan>,
    /// Why the engine fell back from the bounded strategy (the planner's
    /// refusal), when it did.
    pub fallback_reason: Option<String>,
}

impl Explain {
    /// Renders the explain as human-readable lines — the canonical textual
    /// form shared by every front end (`bgpq query` prints these locally;
    /// the network server ships them pre-rendered so a graph-less remote
    /// client displays the identical plan).
    pub fn render_lines(
        &self,
        pattern: &bgpq_pattern::Pattern,
        schema: &bgpq_access::AccessSchema,
        interner: &bgpq_graph::LabelInterner,
    ) -> Vec<String> {
        let node_display = |u: bgpq_pattern::PatternNodeId| match pattern.node_name(u) {
            Some(name) => name.to_string(),
            None => u.to_string(),
        };
        let mut lines = Vec::new();
        match &self.plan {
            Some(plan) => {
                lines.push(format!("plan ({:?} semantics):", plan.semantics));
                for step in &plan.steps {
                    let via: Vec<String> = step.via.iter().map(|&u| node_display(u)).collect();
                    let constraint = schema
                        .get(step.constraint)
                        .map(|c| c.display_with(interner))
                        .unwrap_or_else(|| step.constraint.to_string());
                    lines.push(format!(
                        "  fetch {} via {} [{}] (≤ {} candidates)",
                        node_display(step.node),
                        constraint,
                        if via.is_empty() {
                            "∅".to_string()
                        } else {
                            via.join(", ")
                        },
                        step.candidate_bound
                    ));
                }
            }
            None => {
                lines.push(format!(
                    "no bounded plan: {}",
                    self.fallback_reason
                        .as_deref()
                        .unwrap_or("(strategy was forced)")
                ));
            }
        }
        lines
    }
}

/// The outcome of one [`Engine::execute`](crate::Engine::execute) call.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The answer, over node ids of the engine's graph.
    pub answer: QueryAnswer,
    /// The strategy that actually ran (after automatic selection and
    /// fallback).
    pub strategy: StrategyKind,
    /// Unified execution statistics.
    pub stats: ExecStats,
    /// Present iff the request asked for an explain.
    pub explain: Option<Explain>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_graph::NodeId;
    use bgpq_matching::Match;

    #[test]
    fn answer_accessors() {
        let matches = QueryAnswer::Matches(MatchSet::new([Match::new(vec![NodeId(1)])]));
        assert!(matches.as_matches().is_some());
        assert!(matches.as_simulation().is_none());
        assert!(!matches.is_empty());
        assert_eq!(matches.len(), 1);

        let sim = QueryAnswer::Simulation(SimulationRelation::empty(2));
        assert!(sim.as_simulation().is_some());
        assert!(sim.as_matches().is_none());
        assert!(sim.is_empty());
        assert_eq!(sim.len(), 0);
    }
}
