//! Typed query requests.
//!
//! A [`QueryRequest`] bundles everything one evaluation needs — the pattern,
//! the [`Semantics`], optional budgets, the [`Explain`](crate::Explain) flag
//! and an optional strategy override — so the [`Engine`](crate::Engine) API
//! stays a single `execute(&request)` call no matter how many knobs grow
//! here later. Requests are built with [`QueryRequest::build`]:
//!
//! ```
//! use bgpq_engine::{QueryRequest, Semantics};
//! use bgpq_pattern::{PatternBuilder, Predicate};
//!
//! let mut b = PatternBuilder::new();
//! let m = b.node("movie", Predicate::always());
//! let y = b.node("year", Predicate::range(2011, 2013));
//! b.edge(y, m);
//!
//! let request = QueryRequest::build(b.build())
//!     .semantics(Semantics::Isomorphism)
//!     .max_matches(10)
//!     .explain(true)
//!     .finish();
//! assert_eq!(request.max_matches(), Some(10));
//! ```

use crate::strategy::StrategyKind;
use bgpq_core::Semantics;
use bgpq_pattern::Pattern;

/// One query against an [`Engine`](crate::Engine): pattern, semantics,
/// budgets and reporting options.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    pattern: Pattern,
    semantics: Semantics,
    max_matches: Option<usize>,
    step_budget: Option<u64>,
    explain: bool,
    strategy: Option<StrategyKind>,
}

impl QueryRequest {
    /// Starts building a request for `pattern`. Defaults: isomorphism
    /// semantics, no budgets, no explain, automatic strategy selection.
    pub fn build(pattern: Pattern) -> QueryRequestBuilder {
        QueryRequestBuilder {
            request: QueryRequest {
                pattern,
                semantics: Semantics::Isomorphism,
                max_matches: None,
                step_budget: None,
                explain: false,
                strategy: None,
            },
        }
    }

    /// The pattern to evaluate.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The query semantics.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// The node budget: stop after this many matches, when set.
    pub fn max_matches(&self) -> Option<usize> {
        self.max_matches
    }

    /// The time budget, counted in search-tree steps (the workspace's
    /// deterministic stand-in for wall-clock timeouts), when set.
    pub fn step_budget(&self) -> Option<u64> {
        self.step_budget
    }

    /// True when the response should carry an [`Explain`](crate::Explain).
    pub fn explain_requested(&self) -> bool {
        self.explain
    }

    /// The forced strategy, when the request opted out of automatic
    /// selection.
    pub fn forced_strategy(&self) -> Option<StrategyKind> {
        self.strategy
    }
}

/// Builder returned by [`QueryRequest::build`].
#[derive(Debug, Clone)]
pub struct QueryRequestBuilder {
    request: QueryRequest,
}

impl QueryRequestBuilder {
    /// Sets the query semantics (default: [`Semantics::Isomorphism`]).
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.request.semantics = semantics;
        self
    }

    /// Node budget: stop enumerating after `n` matches. Ignored by
    /// simulation queries, whose answer is one maximum relation rather than
    /// an enumerable set.
    pub fn max_matches(mut self, n: usize) -> Self {
        self.request.max_matches = Some(n);
        self
    }

    /// Time budget in search-tree steps: the matcher aborts (reporting
    /// [`ExecStats::aborted`](crate::ExecStats::aborted)) once it has
    /// expanded this many nodes. Ignored by simulation queries, whose
    /// fixpoint refinement terminates in polynomial time by construction.
    pub fn step_budget(mut self, steps: u64) -> Self {
        self.request.step_budget = Some(steps);
        self
    }

    /// Applies a wall-clock deadline by mapping it onto the step budget via
    /// `policy` (see [`BudgetPolicy`](crate::BudgetPolicy)): the effective
    /// budget becomes the minimum of any explicit
    /// [`step_budget`](QueryRequestBuilder::step_budget) and the
    /// deadline-derived one, keeping deadline enforcement deterministic.
    pub fn deadline(mut self, deadline: std::time::Duration, policy: &crate::BudgetPolicy) -> Self {
        self.request.step_budget =
            policy.effective_step_budget(Some(deadline), self.request.step_budget);
        self
    }

    /// Requests an [`Explain`](crate::Explain) in the response: the plan (or
    /// the planner's refusal) and the reason the strategy was picked.
    pub fn explain(mut self, on: bool) -> Self {
        self.request.explain = on;
        self
    }

    /// Forces a specific strategy instead of automatic selection. The
    /// request then fails with
    /// [`BgpqError::Unbounded`](crate::BgpqError::Unbounded) or
    /// [`BgpqError::StrategyUnavailable`](crate::BgpqError::StrategyUnavailable)
    /// when that strategy cannot serve it, rather than falling back.
    pub fn strategy(mut self, kind: StrategyKind) -> Self {
        self.request.strategy = Some(kind);
        self
    }

    /// Finalizes the request.
    pub fn finish(self) -> QueryRequest {
        self.request
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_pattern::PatternBuilder;

    #[test]
    fn defaults_and_knobs() {
        let q = PatternBuilder::new().build();
        let r = QueryRequest::build(q.clone()).finish();
        assert_eq!(r.semantics(), Semantics::Isomorphism);
        assert_eq!(r.max_matches(), None);
        assert_eq!(r.step_budget(), None);
        assert!(!r.explain_requested());
        assert_eq!(r.forced_strategy(), None);

        let r = QueryRequest::build(q)
            .semantics(Semantics::Simulation)
            .max_matches(5)
            .step_budget(1_000)
            .explain(true)
            .strategy(StrategyKind::Baseline)
            .finish();
        assert_eq!(r.semantics(), Semantics::Simulation);
        assert_eq!(r.max_matches(), Some(5));
        assert_eq!(r.step_budget(), Some(1_000));
        assert!(r.explain_requested());
        assert_eq!(r.forced_strategy(), Some(StrategyKind::Baseline));
        assert_eq!(r.pattern().node_count(), 0);
    }

    #[test]
    fn deadline_tightens_the_step_budget() {
        let policy = crate::BudgetPolicy {
            steps_per_milli: 1_000,
            floor_steps: 1,
        };
        let q = PatternBuilder::new().build();
        let r = QueryRequest::build(q.clone())
            .deadline(std::time::Duration::from_millis(3), &policy)
            .finish();
        assert_eq!(r.step_budget(), Some(3_000));
        // An explicit tighter budget wins; a looser one is clamped.
        let r = QueryRequest::build(q.clone())
            .step_budget(100)
            .deadline(std::time::Duration::from_millis(3), &policy)
            .finish();
        assert_eq!(r.step_budget(), Some(100));
        let r = QueryRequest::build(q)
            .step_budget(50_000)
            .deadline(std::time::Duration::from_millis(3), &policy)
            .finish();
        assert_eq!(r.step_budget(), Some(3_000));
    }
}
