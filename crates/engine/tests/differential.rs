//! Property-based differential suite: the paper's equivalence claim under
//! randomized workloads.
//!
//! [`DetRng`] drives ~200 seeds; each seed generates a random data graph, a
//! random (possibly deliberately weakened) access schema, and a random
//! pattern workload, then asserts the full cross-algorithm contract:
//!
//! * `VF2 = optVF2 = bVF2` (match sets compared canonically, i.e.
//!   order-independently — [`bgpq_engine::MatchSet`] sorts and deduplicates
//!   on construction);
//! * `gsim = optgsim = bSim` (relations compared node for node);
//! * when a pattern is **not** effectively bounded, every path agrees on the
//!   rejection: the direct executor and the engine's forced-`Bounded` mode
//!   report the same uncovered pattern nodes, while the fallback strategies
//!   still return the exact whole-graph answer;
//! * truncated indices are excluded from planning identically everywhere.
//!
//! Everything is seeded and deterministic: a failure reports its seed and
//! pattern index, which reproduce the exact workload.

use bgpq_engine::{
    bounded_simulation_match, bounded_subgraph_match, check_schema, discover_schema,
    opt_simulation_match, opt_subgraph_match, simulation_match, AccessConstraint, AccessIndexSet,
    AccessSchema, BgpqError, ConstraintId, DiscoveryConfig, Engine, Graph, GraphBuilder,
    GraphDelta, QueryRequest, Semantics, ShardConfig, ShardedIndexSet, StrategyKind,
    SubgraphMatcher,
};
use bgpq_graph::Value;
use bgpq_pattern::{DetRng, GeneratorConfig, Pattern, WorkloadGenerator};

/// Labels the random graphs draw from.
const LABEL_POOL: [&str; 8] = [
    "person", "movie", "award", "city", "genre", "year", "studio", "critic",
];

/// A random node-labeled graph: 18–40 nodes over 4–8 labels, with roughly
/// 1–3 edges per node and small integer attribute values (so generated
/// predicates are selective but rarely empty).
fn random_graph(rng: &mut DetRng) -> Graph {
    let label_count = rng.random_range(4..=LABEL_POOL.len());
    let n = rng.random_range(18..=40);
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|_| {
            let label = LABEL_POOL[rng.random_range(0..label_count)];
            let value = Value::Int(rng.random_range(0..9) as i64);
            b.add_node(label, value)
        })
        .collect();
    for _ in 0..rng.random_range(n..=3 * n) {
        let s = ids[rng.random_range(0..n)];
        let d = ids[rng.random_range(0..n)];
        if s != d {
            b.add_edge(s, d).unwrap();
        }
    }
    b.build()
}

/// A schema for the seed: the discovered (satisfied-by-construction) schema,
/// or — on half the seeds — a weakened prefix of it, so that some patterns
/// lose coverage and the unbounded-rejection paths get exercised.
fn random_schema(rng: &mut DetRng, graph: &Graph) -> AccessSchema {
    let discovered = discover_schema(graph, &DiscoveryConfig::default());
    assert!(
        check_schema(graph, &discovered).is_empty(),
        "discovered schema must hold on its graph"
    );
    if rng.random_bool(0.5) || discovered.is_empty() {
        discovered
    } else {
        discovered.truncated(rng.random_range(0..=discovered.len()))
    }
}

fn workload(rng: &mut DetRng, graph: &Graph, seed: u64) -> Vec<Pattern> {
    let config = GeneratorConfig {
        min_nodes: 2,
        max_nodes: 5,
        edge_factor: 1.5,
        min_predicates: 1,
        max_predicates: 5,
        seed: seed ^ rng.next_u64(),
    };
    let mut generator = WorkloadGenerator::new(config);
    let mut patterns = generator.generate_anchored(graph, 3);
    patterns.extend(generator.generate(graph, 3));
    patterns
}

/// The isomorphism half of the contract for one pattern.
fn check_isomorphism(
    seed: u64,
    i: usize,
    q: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
    engine: &Engine,
) {
    let vf2 = SubgraphMatcher::new(q, graph).find_all();
    let opt = opt_subgraph_match(q, graph, indices);
    assert_eq!(vf2, opt, "VF2 vs optVF2 (seed {seed}, pattern {i})");

    match bounded_subgraph_match(q, graph, indices) {
        Ok(run) => {
            assert_eq!(vf2, run.result, "VF2 vs bVF2 (seed {seed}, pattern {i})");
            let forced = engine
                .execute(
                    &QueryRequest::build(q.clone())
                        .strategy(StrategyKind::Bounded)
                        .finish(),
                )
                .unwrap_or_else(|e| {
                    panic!(
                        "engine Bounded refused a bounded pattern (seed {seed}, pattern {i}): {e}"
                    )
                });
            assert_eq!(
                forced.answer.as_matches(),
                Some(&vf2),
                "engine bVF2 vs VF2 (seed {seed}, pattern {i})"
            );
        }
        Err(err) => {
            // Rejection agreement: the engine's forced-Bounded mode must
            // refuse for exactly the same reason.
            let engine_err = engine
                .execute(
                    &QueryRequest::build(q.clone())
                        .strategy(StrategyKind::Bounded)
                        .finish(),
                )
                .expect_err("direct planner rejected, engine must too");
            match engine_err {
                BgpqError::Unbounded(plan_err) => assert_eq!(
                    plan_err.uncovered, err.uncovered,
                    "uncovered-node agreement (seed {seed}, pattern {i})"
                ),
                other => panic!("expected Unbounded, got {other} (seed {seed}, pattern {i})"),
            }
        }
    }

    // Automatic selection (whatever tier it lands on) returns the answer.
    let auto = engine
        .execute(&QueryRequest::build(q.clone()).finish())
        .unwrap();
    assert_eq!(
        auto.answer.as_matches(),
        Some(&vf2),
        "engine auto vs VF2 (seed {seed}, pattern {i}, strategy {})",
        auto.strategy
    );
}

/// The simulation half of the contract for one pattern.
fn check_simulation(
    seed: u64,
    i: usize,
    q: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
    engine: &Engine,
) {
    let gsim = simulation_match(q, graph);
    let opt = opt_simulation_match(q, graph, indices);
    assert_eq!(gsim, opt, "gsim vs optgsim (seed {seed}, pattern {i})");

    match bounded_simulation_match(q, graph, indices) {
        Ok(run) => {
            assert_eq!(gsim, run.result, "gsim vs bSim (seed {seed}, pattern {i})");
        }
        Err(err) => {
            let engine_err = engine
                .execute(
                    &QueryRequest::build(q.clone())
                        .semantics(Semantics::Simulation)
                        .strategy(StrategyKind::Bounded)
                        .finish(),
                )
                .expect_err("direct planner rejected, engine must too");
            match engine_err {
                BgpqError::Unbounded(plan_err) => assert_eq!(
                    plan_err.uncovered, err.uncovered,
                    "sim uncovered-node agreement (seed {seed}, pattern {i})"
                ),
                other => panic!("expected Unbounded, got {other} (seed {seed}, pattern {i})"),
            }
        }
    }

    let auto = engine
        .execute(
            &QueryRequest::build(q.clone())
                .semantics(Semantics::Simulation)
                .finish(),
        )
        .unwrap();
    assert_eq!(
        auto.answer.as_simulation(),
        Some(&gsim),
        "engine auto vs gsim (seed {seed}, pattern {i}, strategy {})",
        auto.strategy
    );
}

fn run_seed(seed: u64) {
    let mut rng = DetRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1FF);
    let graph = random_graph(&mut rng);
    let schema = random_schema(&mut rng, &graph);
    let indices = AccessIndexSet::build(&graph, &schema);
    let engine = Engine::with_indices(graph.clone(), indices.clone());
    let patterns = workload(&mut rng, &graph, seed);
    for (i, q) in patterns.iter().enumerate() {
        check_isomorphism(seed, i, q, &graph, &indices, &engine);
        check_simulation(seed, i, q, &graph, &indices, &engine);
    }

    // The checks above warmed `engine`'s plan and fragment caches. Replays
    // through the warm caches, and one `execute_batch` pass (shared lookup
    // memo), must reproduce the answers of a fully uncached engine bit for
    // bit.
    let uncached = Engine::with_indices(graph.clone(), indices.clone())
        .with_plan_cache_capacity(0)
        .with_fragment_cache_capacity(0);
    for semantics in [Semantics::Isomorphism, Semantics::Simulation] {
        let requests: Vec<QueryRequest> = patterns
            .iter()
            .map(|q| QueryRequest::build(q.clone()).semantics(semantics).finish())
            .collect();
        for (i, (request, slot)) in requests
            .iter()
            .zip(engine.execute_batch(&requests))
            .enumerate()
        {
            let batched = slot.unwrap_or_else(|e| {
                panic!("auto strategy never fails (seed {seed}, pattern {i}): {e}")
            });
            let alone = uncached.execute(request).unwrap();
            assert_eq!(
                batched.answer, alone.answer,
                "batch vs uncached (seed {seed}, pattern {i}, {semantics:?})"
            );
            let warm = engine.execute(request).unwrap();
            assert_eq!(
                warm.answer, alone.answer,
                "warm cache vs uncached (seed {seed}, pattern {i}, {semantics:?})"
            );
        }
    }

    // Partitioned execution: every (partitions, threads) combination must be
    // indistinguishable from the serial engine under forced-Bounded
    // execution — identical answers and match counts when the plan is
    // bounded, the identical uncovered-node verdict when it is not. The
    // per-shard index slices must also merge back to the exact single
    // build (same keys, sizes, truncation verdicts per constraint).
    for partitions in [1usize, 2, 4] {
        for threads in [1usize, 2] {
            let sharded = Engine::with_indices(graph.clone(), indices.clone())
                .with_sharding(ShardConfig::new(partitions, threads));
            for (i, q) in patterns.iter().enumerate() {
                for semantics in [Semantics::Isomorphism, Semantics::Simulation] {
                    let bounded = QueryRequest::build(q.clone())
                        .semantics(semantics)
                        .strategy(StrategyKind::Bounded)
                        .finish();
                    match (engine.execute(&bounded), sharded.execute(&bounded)) {
                        (Ok(serial), Ok(parallel)) => {
                            assert_eq!(
                                serial.answer.len(),
                                parallel.answer.len(),
                                "partitioned match count (seed {seed}, pattern {i}, \
                                 {semantics:?}, P={partitions}, T={threads})"
                            );
                            assert_eq!(
                                serial.answer, parallel.answer,
                                "partitioned answer (seed {seed}, pattern {i}, \
                                 {semantics:?}, P={partitions}, T={threads})"
                            );
                        }
                        (
                            Err(BgpqError::Unbounded(serial)),
                            Err(BgpqError::Unbounded(parallel)),
                        ) => {
                            assert_eq!(
                                serial.uncovered, parallel.uncovered,
                                "partitioned rejection (seed {seed}, pattern {i}, \
                                 {semantics:?}, P={partitions}, T={threads})"
                            );
                        }
                        (serial, parallel) => panic!(
                            "bounded verdict diverged (seed {seed}, pattern {i}, \
                             {semantics:?}, P={partitions}, T={threads}): \
                             serial ok={} vs partitioned ok={}",
                            serial.is_ok(),
                            parallel.is_ok()
                        ),
                    }
                }
            }
            if threads == 1 {
                let merged = sharded
                    .shard_runtime()
                    .expect("with_sharding attaches a runtime")
                    .indices()
                    .merged();
                assert_eq!(
                    merged.total_size(),
                    indices.total_size(),
                    "merged size (seed {seed}, P={partitions})"
                );
                for (id, single) in indices.iter() {
                    let m = merged.get(id).expect("merged set covers the schema");
                    assert_eq!(
                        (m.key_count(), m.size(), m.is_truncated()),
                        (single.key_count(), single.size(), single.is_truncated()),
                        "merged vs single build (seed {seed}, P={partitions}, {id})"
                    );
                }
            }
        }
    }
}

// The fixed 200-seed matrix, split into four jobs so `cargo test` runs them
// on separate threads.

#[test]
fn differential_seed_matrix_000_049() {
    (0..50).for_each(run_seed);
}

#[test]
fn differential_seed_matrix_050_099() {
    (50..100).for_each(run_seed);
}

#[test]
fn differential_seed_matrix_100_149() {
    (100..150).for_each(run_seed);
}

#[test]
fn differential_seed_matrix_150_199() {
    (150..200).for_each(run_seed);
}

/// Randomized hub fixtures whose pair index overflows the per-node
/// combination cap: the truncated index must be excluded from planning on
/// every path, and the fallback strategies must still return the exact
/// whole-graph answer.
#[test]
fn truncated_indices_agree_across_strategies() {
    for seed in [3u64, 11, 27, 55, 91] {
        let mut rng = DetRng::seed_from_u64(seed);
        // 66 × 66 = 4356 (x, y) pairs per hub > the 4096 build cap.
        let pairs = rng.random_range(66..=80);
        let mut gb = GraphBuilder::new();
        let hub = gb.add_node("hub", Value::Null);
        for i in 0..pairs as i64 {
            let x = gb.add_node("x", Value::Int(i));
            let y = gb.add_node("y", Value::Int(i));
            gb.add_edge(x, hub).unwrap();
            gb.add_edge(y, hub).unwrap();
        }
        let g = gb.build();
        let l = |name: &str| g.interner().get(name).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(l("x"), pairs),
            AccessConstraint::global(l("y"), pairs),
            AccessConstraint::new([l("x"), l("y")], l("hub"), pairs * pairs),
        ]);
        let indices = AccessIndexSet::build(&g, &schema);
        assert!(
            indices.get(ConstraintId(2)).unwrap().is_truncated(),
            "seed {seed}: fixture must truncate"
        );
        let engine = Engine::with_indices(g.clone(), indices.clone());

        let mut pb = bgpq_pattern::PatternBuilder::with_interner(g.interner().clone());
        let px = pb.node("x", bgpq_pattern::Predicate::always());
        let py = pb.node("y", bgpq_pattern::Predicate::always());
        let ph = pb.node("hub", bgpq_pattern::Predicate::always());
        pb.edge(px, ph);
        pb.edge(py, ph);
        let q = pb.build();

        // Direct executor and engine agree the query is unbounded (the only
        // hub-covering constraint is truncated)...
        let err = bounded_subgraph_match(&q, &g, &indices).unwrap_err();
        assert_eq!(err.uncovered.len(), 1, "seed {seed}");
        let engine_err = engine
            .execute(
                &QueryRequest::build(q.clone())
                    .strategy(StrategyKind::Bounded)
                    .finish(),
            )
            .unwrap_err();
        assert!(matches!(engine_err, BgpqError::Unbounded(_)), "seed {seed}");

        // ...while every surviving path returns the exact answer.
        let vf2 = SubgraphMatcher::new(&q, &g).find_all();
        assert_eq!(vf2.len(), pairs * pairs, "seed {seed}");
        assert_eq!(vf2, opt_subgraph_match(&q, &g, &indices), "seed {seed}");
        let auto = engine
            .execute(&QueryRequest::build(q.clone()).finish())
            .unwrap();
        assert_eq!(auto.answer.as_matches(), Some(&vf2), "seed {seed}");
        assert_ne!(auto.strategy, StrategyKind::Bounded, "seed {seed}");

        // A replay through the now-warm plan cache (which holds the cached
        // Unbounded verdict) and a batch over the same pattern agree too.
        let again = engine
            .execute(&QueryRequest::build(q.clone()).finish())
            .unwrap();
        assert_eq!(again.answer.as_matches(), Some(&vf2), "seed {seed}");
        let requests = vec![
            QueryRequest::build(q.clone()).finish(),
            QueryRequest::build(q.clone()).finish(),
        ];
        for slot in engine.execute_batch(&requests) {
            let response = slot.unwrap();
            assert_eq!(response.answer.as_matches(), Some(&vf2), "seed {seed}");
        }
    }
}

/// Interleaved-commit differential: a serving chain shares one plan cache
/// and one fragment cache across snapshot versions. After every "commit"
/// (graph mutation + index rebuild + version bump), answers served through
/// the shared caches — cold, warm, and batched — must equal a fully
/// uncached engine on the same snapshot. Deliberately tiny cache
/// capacities force eviction and version churn to interact.
#[test]
fn cached_answers_agree_across_interleaved_commits() {
    use bgpq_engine::{SharedFragmentCache, SharedPlanCache};
    for seed in [7u64, 21, 42, 63, 84] {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut graph = random_graph(&mut rng);
        let cache = SharedPlanCache::with_capacity(8);
        let fragments = SharedFragmentCache::with_capacity(8);
        for version in 0..4u64 {
            let schema = discover_schema(&graph, &DiscoveryConfig::default());
            let indices = AccessIndexSet::build(&graph, &schema);
            let engine = Engine::with_caches_at_version(
                graph.clone(),
                indices.clone(),
                version,
                cache.clone(),
                fragments.clone(),
            );
            let uncached = Engine::with_indices(graph.clone(), indices.clone())
                .with_plan_cache_capacity(0)
                .with_fragment_cache_capacity(0);
            let patterns = workload(&mut rng, &graph, seed ^ version);
            let requests: Vec<QueryRequest> = patterns
                .iter()
                .map(|q| QueryRequest::build(q.clone()).finish())
                .collect();
            for (i, request) in requests.iter().enumerate() {
                let expected = uncached.execute(request).unwrap().answer;
                let cold = engine.execute(request).unwrap().answer;
                assert_eq!(
                    cold, expected,
                    "cold (seed {seed}, v{version}, pattern {i})"
                );
                let warm = engine.execute(request).unwrap().answer;
                assert_eq!(
                    warm, expected,
                    "warm (seed {seed}, v{version}, pattern {i})"
                );
            }
            for (i, slot) in engine.execute_batch(&requests).into_iter().enumerate() {
                let expected = uncached.execute(&requests[i]).unwrap().answer;
                let batched = slot.unwrap().answer;
                assert_eq!(
                    batched, expected,
                    "batch (seed {seed}, v{version}, pattern {i})"
                );
            }

            // The "commit": mutate the graph for the next version while the
            // shared caches keep holding this version's entries.
            let live: Vec<_> = graph.nodes().filter(|&v| graph.is_live(v)).collect();
            let label = LABEL_POOL[rng.random_range(0..LABEL_POOL.len())];
            let new = graph.insert_node(label, Value::Int(rng.random_range(0..9) as i64));
            let anchor = live[rng.random_range(0..live.len())];
            graph.insert_edge(anchor, new).unwrap();
            if rng.random_bool(0.5) {
                let victim = live[rng.random_range(0..live.len())];
                if victim != anchor {
                    graph.delete_node(victim).unwrap();
                }
            }
        }
    }
}

/// Maintained-vs-rebuilt differential for per-partition indices: random
/// delta streams (node/edge inserts, node deletes with their incident
/// edges) applied through [`ShardedIndexSet::apply_deltas`] must leave
/// every shard equal to a fresh partitioned build on the mutated graph —
/// same keys, sizes and truncation verdicts per constraint — and the
/// merged maintained set equal to a fresh single build.
#[test]
fn sharded_maintenance_matches_rebuild_under_delta_streams() {
    for seed in [5u64, 17, 29, 53, 71] {
        let mut rng = DetRng::seed_from_u64(seed.wrapping_mul(0xA24B_AED4_963E_E407) ^ 0xBEEF);
        let mut graph = random_graph(&mut rng);
        let schema = discover_schema(&graph, &DiscoveryConfig::default());
        let config = ShardConfig::new(3, 2);
        let spec = config.spec_for(&graph);
        let mut maintained = ShardedIndexSet::build(&graph, &schema, &spec, config.threads);
        for round in 0..5 {
            let live: Vec<_> = graph.nodes().filter(|&v| graph.is_live(v)).collect();
            let mut deltas = Vec::new();
            for _ in 0..2 {
                let label = LABEL_POOL[rng.random_range(0..LABEL_POOL.len())];
                let new = graph.insert_node(label, Value::Int(rng.random_range(0..9) as i64));
                deltas.push(GraphDelta::InsertNode(new));
                let anchor = live[rng.random_range(0..live.len())];
                if graph.insert_edge(anchor, new).unwrap() {
                    deltas.push(GraphDelta::InsertEdge(anchor, new));
                }
            }
            if round % 2 == 1 {
                let victim = live[rng.random_range(0..live.len())];
                // A node deletion travels with one DeleteEdge per incident
                // edge, the contract `apply_deltas` documents.
                for edge in graph.delete_node(victim).unwrap() {
                    deltas.push(GraphDelta::DeleteEdge(edge.src, edge.dst));
                }
                deltas.push(GraphDelta::DeleteNode(victim));
            }
            maintained.apply_deltas(&graph, &deltas, config.threads);

            let rebuilt = ShardedIndexSet::build(&graph, &schema, &spec, config.threads);
            for (shard_no, (kept, fresh)) in
                maintained.shards().iter().zip(rebuilt.shards()).enumerate()
            {
                for (id, fresh_ix) in fresh.iter() {
                    let kept_ix = kept.get(id).expect("maintained shard covers the schema");
                    assert_eq!(
                        (kept_ix.key_count(), kept_ix.size(), kept_ix.is_truncated()),
                        (
                            fresh_ix.key_count(),
                            fresh_ix.size(),
                            fresh_ix.is_truncated()
                        ),
                        "maintained vs rebuilt (seed {seed}, round {round}, \
                         shard {shard_no}, {id})"
                    );
                }
            }
            let merged = maintained.merged();
            let single = AccessIndexSet::build(&graph, &schema);
            for (id, fresh_ix) in single.iter() {
                let m = merged.get(id).expect("merged set covers the schema");
                assert_eq!(
                    (m.key_count(), m.size(), m.is_truncated()),
                    (
                        fresh_ix.key_count(),
                        fresh_ix.size(),
                        fresh_ix.is_truncated()
                    ),
                    "merged maintained vs single rebuild (seed {seed}, round {round}, {id})"
                );
            }
        }
    }
}
