//! End-to-end engine behavior: strategy selection, graceful fallback with
//! answers identical to the direct algorithms, plan-cache hits/eviction,
//! budgets and forced-strategy errors.

use bgpq_engine::{
    check_schema, discover_schema, simulation_match, AccessConstraint, AccessSchema, BgpqError,
    CacheOutcome, DiscoveryConfig, Engine, Graph, GraphBuilder, QueryRequest, Semantics,
    StrategyKind, SubgraphMatcher, WorkloadGenerator,
};
use bgpq_graph::Value;
use bgpq_pattern::{Pattern, PatternBuilder, Predicate};

/// The IMDb-shaped toy of the equivalence suite: years, awards, movies,
/// actors, countries — plus noise nodes no bounded fetch may touch.
fn data_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let years: Vec<_> = (0..4)
        .map(|i| b.add_node("year", Value::Int(2010 + i)))
        .collect();
    let awards: Vec<_> = (0..2)
        .map(|i| b.add_node("award", Value::str(format!("award{i}"))))
        .collect();
    let countries: Vec<_> = (0..3)
        .map(|i| b.add_node("country", Value::str(format!("c{i}"))))
        .collect();
    for i in 0..12i64 {
        let m = b.add_node("movie", Value::Int(i));
        b.add_edge(years[(i % 4) as usize], m).unwrap();
        b.add_edge(awards[(i % 2) as usize], m).unwrap();
        for j in 0..2 {
            let a = b.add_node("actor", Value::Int(10 * i + j));
            b.add_edge(m, a).unwrap();
            b.add_edge(a, countries[((i + j) % 3) as usize]).unwrap();
        }
    }
    for i in 0..40 {
        b.add_node("noise", Value::Int(i));
    }
    b.build()
}

/// A schema under which the movie pattern is bounded for isomorphism (but
/// `actor`/`country` are only reachable through parents, so simulation
/// plans fail).
fn schema(graph: &Graph) -> AccessSchema {
    let l = |name: &str| graph.interner().get(name).unwrap();
    AccessSchema::from_constraints([
        AccessConstraint::global(l("year"), 4),
        AccessConstraint::global(l("award"), 2),
        AccessConstraint::new([l("year"), l("award")], l("movie"), 3),
        AccessConstraint::unary(l("movie"), l("actor"), 2),
        AccessConstraint::unary(l("actor"), l("country"), 1),
    ])
}

fn movie_pattern(graph: &Graph, year: i64) -> Pattern {
    let mut pb = PatternBuilder::with_interner(graph.interner().clone());
    let m = pb.node("movie", Predicate::always());
    let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, year));
    let a = pb.node("award", Predicate::always());
    let act = pb.node("actor", Predicate::always());
    pb.edge(y, m);
    pb.edge(a, m);
    pb.edge(m, act);
    pb.build()
}

fn engine() -> Engine {
    let g = data_graph();
    let s = schema(&g);
    assert!(check_schema(&g, &s).is_empty(), "fixture schema must hold");
    Engine::new(g, &s)
}

#[test]
fn plannable_queries_select_bounded_and_match_vf2() {
    let engine = engine();
    let q = movie_pattern(engine.graph(), 2011);
    let direct = SubgraphMatcher::new(&q, engine.graph()).find_all();
    assert!(!direct.is_empty());

    let response = engine
        .execute(&QueryRequest::build(q).explain(true).finish())
        .unwrap();
    assert_eq!(response.strategy, StrategyKind::Bounded);
    assert_eq!(response.answer.as_matches(), Some(&direct));
    // Bounded runs report the fetch and the a-priori bound.
    let fetch = response.stats.fetch.as_ref().expect("bounded ran a fetch");
    assert!(fetch.fragment_nodes > 0);
    assert!((fetch.fragment_nodes as u64) <= response.stats.worst_case_nodes.unwrap());
    assert!(response.stats.fetch_utilization().unwrap() <= 1.0);
    // Explain carries the plan, no fallback.
    let explain = response.explain.expect("explain was requested");
    assert_eq!(explain.strategy, StrategyKind::Bounded);
    assert!(explain.plan.is_some());
    assert!(explain.fallback_reason.is_none());
    assert_eq!(engine.stats().bounded_runs, 1);
}

#[test]
fn second_identical_request_is_a_plan_cache_hit() {
    let engine = engine();
    let first = engine
        .execute(&QueryRequest::build(movie_pattern(engine.graph(), 2012)).finish())
        .unwrap();
    assert_eq!(first.stats.plan_cache, Some(CacheOutcome::Miss));

    // A structurally identical pattern, built independently.
    let second = engine
        .execute(&QueryRequest::build(movie_pattern(engine.graph(), 2012)).finish())
        .unwrap();
    assert_eq!(second.stats.plan_cache, Some(CacheOutcome::Hit));
    assert_eq!(second.answer, first.answer);

    // A different predicate constant is a different pattern: miss.
    let other = engine
        .execute(&QueryRequest::build(movie_pattern(engine.graph(), 2013)).finish())
        .unwrap();
    assert_eq!(other.stats.plan_cache, Some(CacheOutcome::Miss));

    let stats = engine.stats();
    assert_eq!(stats.queries, 3);
    assert_eq!(stats.plan_cache_hits, 1);
    assert_eq!(stats.plan_cache_misses, 2);
    assert_eq!(stats.cached_plans, 2);
    assert_eq!(stats.plan_cache_evictions, 0);
}

#[test]
fn tiny_cache_evicts_least_recently_used() {
    let engine = engine().with_plan_cache_capacity(2);
    let years = [2010, 2011, 2012];
    for y in years {
        let r = engine
            .execute(&QueryRequest::build(movie_pattern(engine.graph(), y)).finish())
            .unwrap();
        assert_eq!(r.stats.plan_cache, Some(CacheOutcome::Miss));
    }
    let stats = engine.stats();
    assert_eq!(stats.plan_cache_evictions, 1);
    assert_eq!(stats.cached_plans, 2);
    // 2010 was evicted (LRU); 2012 is still cached.
    let r = engine
        .execute(&QueryRequest::build(movie_pattern(engine.graph(), 2012)).finish())
        .unwrap();
    assert_eq!(r.stats.plan_cache, Some(CacheOutcome::Hit));
    let r = engine
        .execute(&QueryRequest::build(movie_pattern(engine.graph(), 2010)).finish())
        .unwrap();
    assert_eq!(r.stats.plan_cache, Some(CacheOutcome::Miss));
}

#[test]
fn unbounded_isomorphism_query_falls_back_with_identical_answer() {
    let engine = engine();
    // `noise` has no covering constraint → unbounded under the schema.
    let mut pb = PatternBuilder::with_interner(engine.graph().interner().clone());
    pb.node("noise", Predicate::single(bgpq_pattern::Op::Lt, 5));
    let q = pb.build();

    let direct = SubgraphMatcher::new(&q, engine.graph()).find_all();
    assert_eq!(direct.len(), 5);
    let response = engine
        .execute(&QueryRequest::build(q).explain(true).finish())
        .unwrap();
    // Indices exist, so the fallback tier is IndexSeeded — never Bounded.
    assert_eq!(response.strategy, StrategyKind::IndexSeeded);
    assert_eq!(response.answer.as_matches(), Some(&direct));
    assert!(response.stats.fetch.is_none());
    assert!(response.stats.worst_case_nodes.is_none());
    let explain = response.explain.unwrap();
    assert!(explain.plan.is_none());
    assert!(explain
        .fallback_reason
        .unwrap()
        .contains("not effectively bounded"));
    assert_eq!(engine.stats().fallbacks, 1);
    // The unbounded verdict is cached too.
    let mut pb = PatternBuilder::with_interner(engine.graph().interner().clone());
    pb.node("noise", Predicate::single(bgpq_pattern::Op::Lt, 5));
    let r = engine
        .execute(&QueryRequest::build(pb.build()).finish())
        .unwrap();
    assert_eq!(r.stats.plan_cache, Some(CacheOutcome::Hit));
}

#[test]
fn empty_schema_falls_back_to_baseline_identical_to_vf2_and_gsim() {
    let g = data_graph();
    let engine = Engine::new(g, &AccessSchema::new());
    let q = movie_pattern(engine.graph(), 2011);

    let vf2 = SubgraphMatcher::new(&q, engine.graph()).find_all();
    let r = engine
        .execute(&QueryRequest::build(q.clone()).finish())
        .unwrap();
    assert_eq!(r.strategy, StrategyKind::Baseline);
    assert_eq!(r.answer.as_matches(), Some(&vf2));

    let gsim = simulation_match(&q, engine.graph());
    let r = engine
        .execute(
            &QueryRequest::build(q)
                .semantics(Semantics::Simulation)
                .finish(),
        )
        .unwrap();
    assert_eq!(r.strategy, StrategyKind::Baseline);
    assert_eq!(r.answer.as_simulation(), Some(&gsim));
}

#[test]
fn simulation_unbounded_under_schema_falls_back_but_matches_gsim() {
    let engine = engine();
    // actor/country are only coverable through parents: bounded for
    // isomorphism, unbounded for simulation under this schema.
    let q = movie_pattern(engine.graph(), 2010);
    let gsim = simulation_match(&q, engine.graph());
    let r = engine
        .execute(
            &QueryRequest::build(q)
                .semantics(Semantics::Simulation)
                .finish(),
        )
        .unwrap();
    assert_eq!(r.strategy, StrategyKind::IndexSeeded);
    assert_eq!(r.answer.as_simulation(), Some(&gsim));
}

#[test]
fn foreign_interner_patterns_are_rejected_not_answered_wrongly() {
    let engine = engine();
    // Same label names, but interned in a different order: the ids cross
    // names, so raw-id matching would silently corrupt the answer.
    let mut pb = PatternBuilder::new();
    let m = pb.node("movie", Predicate::always()); // id 0 = "year" in the graph
    let y = pb.node("year", Predicate::always());
    pb.edge(y, m);
    let err = engine
        .execute(&QueryRequest::build(pb.build()).finish())
        .unwrap_err();
    assert!(matches!(err, BgpqError::PatternMismatch { .. }));
    assert!(err.to_string().contains("interner"));

    // A fresh interner whose id assignment happens to coincide is fine:
    // "year" is the graph's first label, and a never-seen label is fine
    // too (it can only produce an empty answer).
    let mut pb = PatternBuilder::new();
    pb.node("year", Predicate::always());
    assert!(engine
        .execute(&QueryRequest::build(pb.build()).finish())
        .is_ok());
    let mut pb = PatternBuilder::with_interner(engine.graph().interner().clone());
    pb.node("label_the_graph_never_saw", Predicate::always());
    let r = engine
        .execute(&QueryRequest::build(pb.build()).finish())
        .unwrap();
    assert!(r.answer.is_empty());
}

#[test]
fn all_strategies_agree_when_forced() {
    let engine = engine();
    for semantics in [Semantics::Isomorphism, Semantics::Simulation] {
        // Pick a pattern bounded for the semantics at hand.
        let q = match semantics {
            Semantics::Isomorphism => movie_pattern(engine.graph(), 2011),
            Semantics::Simulation => {
                // movie with year/award children only: coverable via
                // children for simulation too.
                let mut pb = PatternBuilder::with_interner(engine.graph().interner().clone());
                let m = pb.node("movie", Predicate::always());
                let y = pb.node("year", Predicate::always());
                let a = pb.node("award", Predicate::always());
                pb.edge(m, y);
                pb.edge(m, a);
                pb.build()
            }
        };
        let answers: Vec<_> = [
            StrategyKind::Bounded,
            StrategyKind::IndexSeeded,
            StrategyKind::Baseline,
        ]
        .into_iter()
        .map(|kind| {
            let r = engine
                .execute(
                    &QueryRequest::build(q.clone())
                        .semantics(semantics)
                        .strategy(kind)
                        .finish(),
                )
                .unwrap_or_else(|e| panic!("{kind:?}/{semantics} failed: {e}"));
            assert_eq!(r.strategy, kind);
            r.answer
        })
        .collect();
        assert_eq!(answers[0], answers[1], "{semantics}: bounded vs seeded");
        assert_eq!(answers[1], answers[2], "{semantics}: seeded vs baseline");
    }
}

#[test]
fn forced_strategy_errors_are_typed() {
    let engine = engine();
    let mut pb = PatternBuilder::with_interner(engine.graph().interner().clone());
    pb.node("noise", Predicate::always());
    let unbounded = pb.build();
    let err = engine
        .execute(
            &QueryRequest::build(unbounded)
                .strategy(StrategyKind::Bounded)
                .finish(),
        )
        .unwrap_err();
    assert!(matches!(err, BgpqError::Unbounded(_)));

    let empty = Engine::new(data_graph(), &AccessSchema::new());
    let err = empty
        .execute(
            &QueryRequest::build(movie_pattern(empty.graph(), 2010))
                .strategy(StrategyKind::IndexSeeded)
                .finish(),
        )
        .unwrap_err();
    assert!(matches!(err, BgpqError::StrategyUnavailable { .. }));
}

#[test]
fn budgets_truncate_and_abort() {
    let engine = engine();
    let q = movie_pattern(engine.graph(), 2011);
    let full = engine
        .execute(&QueryRequest::build(q.clone()).finish())
        .unwrap();
    let full_len = full.answer.len();
    assert!(full_len > 1);

    let capped = engine
        .execute(&QueryRequest::build(q.clone()).max_matches(1).finish())
        .unwrap();
    assert_eq!(capped.answer.len(), 1);
    assert!(!capped.stats.aborted);

    let starved = engine
        .execute(&QueryRequest::build(q).step_budget(1).finish())
        .unwrap();
    assert!(starved.stats.aborted);
    assert!(starved.answer.len() < full_len);
}

/// Stats must be populated uniformly: every strategy reports the plan-cache
/// outcome and the `predicate_filtered` counter, and the
/// `fragment_build`/`match` time split is consistent with which strategy
/// actually fetched a fragment.
#[test]
fn exec_stats_are_uniform_across_strategies() {
    let engine = engine();
    // The 2011 predicate rejects the three other year nodes, so every
    // strategy must report predicate-filtered candidates.
    for (kind, semantics) in [
        (StrategyKind::Bounded, Semantics::Isomorphism),
        (StrategyKind::IndexSeeded, Semantics::Isomorphism),
        (StrategyKind::IndexSeeded, Semantics::Simulation),
        (StrategyKind::Baseline, Semantics::Isomorphism),
        (StrategyKind::Baseline, Semantics::Simulation),
    ] {
        let r = engine
            .execute(
                &QueryRequest::build(movie_pattern(engine.graph(), 2011))
                    .semantics(semantics)
                    .strategy(kind)
                    .finish(),
            )
            .unwrap();
        assert_eq!(r.strategy, kind);
        assert!(
            r.stats.plan_cache.is_some(),
            "{kind:?}/{semantics}: plan cache outcome missing"
        );
        assert_eq!(
            r.stats.predicate_filtered, 3,
            "{kind:?}/{semantics}: three non-2011 years must be filtered"
        );
        // The build/match split: only the bounded tier builds a fragment.
        if kind == StrategyKind::Bounded {
            assert!(r.stats.fetch.is_some());
            assert!(r.stats.fragment_build_nanos > 0);
            assert_eq!(
                r.stats.fetch.as_ref().unwrap().fragment_build_nanos,
                r.stats.fragment_build_nanos
            );
        } else {
            assert!(r.stats.fetch.is_none());
            assert_eq!(r.stats.fragment_build_nanos, 0);
        }
        assert!(r.stats.total_nanos >= r.stats.match_nanos + r.stats.fragment_build_nanos);
    }
    // A repeated request reports a Hit on every strategy, not just Bounded.
    for kind in [
        StrategyKind::Bounded,
        StrategyKind::IndexSeeded,
        StrategyKind::Baseline,
    ] {
        let r = engine
            .execute(
                &QueryRequest::build(movie_pattern(engine.graph(), 2011))
                    .strategy(kind)
                    .finish(),
            )
            .unwrap();
        assert_eq!(
            r.stats.plan_cache,
            Some(CacheOutcome::Hit),
            "{kind:?}: repeat request must hit the plan cache"
        );
    }
}

/// A repeated bounded query must reuse its cached candidate set: the second
/// run reports a fragment-cache hit with zero index lookups, the same
/// fragment, and the identical answer.
#[test]
fn repeated_bounded_query_hits_the_fragment_cache() {
    let engine = engine();
    let request = |year| QueryRequest::build(movie_pattern(engine.graph(), year)).finish();

    let first = engine.execute(&request(2011)).unwrap();
    assert_eq!(first.strategy, StrategyKind::Bounded);
    assert_eq!(first.stats.fragment_cache, Some(CacheOutcome::Miss));
    let first_fetch = first.stats.fetch.as_ref().unwrap();
    assert!(first_fetch.index_lookups > 0);

    let second = engine.execute(&request(2011)).unwrap();
    assert_eq!(second.stats.fragment_cache, Some(CacheOutcome::Hit));
    assert_eq!(second.answer, first.answer);
    // The hit skipped every lookup: the fetch reports only this request's
    // own work, while the fragment-size fields describe the reused fragment.
    let second_fetch = second.stats.fetch.as_ref().unwrap();
    assert_eq!(second_fetch.index_lookups, 0);
    assert_eq!(second_fetch.lookups_deduped, 0);
    assert_eq!(second_fetch.nodes_returned, 0);
    assert_eq!(second_fetch.fragment_nodes, first_fetch.fragment_nodes);
    assert_eq!(second_fetch.fragment_edges, first_fetch.fragment_edges);
    assert!(second_fetch.fragment_build_nanos <= first_fetch.fragment_build_nanos);

    // A different predicate constant is a different fragment: miss.
    let other = engine.execute(&request(2013)).unwrap();
    assert_eq!(other.stats.fragment_cache, Some(CacheOutcome::Miss));

    let stats = engine.stats();
    assert_eq!(stats.fragment_cache_hits, 1);
    assert_eq!(stats.fragment_cache_misses, 2);
    assert_eq!(stats.cached_fragments, 2);
}

/// Capacity 0 disables the fragment cache: every bounded run re-fetches and
/// reports a bypass, and nothing is retained or counted.
#[test]
fn fragment_cache_capacity_zero_bypasses() {
    let engine = engine().with_fragment_cache_capacity(0);
    let request = || QueryRequest::build(movie_pattern(engine.graph(), 2011)).finish();
    let first = engine.execute(&request()).unwrap();
    let second = engine.execute(&request()).unwrap();
    assert_eq!(first.stats.fragment_cache, Some(CacheOutcome::Bypass));
    assert_eq!(second.stats.fragment_cache, Some(CacheOutcome::Bypass));
    assert_eq!(second.answer, first.answer);
    assert!(second.stats.fetch.as_ref().unwrap().index_lookups > 0);
    let stats = engine.stats();
    assert_eq!(stats.fragment_cache_hits, 0);
    assert_eq!(stats.fragment_cache_misses, 0);
    assert_eq!(stats.cached_fragments, 0);
}

/// Only the bounded tier consults the fragment cache; the other strategies
/// fetch no fragment and must report no outcome.
#[test]
fn non_bounded_strategies_report_no_fragment_cache_outcome() {
    let engine = engine();
    for kind in [StrategyKind::IndexSeeded, StrategyKind::Baseline] {
        let r = engine
            .execute(
                &QueryRequest::build(movie_pattern(engine.graph(), 2011))
                    .strategy(kind)
                    .finish(),
            )
            .unwrap();
        assert_eq!(r.stats.fragment_cache, None, "{kind:?}");
    }
}

/// `execute_batch` returns, slot for slot, exactly what sequential
/// `execute` calls return — while sharing index lookups between the
/// queries through the batch memo.
#[test]
fn execute_batch_matches_sequential_execution() {
    let solo = engine().with_fragment_cache_capacity(0);
    let batched = engine().with_fragment_cache_capacity(0);
    let patterns: Vec<_> = [2010, 2011, 2012]
        .into_iter()
        .map(|y| movie_pattern(solo.graph(), y))
        .collect();

    let solo_runs: Vec<_> = patterns
        .iter()
        .map(|q| {
            solo.execute(&QueryRequest::build(q.clone()).finish())
                .unwrap()
        })
        .collect();
    let requests: Vec<_> = patterns
        .iter()
        .map(|q| QueryRequest::build(q.clone()).finish())
        .collect();
    let batch_runs: Vec<_> = batched
        .execute_batch(&requests)
        .into_iter()
        .map(Result::unwrap)
        .collect();

    assert_eq!(batch_runs.len(), solo_runs.len());
    for (b, s) in batch_runs.iter().zip(&solo_runs) {
        assert_eq!(b.answer, s.answer);
        assert_eq!(b.strategy, s.strategy);
        let (bf, sf) = (
            b.stats.fetch.as_ref().unwrap(),
            s.stats.fetch.as_ref().unwrap(),
        );
        assert_eq!(bf.fragment_nodes, sf.fragment_nodes);
        assert_eq!(bf.fragment_edges, sf.fragment_edges);
        // The memo only changes *where* a lookup is answered, never how
        // many keys the fetch resolves.
        assert_eq!(
            bf.index_lookups + bf.lookups_deduped,
            sf.index_lookups + sf.lookups_deduped
        );
    }
    // The later queries reuse the earlier ones' lookups (the global year
    // and award scans at least), so they issue strictly fewer themselves.
    let bf = batch_runs[1].stats.fetch.as_ref().unwrap();
    let sf = solo_runs[1].stats.fetch.as_ref().unwrap();
    assert!(
        bf.index_lookups < sf.index_lookups,
        "batched query must share lookups: {} vs {}",
        bf.index_lookups,
        sf.index_lookups
    );
    assert!(bf.lookups_deduped > 0);
}

/// A bad slot in a batch fails alone: the other requests still run and
/// return their answers.
#[test]
fn batch_failures_are_per_slot() {
    let engine = engine();
    // A foreign-interner pattern (ids cross names) is rejected.
    let mut pb = PatternBuilder::new();
    let m = pb.node("movie", Predicate::always());
    let y = pb.node("year", Predicate::always());
    pb.edge(y, m);
    let requests = vec![
        QueryRequest::build(movie_pattern(engine.graph(), 2011)).finish(),
        QueryRequest::build(pb.build()).finish(),
        QueryRequest::build(movie_pattern(engine.graph(), 2012)).finish(),
    ];
    let results = engine.execute_batch(&requests);
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok());
    assert!(matches!(
        results[1].as_ref().unwrap_err(),
        BgpqError::PatternMismatch { .. }
    ));
    let direct = SubgraphMatcher::new(requests[2].pattern(), engine.graph()).find_all();
    assert_eq!(
        results[2].as_ref().unwrap().answer.as_matches(),
        Some(&direct)
    );
}

/// The equivalence suite's guarantee, re-asserted through the session API:
/// on generated workloads the engine (auto-selected strategy) returns
/// exactly the direct algorithms' answers, for both semantics.
#[test]
fn engine_equivalence_on_generated_workloads() {
    let g = data_graph();
    let discovered = discover_schema(&g, &DiscoveryConfig::default());
    let engine = Engine::new(g, &discovered);
    let mut generator = WorkloadGenerator::with_seed(7);
    let mut patterns = generator.generate_anchored(engine.graph(), 5);
    patterns.extend(generator.generate(engine.graph(), 5));

    let mut bounded_runs = 0;
    for (i, q) in patterns.into_iter().enumerate() {
        let vf2 = SubgraphMatcher::new(&q, engine.graph()).find_all();
        let r = engine
            .execute(&QueryRequest::build(q.clone()).finish())
            .unwrap();
        assert_eq!(r.answer.as_matches(), Some(&vf2), "iso pattern {i}");
        if r.strategy == StrategyKind::Bounded {
            bounded_runs += 1;
        }

        let gsim = simulation_match(&q, engine.graph());
        let r = engine
            .execute(
                &QueryRequest::build(q)
                    .semantics(Semantics::Simulation)
                    .finish(),
            )
            .unwrap();
        assert_eq!(r.answer.as_simulation(), Some(&gsim), "sim pattern {i}");
    }
    // The discovered schema has global constraints per label, so the
    // isomorphism side must run bounded throughout.
    assert_eq!(bounded_runs, 10);
    assert_eq!(engine.stats().queries, 20);
}

/// Satellite of the sharding work: the engine's scratch pool is worker-aware
/// and two concurrent bounded executions can never alias an arena. Every
/// dedicated slot is held hostage by a worker thread for the whole duration
/// of four concurrent bounded executions — `with_any` must hand each
/// execution a distinct overflow arena (never block behind a busy slot,
/// never share one), and every answer must equal the serial run.
#[test]
fn concurrent_bounded_executions_never_alias_an_arena() {
    let engine = engine();
    let q = movie_pattern(engine.graph(), 2011);
    let serial = engine
        .execute(&QueryRequest::build(q.clone()).finish())
        .unwrap();
    assert_eq!(serial.strategy, StrategyKind::Bounded);
    assert!(!serial.answer.is_empty());

    let pool = engine.arena_pool();
    let workers = pool.workers();
    let queries = 4;
    let barrier = std::sync::Barrier::new(workers + queries);
    std::thread::scope(|s| {
        for w in 0..workers {
            let barrier = &barrier;
            s.spawn(move || {
                pool.with_worker(w, |_| {
                    // Hold the slot across both barriers: busy for the
                    // entire window in which the queries execute.
                    barrier.wait();
                    barrier.wait();
                });
            });
        }
        for _ in 0..queries {
            let (engine, q, serial, barrier) = (&engine, &q, &serial, &barrier);
            s.spawn(move || {
                barrier.wait();
                let r = engine
                    .execute(&QueryRequest::build(q.clone()).finish())
                    .unwrap();
                assert_eq!(r.strategy, StrategyKind::Bounded);
                assert_eq!(r.answer, serial.answer);
                barrier.wait();
            });
        }
    });
}
