//! Error types for the graph substrate.

use std::fmt;

/// Errors produced while constructing, mutating or (de)serializing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced by an operation does not exist in the graph.
    NodeNotFound(u64),
    /// An edge endpoint referenced by an operation does not exist.
    EndpointNotFound {
        /// Source node id of the offending edge.
        src: u64,
        /// Destination node id of the offending edge.
        dst: u64,
    },
    /// A label id is not registered in the interner associated with a graph.
    UnknownLabel(u32),
    /// A label name was not found in the interner.
    UnknownLabelName(String),
    /// An edge was inserted twice and the container forbids parallel edges.
    DuplicateEdge {
        /// Source node id.
        src: u64,
        /// Destination node id.
        dst: u64,
    },
    /// A node id was inserted twice.
    DuplicateNode(u64),
    /// Failure while parsing the text interchange format.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// Failure performing I/O while loading or storing a graph.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(id) => write!(f, "node {id} not found"),
            GraphError::EndpointNotFound { src, dst } => {
                write!(f, "edge ({src}, {dst}) references a missing endpoint")
            }
            GraphError::UnknownLabel(id) => write!(f, "label id {id} is not interned"),
            GraphError::UnknownLabelName(name) => write!(f, "label name {name:?} is not interned"),
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "edge ({src}, {dst}) already exists")
            }
            GraphError::DuplicateNode(id) => write!(f, "node {id} already exists"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(message) => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::NodeNotFound(7), "node 7 not found"),
            (
                GraphError::EndpointNotFound { src: 1, dst: 2 },
                "edge (1, 2) references a missing endpoint",
            ),
            (GraphError::UnknownLabel(3), "label id 3 is not interned"),
            (
                GraphError::UnknownLabelName("movie".into()),
                "label name \"movie\" is not interned",
            ),
            (
                GraphError::DuplicateEdge { src: 4, dst: 5 },
                "edge (4, 5) already exists",
            ),
            (GraphError::DuplicateNode(9), "node 9 already exists"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let err: GraphError = io.into();
        assert!(matches!(err, GraphError::Io(_)));
        assert!(err.to_string().contains("missing file"));
    }

    #[test]
    fn parse_error_mentions_line() {
        let err = GraphError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert_eq!(err.to_string(), "parse error at line 12: bad token");
    }
}
