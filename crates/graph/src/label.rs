//! Interned node labels.
//!
//! The paper assumes a finite alphabet `Σ` of labels such as `movie`,
//! `actor`, `award` or `year`. Access constraints, pattern nodes and data
//! nodes all refer to labels, so the whole workspace benefits from comparing
//! labels as small integers rather than strings. [`LabelInterner`] owns the
//! mapping between label names and [`Label`] ids; every [`crate::Graph`]
//! carries one.

use std::collections::HashMap;
use std::fmt;

/// A compact, interned label identifier.
///
/// `Label` is `Copy` and ordered so that sets of labels (the `S` of an access
/// constraint `S → (l, N)`) can be kept sorted and compared cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Label(pub u32);

impl Label {
    /// Returns the raw index of this label.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<u32> for Label {
    fn from(v: u32) -> Self {
        Label(v)
    }
}

/// Bidirectional mapping between label names and [`Label`] ids.
///
/// Interners are append-only: once a name is registered its id never changes,
/// which lets graphs, schemas and patterns built against the same interner be
/// compared and combined safely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelInterner {
    names: Vec<String>,
    by_name: HashMap<String, Label>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its existing id if already present.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&label) = self.by_name.get(name) {
            return label;
        }
        let label = Label(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), label);
        label
    }

    /// Interns every name in `names`, returning the ids in order.
    pub fn intern_all<'a, I>(&mut self, names: I) -> Vec<Label>
    where
        I: IntoIterator<Item = &'a str>,
    {
        names.into_iter().map(|n| self.intern(n)).collect()
    }

    /// Looks up a previously interned name.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `label`, if it has been interned.
    pub fn name(&self, label: Label) -> Option<&str> {
        self.names.get(label.index()).map(String::as_str)
    }

    /// Returns the name of `label`, or a synthesized placeholder when unknown.
    pub fn name_or_placeholder(&self, label: Label) -> String {
        self.name(label)
            .map(str::to_string)
            .unwrap_or_else(|| format!("<{label}>"))
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Label, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u32), n.as_str()))
    }

    /// Returns all label ids in id order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.names.len() as u32).map(Label)
    }

    /// True when `label` belongs to this interner.
    pub fn contains(&self, label: Label) -> bool {
        label.index() < self.names.len()
    }

    /// Rebuilds an interner from a name list in id order, as persisted in a
    /// snapshot's string table. Fails with the offending name when the list
    /// contains a duplicate (ids would no longer be bijective).
    pub(crate) fn from_names(names: Vec<String>) -> Result<Self, String> {
        let mut by_name = HashMap::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            if by_name.insert(name.clone(), Label(i as u32)).is_some() {
                return Err(name.clone());
            }
        }
        Ok(LabelInterner { names, by_name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("movie");
        let b = interner.intern("actor");
        let a2 = interner.intern("movie");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn lookup_by_name_and_id() {
        let mut interner = LabelInterner::new();
        let movie = interner.intern("movie");
        assert_eq!(interner.get("movie"), Some(movie));
        assert_eq!(interner.get("award"), None);
        assert_eq!(interner.name(movie), Some("movie"));
        assert_eq!(interner.name(Label(99)), None);
        assert_eq!(interner.name_or_placeholder(Label(99)), "<L99>");
    }

    #[test]
    fn intern_all_preserves_order() {
        let mut interner = LabelInterner::new();
        let labels = interner.intern_all(["a", "b", "c", "b"]);
        assert_eq!(labels.len(), 4);
        assert_eq!(labels[1], labels[3]);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn iteration_matches_contents() {
        let mut interner = LabelInterner::new();
        interner.intern_all(["x", "y"]);
        let pairs: Vec<_> = interner.iter().map(|(l, n)| (l.0, n.to_string())).collect();
        assert_eq!(pairs, vec![(0, "x".to_string()), (1, "y".to_string())]);
        assert!(interner.contains(Label(1)));
        assert!(!interner.contains(Label(2)));
    }

    #[test]
    fn labels_are_ordered_by_id() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        assert!(a < b);
        let collected: Vec<_> = interner.labels().collect();
        assert_eq!(collected, vec![a, b]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Label(5).to_string(), "L5");
        assert_eq!(Label::from(3u32), Label(3));
        assert_eq!(Label(7).index(), 7);
    }
}
