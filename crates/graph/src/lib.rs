//! # bgpq-graph
//!
//! Data-graph substrate for the `bgpq` workspace, a reproduction of
//! *"Making Pattern Queries Bounded in Big Graphs"* (Cao, Fan, Huai, Huang,
//! ICDE 2015).
//!
//! The paper models a data graph as a node-labeled directed graph
//! `G = (V, E, f, ν)` where every node `v` carries a label `f(v)` drawn from
//! a finite alphabet `Σ` and an attribute value `ν(v)` interpreted under that
//! label (e.g. `year = 2011`). This crate provides:
//!
//! * [`Label`] / [`LabelInterner`] — interned labels so that the rest of the
//!   workspace works with cheap `u32` identifiers instead of strings;
//! * [`Value`] — attribute values with a total order, used by pattern
//!   predicates;
//! * [`Graph`] and [`GraphBuilder`] — the graph storage with out/in adjacency
//!   lists, per-label node indexes and neighbor/common-neighbor queries;
//! * [`Subgraph`] — the representation of the bounded fragment `G_Q` that a
//!   query plan fetches from `G`;
//! * [`view`] — zero-copy fragment execution: the [`GraphAccess`] trait the
//!   matchers are generic over, and [`FragmentView`], a borrow of `G` plus a
//!   fragment's node set that the bounded executors match on directly
//!   (adjacency built once into a reusable [`ScratchArena`]);
//! * [`stats`] — degree / label-frequency statistics used when discovering
//!   access constraints;
//! * [`io`] — dataset ingestion: a plain-text interchange format, plain
//!   edge lists (SNAP-style) and a JSON-lines node+edge format, all with
//!   line-numbered diagnostics — plus [`io::snapshot`], a versioned binary
//!   container whose sections bulk-load into the in-memory representation
//!   (checksummed, with typed section-named errors).
//!
//! Everything here is deliberately free of any pattern-matching or
//! access-constraint logic: those live in `bgpq-pattern`, `bgpq-access`,
//! `bgpq-matching` and `bgpq-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod error;
pub mod graph;
pub mod io;
pub mod label;
pub mod label_index;
pub mod pool;
pub mod stats;
pub mod subgraph;
pub mod value;
pub mod view;

pub use bitset::NodeBitSet;
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeId, Graph, NodeId};
pub use io::snapshot::SnapshotError;
pub use label::{Label, LabelInterner};
pub use label_index::LabelIndex;
pub use pool::ArenaPool;
pub use stats::GraphStats;
pub use subgraph::Subgraph;
pub use value::Value;
pub use view::{FragmentView, GraphAccess, ScratchArena};

/// Convenient `Result` alias used across the graph substrate.
pub type Result<T> = std::result::Result<T, GraphError>;
