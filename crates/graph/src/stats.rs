//! Graph statistics used to discover access constraints.
//!
//! Section II of the paper suggests four ways of finding access constraints
//! in real data: degree bounds, global label counts, functional dependencies
//! and aggregate queries. All of them reduce to simple statistics over the
//! graph which [`GraphStats`] collects in one pass:
//!
//! * how many nodes carry each label (type-1 constraints `∅ → (l, N)`);
//! * for each ordered label pair `(l, l')`, the maximum number of
//!   `l'`-labeled neighbors any `l`-labeled node has (type-2 constraints
//!   `l → (l', N)`, and `N = 1` corresponds to an FD);
//! * degree distribution summaries used for reporting.

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use std::collections::HashMap;

/// Aggregate statistics of a data graph.
#[derive(Debug, Clone)]
pub struct GraphStats {
    /// Number of nodes per label.
    pub label_counts: HashMap<Label, usize>,
    /// `fanout[(l, l')]` = max over `l`-labeled nodes of the number of
    /// neighbors (either direction) labeled `l'`.
    pub max_label_fanout: HashMap<(Label, Label), usize>,
    /// Maximum undirected degree over all nodes.
    pub max_degree: usize,
    /// Average undirected degree over all nodes.
    pub avg_degree: f64,
    /// Number of nodes.
    pub node_count: usize,
    /// Number of edges.
    pub edge_count: usize,
}

impl GraphStats {
    /// Computes statistics for `graph` in `O(|V| + Σ_v deg(v)·1)` plus the
    /// per-node label-grouping cost.
    pub fn compute(graph: &Graph) -> Self {
        let mut label_counts: HashMap<Label, usize> = HashMap::new();
        let mut max_label_fanout: HashMap<(Label, Label), usize> = HashMap::new();
        let mut max_degree = 0usize;
        let mut total_degree = 0usize;

        let mut per_label: HashMap<Label, usize> = HashMap::new();
        for v in graph.nodes().filter(|&v| graph.is_live(v)) {
            let lv = graph.label(v);
            *label_counts.entry(lv).or_insert(0) += 1;

            let neighbors = graph.neighbors(v);
            max_degree = max_degree.max(neighbors.len());
            total_degree += neighbors.len();

            per_label.clear();
            for &n in &neighbors {
                *per_label.entry(graph.label(n)).or_insert(0) += 1;
            }
            for (&ln, &count) in &per_label {
                let entry = max_label_fanout.entry((lv, ln)).or_insert(0);
                *entry = (*entry).max(count);
            }
        }

        // Statistics describe the live graph: deleted slots carry no label
        // or edges and must not dilute counts or averages.
        let node_count = graph.live_node_count();
        GraphStats {
            label_counts,
            max_label_fanout,
            max_degree,
            avg_degree: if node_count == 0 {
                0.0
            } else {
                total_degree as f64 / node_count as f64
            },
            node_count,
            edge_count: graph.edge_count(),
        }
    }

    /// Number of nodes labeled `l` (0 when the label is unused).
    pub fn label_count(&self, l: Label) -> usize {
        self.label_counts.get(&l).copied().unwrap_or(0)
    }

    /// Maximum number of `l2`-labeled neighbors of any `l1`-labeled node.
    pub fn fanout(&self, l1: Label, l2: Label) -> usize {
        self.max_label_fanout.get(&(l1, l2)).copied().unwrap_or(0)
    }

    /// Labels sorted by increasing frequency (rarest first); useful when
    /// choosing which global constraints are worth indexing.
    pub fn labels_by_frequency(&self) -> Vec<(Label, usize)> {
        let mut v: Vec<(Label, usize)> = self.label_counts.iter().map(|(&l, &c)| (l, c)).collect();
        v.sort_by_key(|&(l, c)| (c, l));
        v
    }

    /// The undirected degree of a specific node, recomputed from the graph.
    pub fn degree_of(graph: &Graph, v: NodeId) -> usize {
        graph.degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::value::Value;

    fn star_graph(center_label: &str, leaf_label: &str, leaves: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let c = b.add_node(center_label, Value::Null);
        for _ in 0..leaves {
            let leaf = b.add_node(leaf_label, Value::Null);
            b.add_edge(c, leaf).unwrap();
        }
        b.build()
    }

    #[test]
    fn label_counts_are_exact() {
        let g = star_graph("movie", "actor", 5);
        let stats = GraphStats::compute(&g);
        let movie = g.interner().get("movie").unwrap();
        let actor = g.interner().get("actor").unwrap();
        assert_eq!(stats.label_count(movie), 1);
        assert_eq!(stats.label_count(actor), 5);
        assert_eq!(stats.node_count, 6);
        assert_eq!(stats.edge_count, 5);
    }

    #[test]
    fn fanout_captures_max_neighbor_count_per_label_pair() {
        let g = star_graph("movie", "actor", 4);
        let stats = GraphStats::compute(&g);
        let movie = g.interner().get("movie").unwrap();
        let actor = g.interner().get("actor").unwrap();
        // The movie sees 4 actors; each actor sees 1 movie.
        assert_eq!(stats.fanout(movie, actor), 4);
        assert_eq!(stats.fanout(actor, movie), 1);
        // Unrelated pairs default to 0.
        assert_eq!(stats.fanout(actor, actor), 0);
    }

    #[test]
    fn degree_summaries() {
        let g = star_graph("c", "l", 3);
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.max_degree, 3);
        // degrees: center 3, three leaves 1 → avg 6/4
        assert!((stats.avg_degree - 1.5).abs() < 1e-9);
        assert_eq!(GraphStats::degree_of(&g, NodeId(0)), 3);
    }

    #[test]
    fn labels_by_frequency_sorts_rarest_first() {
        let g = star_graph("hub", "leaf", 7);
        let stats = GraphStats::compute(&g);
        let order = stats.labels_by_frequency();
        assert_eq!(order.len(), 2);
        assert_eq!(order[0].1, 1);
        assert_eq!(order[1].1, 7);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::empty();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.node_count, 0);
        assert_eq!(stats.max_degree, 0);
        assert_eq!(stats.avg_degree, 0.0);
        assert!(stats.labels_by_frequency().is_empty());
    }
}
