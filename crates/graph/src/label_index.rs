//! Label → node index.
//!
//! Access constraints of type (1) (`∅ → (l, N)`) bound the number of nodes of
//! the whole graph that carry label `l`, and query plans start by fetching
//! exactly those nodes. [`LabelIndex`] provides that lookup in O(1) plus the
//! size of the answer.

use crate::graph::NodeId;
use crate::label::Label;

/// Maps each label to the sorted list of node ids carrying it.
#[derive(Debug, Clone, Default)]
pub struct LabelIndex {
    /// `buckets[label.index()]` is the sorted list of nodes with that label.
    buckets: Vec<Vec<NodeId>>,
}

impl LabelIndex {
    /// Builds an index from a per-node label assignment.
    pub fn build(labels: &[Label]) -> Self {
        let max = labels.iter().map(|l| l.index() + 1).max().unwrap_or(0);
        let mut buckets = vec![Vec::new(); max];
        for (i, label) in labels.iter().enumerate() {
            buckets[label.index()].push(NodeId(i as u32));
        }
        // Node ids are pushed in increasing order, so each bucket is sorted.
        LabelIndex { buckets }
    }

    /// All nodes carrying `label` (empty slice when the label is unused).
    pub fn nodes(&self, label: Label) -> &[NodeId] {
        self.buckets
            .get(label.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of nodes carrying `label`.
    pub fn count(&self, label: Label) -> usize {
        self.nodes(label).len()
    }

    /// Number of labels that appear on at least one node.
    pub fn distinct_labels(&self) -> usize {
        self.buckets.iter().filter(|b| !b.is_empty()).count()
    }

    /// Iterates over `(label, nodes)` pairs for labels with at least one node.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &[NodeId])> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, b)| (Label(i as u32), b.as_slice()))
    }

    /// The most frequent label and its frequency, if any node exists.
    pub fn max_frequency(&self) -> Option<(Label, usize)> {
        self.iter()
            .map(|(l, nodes)| (l, nodes.len()))
            .max_by_key(|&(_, n)| n)
    }

    /// Registers `node` under `label`, keeping the bucket sorted. A no-op
    /// when the node is already present. Used by graph mutation to keep the
    /// index in sync with label assignments.
    pub fn insert(&mut self, label: Label, node: NodeId) {
        if label.index() >= self.buckets.len() {
            self.buckets.resize_with(label.index() + 1, Vec::new);
        }
        let bucket = &mut self.buckets[label.index()];
        if let Err(pos) = bucket.binary_search(&node) {
            bucket.insert(pos, node);
        }
    }

    /// The raw bucket table, indexed by label id — the snapshot writer
    /// serializes it verbatim as a CSR section.
    pub(crate) fn buckets(&self) -> &[Vec<NodeId>] {
        &self.buckets
    }

    /// Reassembles an index from a validated bucket table (snapshot load).
    /// The caller guarantees each bucket is sorted, deduplicated and lists
    /// exactly the nodes carrying its label.
    pub(crate) fn from_buckets(buckets: Vec<Vec<NodeId>>) -> Self {
        LabelIndex { buckets }
    }

    /// Removes `node` from `label`'s bucket. Returns whether it was present.
    pub fn remove(&mut self, label: Label, node: NodeId) -> bool {
        let Some(bucket) = self.buckets.get_mut(label.index()) else {
            return false;
        };
        match bucket.binary_search(&node) {
            Ok(pos) => {
                bucket.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_groups_nodes_by_label() {
        let labels = vec![Label(0), Label(1), Label(0), Label(2), Label(1)];
        let idx = LabelIndex::build(&labels);
        assert_eq!(idx.nodes(Label(0)), &[NodeId(0), NodeId(2)]);
        assert_eq!(idx.nodes(Label(1)), &[NodeId(1), NodeId(4)]);
        assert_eq!(idx.nodes(Label(2)), &[NodeId(3)]);
        assert_eq!(idx.count(Label(0)), 2);
        assert_eq!(idx.distinct_labels(), 3);
    }

    #[test]
    fn unknown_labels_are_empty() {
        let idx = LabelIndex::build(&[Label(0)]);
        assert!(idx.nodes(Label(5)).is_empty());
        assert_eq!(idx.count(Label(5)), 0);
    }

    #[test]
    fn empty_index() {
        let idx = LabelIndex::build(&[]);
        assert_eq!(idx.distinct_labels(), 0);
        assert_eq!(idx.max_frequency(), None);
        assert_eq!(idx.iter().count(), 0);
    }

    #[test]
    fn iter_skips_unused_labels() {
        // Label 1 never appears even though label 2 does.
        let labels = vec![Label(0), Label(2)];
        let idx = LabelIndex::build(&labels);
        let seen: Vec<u32> = idx.iter().map(|(l, _)| l.0).collect();
        assert_eq!(seen, vec![0, 2]);
    }

    #[test]
    fn insert_keeps_buckets_sorted_and_deduplicated() {
        let mut idx = LabelIndex::build(&[Label(0), Label(0)]);
        idx.insert(Label(0), NodeId(5));
        idx.insert(Label(0), NodeId(3));
        idx.insert(Label(0), NodeId(3));
        assert_eq!(
            idx.nodes(Label(0)),
            &[NodeId(0), NodeId(1), NodeId(3), NodeId(5)]
        );
        // Inserting under an unseen label grows the bucket table.
        idx.insert(Label(4), NodeId(9));
        assert_eq!(idx.nodes(Label(4)), &[NodeId(9)]);
        assert_eq!(idx.distinct_labels(), 2);
    }

    #[test]
    fn remove_reports_presence() {
        let mut idx = LabelIndex::build(&[Label(0), Label(1), Label(0)]);
        assert!(idx.remove(Label(0), NodeId(0)));
        assert!(!idx.remove(Label(0), NodeId(0)));
        assert!(!idx.remove(Label(7), NodeId(0)));
        assert_eq!(idx.nodes(Label(0)), &[NodeId(2)]);
    }

    #[test]
    fn max_frequency_finds_dominant_label() {
        let labels = vec![Label(0), Label(1), Label(1), Label(1), Label(2)];
        let idx = LabelIndex::build(&labels);
        assert_eq!(idx.max_frequency(), Some((Label(1), 3)));
    }
}
