//! Dense bitmap membership sets over node ids.
//!
//! The intersection- and dedup-heavy paths of the workspace — common-neighbor
//! intersection during index builds, candidate-set union/dedup during bounded
//! fetch and seeding — historically worked on sorted `Vec<NodeId>`s with
//! `binary_search`-based membership. [`NodeBitSet`] replaces those membership
//! probes with one-word bit tests (the same trick the membership bitset
//! inside [`crate::ScratchArena`] already plays for fragment views): a
//! `Vec<u64>` indexed by `node_id / 64`, giving `O(1)` insert/contains and a
//! word-parallel intersection.
//!
//! The set is *dense*: capacity is the number of node-id slots of the graph
//! it describes, so it is cheap for the repeated probes of a hot loop and
//! deliberately not a general sparse-set container. Callers that only touch
//! a handful of tiny sets should keep the sorted-vec path — see
//! [`Graph::common_neighbors`](crate::Graph::common_neighbors), which
//! switches representation adaptively and is benchmarked against the legacy
//! intersection in the engine's bench harness.

use crate::graph::NodeId;

/// A fixed-capacity bitmap set of node ids.
///
/// ```
/// use bgpq_graph::{bitset::NodeBitSet, NodeId};
///
/// let mut set = NodeBitSet::with_capacity(100);
/// set.insert(NodeId(3));
/// set.insert(NodeId(64));
/// assert!(set.contains(NodeId(3)));
/// assert!(!set.contains(NodeId(4)));
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![NodeId(3), NodeId(64)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeBitSet {
    words: Vec<u64>,
    /// Number of set bits, maintained incrementally so `len` is `O(1)`.
    len: usize,
}

impl NodeBitSet {
    /// An empty set able to hold node ids `0..capacity` without resizing.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeBitSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Builds the set from any iterator of node ids (duplicates are fine).
    /// Capacity grows to the largest id seen.
    pub fn from_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut set = NodeBitSet::default();
        for v in nodes {
            set.insert(v);
        }
        set
    }

    /// Number of node ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds no ids.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of node-id slots the set can hold without growing.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Adds `v`, growing capacity if needed. Returns true when `v` was new.
    pub fn insert(&mut self, v: NodeId) -> bool {
        let (word, bit) = (v.index() / 64, v.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let was_absent = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += was_absent as usize;
        was_absent
    }

    /// Removes `v`. Returns true when `v` was present.
    pub fn remove(&mut self, v: NodeId) -> bool {
        let (word, bit) = (v.index() / 64, v.index() % 64);
        match self.words.get_mut(word) {
            Some(w) => {
                let mask = 1u64 << bit;
                let was_present = *w & mask != 0;
                *w &= !mask;
                self.len -= was_present as usize;
                was_present
            }
            None => false,
        }
    }

    /// True when `v` is in the set. Ids beyond capacity are simply absent.
    pub fn contains(&self, v: NodeId) -> bool {
        self.words
            .get(v.index() / 64)
            .is_some_and(|w| w & (1u64 << (v.index() % 64)) != 0)
    }

    /// Empties the set, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Intersects in place: `self ∩= other`, word-parallel.
    pub fn intersect_with(&mut self, other: &NodeBitSet) {
        let keep = self.words.len().min(other.words.len());
        for (w, o) in self.words[..keep].iter_mut().zip(&other.words[..keep]) {
            *w &= o;
        }
        self.words[keep..].fill(0);
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Iterates the set's node ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            let base = (i * 64) as u32;
            BitIter { word, base }
        })
    }

    /// The set's contents as a sorted `Vec` — the interchange format the
    /// sorted-vec paths of the workspace expect.
    pub fn to_sorted_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl FromIterator<NodeId> for NodeBitSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        NodeBitSet::from_nodes(iter)
    }
}

/// Iterator over the set bits of one word.
struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(NodeId(self.base + bit))
    }
}

/// Deduplicates `nodes` in place (first occurrence wins, relative order
/// kept) using one bitmap membership pass — no sort required. The returned
/// count is the number of duplicates dropped.
///
/// This is the seed-path replacement for `sort_unstable(); dedup()` when the
/// caller wants to keep collecting into the same buffer: the bitmap probe is
/// `O(1)` per element where the sorted-vec dedup paid `O(log n)` per
/// membership decision (and a full sort first).
pub fn dedup_with_bitset(nodes: &mut Vec<NodeId>, scratch: &mut NodeBitSet) -> usize {
    scratch.clear();
    let before = nodes.len();
    nodes.retain(|&v| scratch.insert(v));
    before - nodes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = NodeBitSet::with_capacity(10);
        assert!(s.is_empty());
        assert!(s.insert(NodeId(7)));
        assert!(!s.insert(NodeId(7)), "double insert reports not-new");
        assert!(s.contains(NodeId(7)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(NodeId(7)));
        assert!(!s.remove(NodeId(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut s = NodeBitSet::with_capacity(1);
        s.insert(NodeId(1000));
        assert!(s.contains(NodeId(1000)));
        assert!(!s.contains(NodeId(999)));
        assert!(s.capacity() >= 1001);
    }

    #[test]
    fn out_of_range_queries_are_absent() {
        let s = NodeBitSet::with_capacity(64);
        assert!(!s.contains(NodeId(u32::MAX)));
        let mut s = s;
        assert!(!s.remove(NodeId(500)));
    }

    #[test]
    fn iteration_is_sorted_across_words() {
        let ids = [900, 3, 64, 65, 0, 127, 128];
        let s: NodeBitSet = ids.iter().map(|&i| NodeId(i)).collect();
        let mut expect: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        expect.sort_unstable();
        assert_eq!(s.to_sorted_vec(), expect);
        assert_eq!(s.len(), expect.len());
    }

    #[test]
    fn intersection_matches_sorted_vec_semantics() {
        let a: NodeBitSet = [1, 5, 64, 200].iter().map(|&i| NodeId(i)).collect();
        let b: NodeBitSet = [5, 64, 300].iter().map(|&i| NodeId(i)).collect();
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_sorted_vec(), vec![NodeId(5), NodeId(64)]);
        // Asymmetric capacities: the shorter side wins past its end.
        let mut j = b.clone();
        j.intersect_with(&a);
        assert_eq!(j.to_sorted_vec(), vec![NodeId(5), NodeId(64)]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = NodeBitSet::with_capacity(256);
        let cap = s.capacity();
        s.insert(NodeId(200));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(NodeId(200)));
        assert_eq!(s.capacity(), cap);
    }

    #[test]
    fn dedup_keeps_first_occurrence_order() {
        let mut v: Vec<NodeId> = [5, 1, 5, 3, 1, 9].iter().map(|&i| NodeId(i)).collect();
        let mut scratch = NodeBitSet::default();
        let dropped = dedup_with_bitset(&mut v, &mut scratch);
        assert_eq!(dropped, 2);
        assert_eq!(v, vec![NodeId(5), NodeId(1), NodeId(3), NodeId(9)]);
        // The scratch is reusable: a second call starts clean.
        let mut w = vec![NodeId(1), NodeId(1)];
        assert_eq!(dedup_with_bitset(&mut w, &mut scratch), 1);
    }
}
