//! Dataset ingestion and interchange formats for data graphs.
//!
//! Three line-oriented formats are supported, all dependency-free and all
//! reporting malformed input with 1-based line numbers
//! ([`GraphError::Parse`]), so that externally prepared datasets (or
//! scaled-down extracts of the paper's IMDb / DBpedia / WebBase graphs) can
//! be ingested directly:
//!
//! * **text / TSV** (this module): typed records, whitespace- or
//!   tab-separated —
//!   ```text
//!   # comment
//!   n <id> <label> [value]        # value is int, float, "string" or omitted
//!   e <src-id> <dst-id>
//!   ```
//! * **edge list** ([`edge_list`]): plain `src dst` pairs (the shape of SNAP
//!   and WebGraph dumps); nodes are declared implicitly and share one label;
//! * **JSON lines** ([`jsonl`]): one JSON object per line,
//!   `{"type":"node","id":…,"label":…,"value":…}` /
//!   `{"type":"edge","src":…,"dst":…}`, parsed by a built-in minimal JSON
//!   reader ([`json`]).
//!
//! Node ids in a file are arbitrary `u64`s (JSON lines: up to `i64::MAX`,
//! a limit of JSON's number type); they are remapped to contiguous
//! [`NodeId`]s on load (in declaration order) and written back as the
//! contiguous ids on save.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

pub mod edge_list;
pub mod json;
pub mod jsonl;
pub mod snapshot;

pub use edge_list::{
    load_edge_list, read_edge_list, save_edge_list, write_edge_list, DEFAULT_EDGE_LIST_LABEL,
};
pub use jsonl::{load_jsonl, read_jsonl, save_jsonl, write_jsonl};
pub use snapshot::{
    is_snapshot_bytes, load_graph_snapshot, read_graph_snapshot, save_graph_snapshot,
    sniff_snapshot, write_graph_snapshot, SnapshotError,
};

/// Parses a graph from the text format.
pub fn read_graph<R: BufRead>(reader: R) -> Result<Graph> {
    let mut builder = GraphBuilder::new();
    let mut id_map: HashMap<u64, NodeId> = HashMap::new();
    let mut pending_edges: Vec<(u64, u64, usize)> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line_num = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (kind, rest) = split_token(trimmed);
        match kind {
            "n" => {
                // The value is everything after the label token, taken
                // verbatim (not re-tokenized) so quoted strings keep their
                // inner whitespace.
                let (id_tok, rest) = split_token(rest);
                let id = parse_u64(id_tok, line_num, "node id")?;
                if rest.is_empty() {
                    return Err(GraphError::Parse {
                        line: line_num,
                        message: "missing node label".into(),
                    });
                }
                // An explicitly quoted empty label (`""`) is legal; only an
                // absent token is an error (checked above).
                let (label, value_part) = split_label(rest).ok_or_else(|| GraphError::Parse {
                    line: line_num,
                    message: "unterminated quoted node label".into(),
                })?;
                let value = parse_value(value_part);
                if id_map.contains_key(&id) {
                    return Err(GraphError::DuplicateNode(id));
                }
                let node = builder.add_node(&label, value);
                id_map.insert(id, node);
            }
            "e" => {
                let (src_tok, rest) = split_token(rest);
                let (dst_tok, _) = split_token(rest);
                let src = parse_u64(src_tok, line_num, "edge source")?;
                let dst = parse_u64(dst_tok, line_num, "edge destination")?;
                pending_edges.push((src, dst, line_num));
            }
            other => {
                return Err(GraphError::Parse {
                    line: line_num,
                    message: format!("unknown record type {other:?}"),
                });
            }
        }
    }

    for (src, dst, line) in pending_edges {
        let (Some(&s), Some(&d)) = (id_map.get(&src), id_map.get(&dst)) else {
            return Err(GraphError::Parse {
                line,
                message: format!("edge ({src}, {dst}) references an undeclared node"),
            });
        };
        builder.add_edge(s, d)?;
    }
    Ok(builder.build())
}

/// Loads a graph from a file in the text format.
pub fn load_graph(path: impl AsRef<Path>) -> Result<Graph> {
    let file = std::fs::File::open(path)?;
    read_graph(std::io::BufReader::new(file))
}

/// Serializes a graph into the text format.
///
/// Deleted (tombstoned) node slots are skipped — they carry no label, value
/// or edges — so saving a mutated graph writes exactly its live content.
/// Because the format remaps ids on load anyway, a save/load round trip of
/// a mutated graph yields the same live graph with compacted, contiguous
/// ids.
pub fn write_graph<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# bgpq graph: {} nodes, {} edges",
        graph.live_node_count(),
        graph.edge_count()
    )?;
    for v in graph.nodes().filter(|&v| graph.is_live(v)) {
        let label = format_label(&graph.label_name(v));
        match format_value(graph.value(v)) {
            None => writeln!(w, "n {} {}", v.0, label)?,
            Some(token) => writeln!(w, "n {} {} {}", v.0, label, token)?,
        }
    }
    for e in graph.edges() {
        writeln!(w, "e {} {}", e.src.0, e.dst.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Saves a graph to a file in the text format.
pub fn save_graph(graph: &Graph, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_graph(graph, file)
}

/// Renders a value as a text-format token that the reader parses back to
/// the same value: `None` for [`Value::Null`] (the token is omitted), the
/// `{:?}`-quoted string for [`Value::Str`], and a numeral otherwise. Whole
/// floats keep a decimal point (`7.0`, not `7`) so they reload as floats.
pub fn format_value(value: &Value) -> Option<String> {
    match value {
        Value::Null => None,
        Value::Int(i) => Some(i.to_string()),
        Value::Float(x) if x.fract() == 0.0 && x.is_finite() => Some(format!("{x:.1}")),
        Value::Float(x) => Some(x.to_string()),
        Value::Bool(b) => Some(b.to_string()),
        Value::Str(s) => Some(format!("{s:?}")),
    }
}

/// Splits off the first whitespace-delimited token, returning it and the
/// rest of the line with leading whitespace removed.
fn split_token(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

/// Renders a label name for the text format: plain when it is a single
/// safe token, `{:?}`-quoted when it is empty, starts with a quote, or
/// contains whitespace.
fn format_label(name: &str) -> String {
    if name.is_empty() || name.starts_with('"') || name.chars().any(char::is_whitespace) {
        format!("{name:?}")
    } else {
        name.to_string()
    }
}

/// Splits off a label: either a quoted (escaped) string or a plain token.
/// Returns `None` for an unterminated quoted label.
fn split_label(s: &str) -> Option<(String, &str)> {
    let Some(inner) = s.strip_prefix('"') else {
        let (tok, rest) = split_token(s);
        return Some((tok.to_string(), rest));
    };
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Some((unescape(&inner[..i]), inner[i + 1..].trim_start())),
            _ => {}
        }
    }
    None
}

fn parse_u64(token: &str, line: usize, what: &str) -> Result<u64> {
    if token.is_empty() {
        return Err(GraphError::Parse {
            line,
            message: format!("missing {what}"),
        });
    }
    token.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what}"),
    })
}

fn parse_value(raw: &str) -> Value {
    let raw = raw.trim();
    if raw.is_empty() {
        return Value::Null;
    }
    if raw.starts_with('"') && raw.ends_with('"') && raw.len() >= 2 {
        return Value::Str(unescape(&raw[1..raw.len() - 1]));
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Value::Float(f);
    }
    if raw == "true" {
        return Value::Bool(true);
    }
    if raw == "false" {
        return Value::Bool(false);
    }
    Value::Str(raw.to_string())
}

/// Reverses the escaping the writer's `{:?}` formatting applies to strings
/// (`\"`, `\\`, `\n`, `\r`, `\t`, `\0`, `\'` and `\u{…}`).
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some('u') => {
                let mut hex = String::new();
                for h in chars.by_ref() {
                    match h {
                        '{' => {}
                        '}' => break,
                        _ => hex.push(h),
                    }
                }
                if let Some(ch) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(ch);
                }
            }
            Some(other) => out.push(other), // covers \" \\ \'
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn round_trip_through_text_format() {
        let mut b = GraphBuilder::new();
        let m = b.add_node("movie", Value::str("Argo"));
        let y = b.add_node("year", Value::Int(2012));
        let r = b.add_node("rating", Value::Float(7.7));
        let f = b.add_node("flag", Value::Bool(true));
        let n = b.add_node("misc", Value::Null);
        b.add_edge(y, m).unwrap();
        b.add_edge(m, r).unwrap();
        b.add_edge(m, f).unwrap();
        b.add_edge(m, n).unwrap();
        let g = b.build();

        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(std::io::Cursor::new(buf)).unwrap();

        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.value(m), &Value::str("Argo"));
        assert_eq!(g2.value(y), &Value::Int(2012));
        assert_eq!(g2.value(r), &Value::Float(7.7));
        assert_eq!(g2.value(f), &Value::Bool(true));
        assert_eq!(g2.value(n), &Value::Null);
        assert!(g2.has_edge(y, m));
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# header\n\n n 0 movie \"X\"\nn 1 actor\ne 0 1\n";
        let g = read_graph(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn non_contiguous_ids_are_remapped() {
        let text = "n 100 a\nn 7 b\ne 100 7\n";
        let g = read_graph(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.node_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn edge_before_node_declaration_is_allowed() {
        let text = "e 1 2\nn 1 a\nn 2 b\n";
        let g = read_graph(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let bad_type = "x 1 2\n";
        let err = read_graph(std::io::Cursor::new(bad_type)).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));

        let missing_label = "n 5\n";
        let err = read_graph(std::io::Cursor::new(missing_label)).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));

        let dup = "n 1 a\nn 1 b\n";
        let err = read_graph(std::io::Cursor::new(dup)).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateNode(1)));

        let dangling = "n 1 a\ne 1 9\n";
        let err = read_graph(std::io::Cursor::new(dangling)).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn whole_floats_round_trip_as_floats() {
        let mut b = GraphBuilder::new();
        b.add_node("rating", Value::Float(7.0));
        let g = b.build();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g2.value(NodeId(0)), &Value::Float(7.0));
        assert_eq!(format_value(&Value::Float(7.0)), Some("7.0".into()));
        assert_eq!(format_value(&Value::Null), None);
    }

    #[test]
    fn value_parsing_rules() {
        assert_eq!(parse_value(""), Value::Null);
        assert_eq!(parse_value("42"), Value::Int(42));
        assert_eq!(parse_value("-3"), Value::Int(-3));
        assert_eq!(parse_value("2.5"), Value::Float(2.5));
        assert_eq!(parse_value("true"), Value::Bool(true));
        assert_eq!(parse_value("\"hi there\""), Value::str("hi there"));
        assert_eq!(parse_value("bare"), Value::str("bare"));
    }

    #[test]
    fn file_round_trip() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", Value::Int(1));
        let c = b.add_node("b", Value::Int(2));
        b.add_edge(a, c).unwrap();
        let g = b.build();
        let dir = std::env::temp_dir().join("bgpq_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g2.node_count(), 2);
        assert_eq!(g2.edge_count(), 1);
        std::fs::remove_file(path).ok();
    }
}
