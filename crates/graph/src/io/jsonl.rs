//! JSON-lines dataset ingestion (one node or edge record per line).
//!
//! The format is the interchange shape most export pipelines can produce
//! with one `jq` invocation: every non-blank line is a single JSON object,
//! either
//!
//! ```text
//! {"type": "node", "id": 7, "label": "user", "value": "alice"}
//! {"type": "edge", "src": 7, "dst": 9}
//! ```
//!
//! `value` is optional (`null` or absent means [`Value::Null`]) and may be a
//! JSON number (integral numbers load as [`Value::Int`], others as
//! [`Value::Float`]), a string or a boolean. Unknown fields are rejected so
//! typos (`"val"`, `"lable"`) surface as parse errors instead of silently
//! dropped attributes. Edges may reference nodes declared later in the
//! file; ids are remapped to contiguous [`NodeId`]s in declaration order.
//!
//! Two JSON-inherited limits (the text format has neither): ids must fit in
//! `i64` (larger `u64`s would lose precision through JSON's number type),
//! and non-finite float values cannot be written — [`write_jsonl`] rejects
//! them instead of emitting an unparseable `NaN` token.

use super::json::{json_float_token, parse_json, write_json_string, Json};
use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parses a graph from the JSON-lines format.
///
/// # Examples
///
/// ```
/// use bgpq_graph::io::read_jsonl;
/// use bgpq_graph::{NodeId, Value};
///
/// let text = concat!(
///     "{\"type\":\"node\",\"id\":1,\"label\":\"movie\",\"value\":\"Argo\"}\n",
///     "{\"type\":\"node\",\"id\":2,\"label\":\"year\",\"value\":2012}\n",
///     "{\"type\":\"edge\",\"src\":2,\"dst\":1}\n",
/// );
/// let g = read_jsonl(std::io::Cursor::new(text)).unwrap();
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.value(NodeId(1)), &Value::Int(2012));
/// assert!(g.has_edge(NodeId(1), NodeId(0)));
/// ```
pub fn read_jsonl<R: BufRead>(reader: R) -> Result<Graph> {
    let mut builder = GraphBuilder::new();
    let mut id_map: HashMap<u64, NodeId> = HashMap::new();
    let mut pending_edges: Vec<(u64, u64, usize)> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line_num = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let record = parse_json(trimmed).map_err(|e| GraphError::Parse {
            line: line_num,
            message: e.to_string(),
        })?;
        let Json::Obj(ref fields) = record else {
            return Err(parse_error(
                line_num,
                format!("expected a JSON object, got {}", record.type_name()),
            ));
        };
        let kind = field_str(&record, "type", line_num)?;
        match kind {
            "node" => {
                check_known_fields(fields, &["type", "id", "label", "value"], line_num)?;
                let id = field_u64(&record, "id", line_num)?;
                let label = field_str(&record, "label", line_num)?;
                let value = match record.get("value") {
                    None | Some(Json::Null) => Value::Null,
                    Some(Json::Bool(b)) => Value::Bool(*b),
                    Some(Json::Int(i)) => Value::Int(*i),
                    Some(Json::Float(f)) => Value::Float(*f),
                    Some(Json::Str(s)) => Value::Str(s.clone()),
                    Some(other) => {
                        return Err(parse_error(
                            line_num,
                            format!("node \"value\" cannot be a JSON {}", other.type_name()),
                        ));
                    }
                };
                if id_map.contains_key(&id) {
                    return Err(GraphError::DuplicateNode(id));
                }
                let node = builder.add_node(label, value);
                id_map.insert(id, node);
            }
            "edge" => {
                check_known_fields(fields, &["type", "src", "dst"], line_num)?;
                let src = field_u64(&record, "src", line_num)?;
                let dst = field_u64(&record, "dst", line_num)?;
                pending_edges.push((src, dst, line_num));
            }
            other => {
                return Err(parse_error(
                    line_num,
                    format!("unknown record type {other:?} (expected \"node\" or \"edge\")"),
                ));
            }
        }
    }

    for (src, dst, line) in pending_edges {
        let (Some(&s), Some(&d)) = (id_map.get(&src), id_map.get(&dst)) else {
            return Err(parse_error(
                line,
                format!("edge ({src}, {dst}) references an undeclared node"),
            ));
        };
        builder.add_edge(s, d)?;
    }
    Ok(builder.build())
}

/// Loads a graph from a JSON-lines file.
pub fn load_jsonl(path: impl AsRef<Path>) -> Result<Graph> {
    let file = std::fs::File::open(path)?;
    read_jsonl(std::io::BufReader::new(file))
}

/// Serializes a graph into the JSON-lines format. Like
/// [`write_graph`](super::write_graph), tombstoned slots are skipped, so a
/// save/load round trip of a mutated graph yields the live content with
/// compacted ids.
pub fn write_jsonl<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    let mut line = String::new();
    for v in graph.nodes().filter(|&v| graph.is_live(v)) {
        line.clear();
        line.push_str("{\"type\":\"node\",\"id\":");
        line.push_str(&v.0.to_string());
        line.push_str(",\"label\":");
        write_json_string(&mut line, &graph.label_name(v));
        match graph.value(v) {
            Value::Null => {}
            Value::Bool(b) => {
                line.push_str(",\"value\":");
                line.push_str(if *b { "true" } else { "false" });
            }
            Value::Int(i) => {
                line.push_str(",\"value\":");
                line.push_str(&i.to_string());
            }
            Value::Float(x) => {
                let token = json_float_token(*x).ok_or_else(|| {
                    GraphError::Io(format!(
                        "node {} has the non-finite value {x}, which JSON cannot \
                         represent; use the text format for such graphs",
                        v.0
                    ))
                })?;
                line.push_str(",\"value\":");
                line.push_str(&token);
            }
            Value::Str(s) => {
                line.push_str(",\"value\":");
                write_json_string(&mut line, s);
            }
        }
        line.push('}');
        writeln!(w, "{line}")?;
    }
    for e in graph.edges() {
        writeln!(
            w,
            "{{\"type\":\"edge\",\"src\":{},\"dst\":{}}}",
            e.src.0, e.dst.0
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Saves a graph to a JSON-lines file.
pub fn save_jsonl(graph: &Graph, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_jsonl(graph, file)
}

fn parse_error(line: usize, message: String) -> GraphError {
    GraphError::Parse { line, message }
}

fn field_str<'a>(record: &'a Json, key: &str, line: usize) -> Result<&'a str> {
    let value = record
        .get(key)
        .ok_or_else(|| parse_error(line, format!("missing field {key:?}")))?;
    value.as_str().ok_or_else(|| {
        parse_error(
            line,
            format!("field {key:?} must be a string, got {}", value.type_name()),
        )
    })
}

fn field_u64(record: &Json, key: &str, line: usize) -> Result<u64> {
    let value = record
        .get(key)
        .ok_or_else(|| parse_error(line, format!("missing field {key:?}")))?;
    value.as_u64().ok_or_else(|| {
        parse_error(
            line,
            format!(
                "field {key:?} must be a non-negative integer, got {}",
                value.type_name()
            ),
        )
    })
}

fn check_known_fields(fields: &[(String, Json)], known: &[&str], line: usize) -> Result<()> {
    for (key, _) in fields {
        if !known.contains(&key.as_str()) {
            return Err(parse_error(
                line,
                format!("unknown field {key:?} (expected one of {known:?})"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with_all_value_types() -> Graph {
        let mut b = GraphBuilder::new();
        let m = b.add_node("movie", Value::str("Argo \"the\" film\n"));
        let y = b.add_node("year", Value::Int(2012));
        let r = b.add_node("rating", Value::Float(7.0));
        let f = b.add_node("flag", Value::Bool(true));
        let n = b.add_node("misc", Value::Null);
        b.add_edge(y, m).unwrap();
        b.add_edge(m, r).unwrap();
        b.add_edge(m, f).unwrap();
        b.add_edge(m, n).unwrap();
        b.build()
    }

    #[test]
    fn round_trip_preserves_labels_values_and_edges() {
        let g = graph_with_all_value_types();
        let mut buf = Vec::new();
        write_jsonl(&g, &mut buf).unwrap();
        let g2 = read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(g2.label_name(v), g.label_name(v));
            assert_eq!(g2.value(v), g.value(v));
        }
        // A whole float must reload as Float, not Int.
        assert_eq!(g2.value(NodeId(2)), &Value::Float(7.0));
    }

    #[test]
    fn edges_may_precede_nodes() {
        let text = concat!(
            "{\"type\":\"edge\",\"src\":1,\"dst\":2}\n",
            "{\"type\":\"node\",\"id\":1,\"label\":\"a\"}\n",
            "{\"type\":\"node\",\"id\":2,\"label\":\"b\"}\n",
        );
        let g = read_jsonl(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn diagnostics_carry_line_numbers() {
        let bad_json = "{\"type\":\"node\",\"id\":1,\"label\":\"a\"}\n{oops}\n";
        let err = read_jsonl(std::io::Cursor::new(bad_json)).unwrap_err();
        assert!(
            matches!(err, GraphError::Parse { line: 2, .. }),
            "got {err:?}"
        );

        let missing_label = "{\"type\":\"node\",\"id\":1}\n";
        let err = read_jsonl(std::io::Cursor::new(missing_label)).unwrap_err();
        assert!(
            matches!(err, GraphError::Parse { line: 1, ref message } if message.contains("label")),
            "got {err:?}"
        );

        let unknown_field = "{\"type\":\"node\",\"id\":1,\"lable\":\"a\"}\n";
        let err = read_jsonl(std::io::Cursor::new(unknown_field)).unwrap_err();
        assert!(
            matches!(err, GraphError::Parse { line: 1, ref message } if message.contains("lable")),
            "got {err:?}"
        );

        let bad_type = "\n\n{\"type\":\"hyperedge\",\"src\":1,\"dst\":2}\n";
        let err = read_jsonl(std::io::Cursor::new(bad_type)).unwrap_err();
        assert!(
            matches!(err, GraphError::Parse { line: 3, ref message } if message.contains("hyperedge")),
            "got {err:?}"
        );

        let dangling = concat!(
            "{\"type\":\"node\",\"id\":1,\"label\":\"a\"}\n",
            "{\"type\":\"edge\",\"src\":1,\"dst\":9}\n",
        );
        let err = read_jsonl(std::io::Cursor::new(dangling)).unwrap_err();
        assert!(
            matches!(err, GraphError::Parse { line: 2, .. }),
            "got {err:?}"
        );

        let not_an_object = "[1, 2]\n";
        let err = read_jsonl(std::io::Cursor::new(not_an_object)).unwrap_err();
        assert!(
            matches!(err, GraphError::Parse { line: 1, ref message } if message.contains("object")),
            "got {err:?}"
        );

        let dup = concat!(
            "{\"type\":\"node\",\"id\":5,\"label\":\"a\"}\n",
            "{\"type\":\"node\",\"id\":5,\"label\":\"b\"}\n",
        );
        let err = read_jsonl(std::io::Cursor::new(dup)).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateNode(5)), "got {err:?}");

        let bad_value = "{\"type\":\"node\",\"id\":1,\"label\":\"a\",\"value\":[1]}\n";
        let err = read_jsonl(std::io::Cursor::new(bad_value)).unwrap_err();
        assert!(
            matches!(err, GraphError::Parse { line: 1, ref message } if message.contains("array")),
            "got {err:?}"
        );
    }

    #[test]
    fn non_finite_floats_are_rejected_on_write() {
        let mut b = GraphBuilder::new();
        b.add_node("x", Value::Float(f64::NAN));
        let g = b.build();
        let err = write_jsonl(&g, &mut Vec::new()).unwrap_err();
        assert!(
            err.to_string().contains("non-finite"),
            "expected a clear rejection, got {err}"
        );
        let mut b = GraphBuilder::new();
        b.add_node("x", Value::Float(f64::INFINITY));
        let g = b.build();
        assert!(write_jsonl(&g, &mut Vec::new()).is_err());
    }

    #[test]
    fn non_contiguous_ids_are_remapped_in_declaration_order() {
        let text = concat!(
            "{\"type\":\"node\",\"id\":100,\"label\":\"a\"}\n",
            "{\"type\":\"node\",\"id\":7,\"label\":\"b\"}\n",
            "{\"type\":\"edge\",\"src\":100,\"dst\":7}\n",
        );
        let g = read_jsonl(std::io::Cursor::new(text)).unwrap();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bgpq_jsonl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.jsonl");
        let g = graph_with_all_value_types();
        save_jsonl(&g, &path).unwrap();
        let g2 = load_jsonl(&path).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        std::fs::remove_file(path).ok();
    }
}
