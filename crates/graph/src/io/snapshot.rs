//! The `.bgpq` binary snapshot container.
//!
//! The paper's premise is that preprocessing — interning, sorting, index
//! construction — is paid **once**, after which queries run against
//! ready-made structures. The text loaders in [`crate::io`] re-pay all of it
//! on every start: per-line parsing, id remapping, label re-interning and
//! adjacency re-sorting. This module defines a versioned binary container
//! whose on-disk layout mirrors the in-memory layout, so loading is a bulk
//! read plus validation, with no per-node parsing.
//!
//! # Container layout (format version 1, all integers little-endian)
//!
//! ```text
//! offset 0   magic     8 bytes   b"BGPQSNAP"
//!        8   version   u32       FORMAT_VERSION
//!       12   count     u32       number of sections
//!       16   table     count x 28 bytes: { id: u32, offset: u64,
//!                                          len: u64, checksum: u64 }
//!       ...  payloads  concatenated section bodies (absolute offsets)
//! ```
//!
//! Every section carries an FNV-1a 64 checksum of its payload, verified
//! before any decoding. Unknown section ids are tolerated (skipped), so the
//! container can grow new sections without a version bump; changing the
//! layout of an existing section requires one.
//!
//! ## Graph sections
//!
//! | section        | payload                                                  |
//! |----------------|----------------------------------------------------------|
//! | `Strings`      | label interner: count, then per name `len: u32` + UTF-8  |
//! | `Labels`       | node count, then one `u32` label id per slot (deleted    |
//! |                | slots carry `u32::MAX`, the tombstone sentinel)          |
//! | `Values`       | tag byte per node, a `u64` payload per node, string blob |
//! | `OutAdjacency` | CSR: `offsets: (n+1) x u64`, then targets `m x u32`      |
//! | `InAdjacency`  | same shape as `OutAdjacency`                             |
//! | `LabelIndex`   | CSR of per-label sorted node-id buckets                  |
//!
//! `Schema` and `Indices` sections are written and read by `bgpq-access`,
//! which layers access-schema and constraint-index serialization on top of
//! this container (the section ids are reserved here so one table names
//! every section).
//!
//! Decoding validates structural invariants — adjacency sorted strictly
//! increasing, ids in bounds, in == transpose(out), label-index buckets
//! consistent with the label assignment — and reports every failure as a
//! typed [`SnapshotError`] naming the offending [`Section`]. Tombstoned
//! slots are preserved exactly (unlike the text writer, which compacts
//! ids), so a mutated graph round-trips with stable node ids.

use crate::graph::{Graph, NodeId, TOMBSTONE};
use crate::label::{Label, LabelInterner};
use crate::label_index::LabelIndex;
use crate::value::Value;
use std::fmt;
use std::io::{Read, Write};
use std::ops::Range;
use std::path::Path;

/// The magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"BGPQSNAP";

/// The container format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Hard cap on the section count a reader accepts, so a corrupt header
/// cannot request a gigantic table allocation.
const MAX_SECTIONS: u32 = 4096;

/// Identifies one region of a snapshot file — a payload section or one of
/// the two fixed framing regions — in diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// The fixed magic + version + count header.
    Header,
    /// The section table following the header.
    SectionTable,
    /// The label interner's name list.
    Strings,
    /// Per-node label assignment (tombstones included).
    Labels,
    /// Per-node attribute values.
    Values,
    /// Out-adjacency in CSR form.
    OutAdjacency,
    /// In-adjacency in CSR form.
    InAdjacency,
    /// Label → sorted node-id buckets.
    LabelIndex,
    /// Serialized access schema (written by `bgpq-access`).
    Schema,
    /// Serialized access indices (written by `bgpq-access`).
    Indices,
    /// Partition spec + per-shard index blobs (written by `bgpq-shard`).
    /// Optional: readers without sharding support skip it.
    Shards,
    /// A section id this build does not know (skipped when reading).
    Unknown(u32),
}

impl Section {
    /// The on-disk id of a payload section. Framing regions have no id.
    pub fn id(self) -> u32 {
        match self {
            Section::Header | Section::SectionTable => 0,
            Section::Strings => 1,
            Section::Labels => 2,
            Section::Values => 3,
            Section::OutAdjacency => 4,
            Section::InAdjacency => 5,
            Section::LabelIndex => 6,
            Section::Schema => 7,
            Section::Indices => 8,
            Section::Shards => 9,
            Section::Unknown(id) => id,
        }
    }

    /// Maps an on-disk id back to a section.
    pub fn from_id(id: u32) -> Section {
        match id {
            1 => Section::Strings,
            2 => Section::Labels,
            3 => Section::Values,
            4 => Section::OutAdjacency,
            5 => Section::InAdjacency,
            6 => Section::LabelIndex,
            7 => Section::Schema,
            8 => Section::Indices,
            9 => Section::Shards,
            other => Section::Unknown(other),
        }
    }

    /// The section's name as used in diagnostics.
    pub fn name(self) -> String {
        match self {
            Section::Header => "header".into(),
            Section::SectionTable => "section table".into(),
            Section::Strings => "strings".into(),
            Section::Labels => "labels".into(),
            Section::Values => "values".into(),
            Section::OutAdjacency => "out-adjacency".into(),
            Section::InAdjacency => "in-adjacency".into(),
            Section::LabelIndex => "label-index".into(),
            Section::Schema => "schema".into(),
            Section::Indices => "indices".into(),
            Section::Shards => "shards".into(),
            Section::Unknown(id) => format!("unknown section #{id}"),
        }
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Errors loading or validating a snapshot. Every variant that concerns a
/// region of the file names the [`Section`] involved, so diagnostics point
/// at the corrupt part instead of a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// I/O failure reading or writing the container.
    Io(String),
    /// The file does not start with the snapshot magic bytes.
    NotASnapshot,
    /// The file is a snapshot, but of a format version this build does not
    /// read.
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
        /// The only version this build supports.
        supported: u32,
    },
    /// The file ends before the named section's recorded extent.
    Truncated {
        /// The first section whose bytes are (partially) missing.
        section: Section,
    },
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// The damaged section.
        section: Section,
    },
    /// A section required by the reader is absent from the table.
    MissingSection {
        /// The absent section.
        section: Section,
    },
    /// A section decoded, but its content violates a structural invariant.
    Corrupt {
        /// The inconsistent section.
        section: Section,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(message) => write!(f, "snapshot i/o error: {message}"),
            SnapshotError::NotASnapshot => {
                write!(f, "not a snapshot: missing the {:?} magic bytes", {
                    std::str::from_utf8(&MAGIC).unwrap_or("BGPQSNAP")
                })
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported \
                 (this build reads version {supported}); \
                 re-run `bgpq compile` to regenerate the snapshot"
            ),
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated inside the {section} section")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in the {section} section")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot has no {section} section")
            }
            SnapshotError::Corrupt { section, message } => {
                write!(f, "corrupt {section} section: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        SnapshotError::Io(err.to_string())
    }
}

/// FNV-1a 64-bit folded over little-endian words — the section checksum.
/// Word-at-a-time keeps the multiply dependency chain 8x shorter than the
/// classic byte-wise FNV, so verifying a snapshot stays far below
/// text-parse cost; the trailing bytes fall back to the byte-wise step.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for word in &mut words {
        hash ^= u64::from_le_bytes(word.try_into().unwrap());
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in words.remainder() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Little-endian byte sink used to build one section payload.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// Creates an empty payload buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Finishes the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Accumulates sections and writes the framed container.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(Section, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section (sections are laid out in insertion order).
    pub fn add_section(&mut self, section: Section, payload: Vec<u8>) {
        self.sections.push((section, payload));
    }

    /// Writes magic, version, section table and payloads to `w`.
    pub fn write_to<W: Write>(&self, w: W) -> Result<(), SnapshotError> {
        let mut w = std::io::BufWriter::new(w);
        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(self.sections.len() as u32).to_le_bytes())?;
        let mut offset = (16 + self.sections.len() * 28) as u64;
        for (section, payload) in &self.sections {
            w.write_all(&section.id().to_le_bytes())?;
            w.write_all(&offset.to_le_bytes())?;
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            w.write_all(&checksum(payload).to_le_bytes())?;
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            w.write_all(payload)?;
        }
        w.flush()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A parsed container: the raw bytes plus the verified section table.
/// Construction checks the magic, version, section extents and every
/// section checksum; [`SnapshotArchive::section`] then hands out validated
/// payload slices for decoding.
#[derive(Debug)]
pub struct SnapshotArchive {
    data: Vec<u8>,
    entries: Vec<(Section, Range<usize>)>,
}

impl SnapshotArchive {
    /// Parses and verifies a container held in memory.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, SnapshotError> {
        let magic_len = MAGIC.len().min(data.len());
        if data[..magic_len] != MAGIC[..magic_len] {
            return Err(SnapshotError::NotASnapshot);
        }
        if data.len() < 16 {
            return Err(SnapshotError::Truncated {
                section: Section::Header,
            });
        }
        let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = u32::from_le_bytes(data[12..16].try_into().unwrap());
        if count > MAX_SECTIONS {
            return Err(SnapshotError::Corrupt {
                section: Section::Header,
                message: format!("implausible section count {count}"),
            });
        }
        let table_end = 16usize + count as usize * 28;
        if data.len() < table_end {
            return Err(SnapshotError::Truncated {
                section: Section::SectionTable,
            });
        }
        let mut entries = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let at = 16 + i * 28;
            let entry = &data[at..at + 28];
            let section = Section::from_id(u32::from_le_bytes(entry[0..4].try_into().unwrap()));
            let offset = u64::from_le_bytes(entry[4..12].try_into().unwrap());
            let len = u64::from_le_bytes(entry[12..20].try_into().unwrap());
            let recorded = u64::from_le_bytes(entry[20..28].try_into().unwrap());
            let end = offset.checked_add(len).ok_or(SnapshotError::Corrupt {
                section: Section::SectionTable,
                message: format!("section {section} extent overflows"),
            })?;
            if (offset as usize) < table_end || end as usize > data.len() || end > usize::MAX as u64
            {
                return Err(SnapshotError::Truncated { section });
            }
            if entries.iter().any(|(s, _)| *s == section) {
                return Err(SnapshotError::Corrupt {
                    section: Section::SectionTable,
                    message: format!("duplicate {section} section"),
                });
            }
            let range = offset as usize..end as usize;
            if checksum(&data[range.clone()]) != recorded {
                return Err(SnapshotError::ChecksumMismatch { section });
            }
            entries.push((section, range));
        }
        Ok(SnapshotArchive { data, entries })
    }

    /// Reads and verifies a container from `r`.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, SnapshotError> {
        let mut data = Vec::new();
        r.read_to_end(&mut data)?;
        Self::from_bytes(data)
    }

    /// Opens and verifies a container file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// The payload of `section`, when present.
    pub fn section(&self, section: Section) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|(s, _)| *s == section)
            .map(|(_, range)| &self.data[range.clone()])
    }

    /// The payload of `section`, or a [`SnapshotError::MissingSection`].
    pub fn require(&self, section: Section) -> Result<&[u8], SnapshotError> {
        self.section(section)
            .ok_or(SnapshotError::MissingSection { section })
    }

    /// The verified `(section, byte range)` table, in file order.
    pub fn sections(&self) -> impl Iterator<Item = (Section, Range<usize>)> + '_ {
        self.entries.iter().cloned()
    }
}

/// Bounds-checked little-endian cursor over one section payload. Every
/// shortfall or malformed quantity becomes a [`SnapshotError::Corrupt`]
/// naming the section, so decoders never panic on adversarial input.
#[derive(Debug)]
pub struct SectionReader<'a> {
    section: Section,
    data: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    /// Starts a cursor over `data`, attributing errors to `section`.
    pub fn new(section: Section, data: &'a [u8]) -> Self {
        SectionReader {
            section,
            data,
            pos: 0,
        }
    }

    /// A [`SnapshotError::Corrupt`] blamed on this reader's section.
    pub fn corrupt(&self, message: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupt {
            section: self.section,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.data.len() - self.pos < n {
            return Err(self.corrupt(format!(
                "section ends early (needed {n} more bytes, {} left)",
                self.data.len() - self.pos
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` that must fit a `usize` count.
    pub fn read_count(&mut self) -> Result<usize, SnapshotError> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("count {v} exceeds usize")))
    }

    /// Reads `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Bulk-reads `count` little-endian `u32`s.
    pub fn read_u32_vec(&mut self, count: usize) -> Result<Vec<u32>, SnapshotError> {
        let bytes = self.take(
            count
                .checked_mul(4)
                .ok_or_else(|| self.corrupt(format!("u32 array length {count} overflows")))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Bulk-reads `count` little-endian `u64`s.
    pub fn read_u64_vec(&mut self, count: usize) -> Result<Vec<u64>, SnapshotError> {
        let bytes = self.take(
            count
                .checked_mul(8)
                .ok_or_else(|| self.corrupt(format!("u64 array length {count} overflows")))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Asserts the payload was fully consumed — trailing bytes mean the
    /// writer and reader disagree about the layout.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.pos != self.data.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after the last field",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Graph sections
// ---------------------------------------------------------------------------

/// Value tags of the `Values` section.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;

/// Encodes the six graph sections of `graph` into `writer`.
pub fn encode_graph(graph: &Graph, writer: &mut SnapshotWriter) {
    let n = graph.labels.len();

    let mut strings = SectionWriter::new();
    strings.put_u32(graph.interner.len() as u32);
    for (_, name) in graph.interner.iter() {
        strings.put_u32(name.len() as u32);
        strings.put_bytes(name.as_bytes());
    }
    writer.add_section(Section::Strings, strings.into_bytes());

    let mut labels = SectionWriter::new();
    labels.put_u32(n as u32);
    for label in &graph.labels {
        labels.put_u32(label.0);
    }
    writer.add_section(Section::Labels, labels.into_bytes());

    let mut values = SectionWriter::new();
    values.put_u32(n as u32);
    let mut blob: Vec<u8> = Vec::new();
    let mut payloads: Vec<u64> = Vec::with_capacity(n);
    for value in &graph.values {
        let (tag, payload) = match value {
            Value::Null => (TAG_NULL, 0u64),
            Value::Bool(b) => (TAG_BOOL, *b as u64),
            Value::Int(i) => (TAG_INT, *i as u64),
            Value::Float(x) => (TAG_FLOAT, x.to_bits()),
            Value::Str(s) => {
                let offset = blob.len() as u64;
                blob.extend_from_slice(s.as_bytes());
                (TAG_STR, (offset << 32) | s.len() as u64)
            }
        };
        values.put_u8(tag);
        payloads.push(payload);
    }
    for payload in payloads {
        values.put_u64(payload);
    }
    values.put_u64(blob.len() as u64);
    values.put_bytes(&blob);
    writer.add_section(Section::Values, values.into_bytes());

    writer.add_section(
        Section::OutAdjacency,
        encode_adjacency(&graph.out).into_bytes(),
    );
    writer.add_section(
        Section::InAdjacency,
        encode_adjacency(&graph.inc).into_bytes(),
    );

    let buckets = graph.label_index.buckets();
    let mut index = SectionWriter::new();
    index.put_u32(buckets.len() as u32);
    let mut offset = 0u64;
    index.put_u64(buckets.iter().map(|b| b.len() as u64).sum());
    for bucket in buckets {
        index.put_u64(offset);
        offset += bucket.len() as u64;
    }
    index.put_u64(offset);
    for bucket in buckets {
        for v in bucket {
            index.put_u32(v.0);
        }
    }
    writer.add_section(Section::LabelIndex, index.into_bytes());
}

fn encode_adjacency(rows: &[Vec<NodeId>]) -> SectionWriter {
    let mut w = SectionWriter::new();
    w.put_u32(rows.len() as u32);
    w.put_u64(rows.iter().map(|r| r.len() as u64).sum());
    let mut offset = 0u64;
    for row in rows {
        w.put_u64(offset);
        offset += row.len() as u64;
    }
    w.put_u64(offset);
    for row in rows {
        for v in row {
            w.put_u32(v.0);
        }
    }
    w
}

/// Decodes a CSR adjacency section into per-node sorted rows, validating
/// monotone offsets, in-bounds ids and strictly increasing rows.
fn decode_adjacency(
    section: Section,
    payload: &[u8],
    node_count: usize,
    labels: &[Label],
) -> Result<(Vec<Vec<NodeId>>, u64), SnapshotError> {
    let mut r = SectionReader::new(section, payload);
    let n = r.read_u32()? as usize;
    if n != node_count {
        return Err(r.corrupt(format!(
            "node count {n} disagrees with the labels section ({node_count})"
        )));
    }
    let total = r.read_u64()?;
    let offsets = r.read_u64_vec(n + 1)?;
    if offsets.first() != Some(&0) || offsets.last() != Some(&total) {
        return Err(r.corrupt("offset array does not span the target array"));
    }
    let total_usize =
        usize::try_from(total).map_err(|_| r.corrupt(format!("edge total {total} overflows")))?;
    let targets = r.read_u32_vec(total_usize)?;
    r.expect_end()?;

    let mut rows = Vec::with_capacity(n);
    for v in 0..n {
        let (start, end) = (offsets[v], offsets[v + 1]);
        if start > end {
            return Err(r.corrupt(format!("offsets of node {v} are not monotone")));
        }
        let row: Vec<NodeId> = targets[start as usize..end as usize]
            .iter()
            .map(|&t| NodeId(t))
            .collect();
        for pair in row.windows(2) {
            if pair[0] >= pair[1] {
                return Err(r.corrupt(format!("adjacency of node {v} is not sorted strictly")));
            }
        }
        for &t in &row {
            if t.index() >= n {
                return Err(r.corrupt(format!("node {v} references out-of-bounds node {t}")));
            }
            if labels[t.index()] == TOMBSTONE {
                return Err(r.corrupt(format!("node {v} references deleted node {t}")));
            }
        }
        if !row.is_empty() && labels[v] == TOMBSTONE {
            return Err(r.corrupt(format!("deleted node {v} still has adjacency")));
        }
        rows.push(row);
    }
    Ok((rows, total))
}

/// Rebuilds a [`Graph`] from the archive's graph sections, validating
/// checksummed payloads against the structural invariants the in-memory
/// graph relies on. Ignores non-graph sections.
pub fn decode_graph(archive: &SnapshotArchive) -> Result<Graph, SnapshotError> {
    // Strings → interner.
    let mut r = SectionReader::new(Section::Strings, archive.require(Section::Strings)?);
    let name_count = r.read_u32()? as usize;
    let mut names = Vec::with_capacity(name_count.min(1 << 20));
    for _ in 0..name_count {
        let len = r.read_u32()? as usize;
        let bytes = r.read_bytes(len)?;
        let name = std::str::from_utf8(bytes).map_err(|_| r.corrupt("label name is not UTF-8"))?;
        names.push(name.to_string());
    }
    r.expect_end()?;
    let interner = LabelInterner::from_names(names).map_err(|name| SnapshotError::Corrupt {
        section: Section::Strings,
        message: format!("duplicate label name {name:?}"),
    })?;

    // Labels (tombstones included).
    let mut r = SectionReader::new(Section::Labels, archive.require(Section::Labels)?);
    let node_count = r.read_u32()? as usize;
    let raw_labels = r.read_u32_vec(node_count)?;
    r.expect_end()?;
    let mut dead_count = 0usize;
    let mut labels = Vec::with_capacity(node_count);
    for (v, &id) in raw_labels.iter().enumerate() {
        let label = Label(id);
        if label == TOMBSTONE {
            dead_count += 1;
        } else if !interner.contains(label) {
            return Err(SnapshotError::Corrupt {
                section: Section::Labels,
                message: format!("node {v} carries unknown label id {id}"),
            });
        }
        labels.push(label);
    }

    // Values.
    let mut r = SectionReader::new(Section::Values, archive.require(Section::Values)?);
    let value_count = r.read_u32()? as usize;
    if value_count != node_count {
        return Err(r.corrupt(format!(
            "value count {value_count} disagrees with the labels section ({node_count})"
        )));
    }
    let tags = r.read_bytes(node_count)?.to_vec();
    let payloads = r.read_u64_vec(node_count)?;
    let blob_len = r.read_count()?;
    let blob = r.read_bytes(blob_len)?;
    r.expect_end()?;
    let mut values = Vec::with_capacity(node_count);
    for v in 0..node_count {
        let payload = payloads[v];
        let value = match tags[v] {
            TAG_NULL => Value::Null,
            TAG_BOOL => match payload {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                other => return Err(r.corrupt(format!("node {v} has bool payload {other}"))),
            },
            TAG_INT => Value::Int(payload as i64),
            TAG_FLOAT => Value::Float(f64::from_bits(payload)),
            TAG_STR => {
                let (offset, len) = ((payload >> 32) as usize, (payload & 0xffff_ffff) as usize);
                let bytes = blob.get(offset..offset + len).ok_or_else(|| {
                    r.corrupt(format!("string value of node {v} escapes the blob"))
                })?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| r.corrupt(format!("string value of node {v} is not UTF-8")))?;
                Value::Str(s.to_string())
            }
            other => return Err(r.corrupt(format!("node {v} has unknown value tag {other}"))),
        };
        values.push(value);
    }

    // Adjacency, both directions, cross-validated.
    let (out, out_total) = decode_adjacency(
        Section::OutAdjacency,
        archive.require(Section::OutAdjacency)?,
        node_count,
        &labels,
    )?;
    let (inc, in_total) = decode_adjacency(
        Section::InAdjacency,
        archive.require(Section::InAdjacency)?,
        node_count,
        &labels,
    )?;
    if out_total != in_total {
        return Err(SnapshotError::Corrupt {
            section: Section::InAdjacency,
            message: format!("edge totals disagree: out {out_total}, in {in_total}"),
        });
    }
    for (src, row) in out.iter().enumerate() {
        for &dst in row {
            if inc[dst.index()].binary_search(&NodeId(src as u32)).is_err() {
                return Err(SnapshotError::Corrupt {
                    section: Section::InAdjacency,
                    message: format!("edge ({src}, {dst}) is missing from the in-adjacency"),
                });
            }
        }
    }

    // Label index: buckets must partition exactly the live nodes by label.
    let mut r = SectionReader::new(Section::LabelIndex, archive.require(Section::LabelIndex)?);
    let bucket_count = r.read_u32()? as usize;
    let total = r.read_u64()?;
    let offsets = r.read_u64_vec(bucket_count + 1)?;
    if offsets.first().copied().unwrap_or(0) != 0 || offsets.last() != Some(&total) {
        return Err(r.corrupt("offset array does not span the id array"));
    }
    let total_usize = usize::try_from(total)
        .map_err(|_| r.corrupt(format!("label-index total {total} overflows")))?;
    let ids = r.read_u32_vec(total_usize)?;
    r.expect_end()?;
    if total_usize != node_count - dead_count {
        return Err(SnapshotError::Corrupt {
            section: Section::LabelIndex,
            message: format!(
                "index covers {total_usize} nodes but the graph has {} live nodes",
                node_count - dead_count
            ),
        });
    }
    let mut buckets = Vec::with_capacity(bucket_count);
    for b in 0..bucket_count {
        let (start, end) = (offsets[b], offsets[b + 1]);
        if start > end {
            return Err(SnapshotError::Corrupt {
                section: Section::LabelIndex,
                message: format!("offsets of bucket {b} are not monotone"),
            });
        }
        let bucket: Vec<NodeId> = ids[start as usize..end as usize]
            .iter()
            .map(|&v| NodeId(v))
            .collect();
        for pair in bucket.windows(2) {
            if pair[0] >= pair[1] {
                return Err(SnapshotError::Corrupt {
                    section: Section::LabelIndex,
                    message: format!("bucket {b} is not sorted strictly"),
                });
            }
        }
        for &v in &bucket {
            if v.index() >= node_count || labels[v.index()] != Label(b as u32) {
                return Err(SnapshotError::Corrupt {
                    section: Section::LabelIndex,
                    message: format!("bucket {b} lists node {v} which does not carry label {b}"),
                });
            }
        }
        buckets.push(bucket);
    }
    let label_index = LabelIndex::from_buckets(buckets);

    Ok(Graph {
        interner,
        labels,
        values,
        out,
        inc,
        edge_count: out_total as usize,
        label_index,
        dead_count,
    })
}

// ---------------------------------------------------------------------------
// Graph-only convenience API
// ---------------------------------------------------------------------------

/// Writes a graph-only snapshot (no schema/index sections) to `w`.
pub fn write_graph_snapshot<W: Write>(graph: &Graph, w: W) -> Result<(), SnapshotError> {
    let mut writer = SnapshotWriter::new();
    encode_graph(graph, &mut writer);
    writer.write_to(w)
}

/// Saves a graph-only snapshot to `path`.
pub fn save_graph_snapshot(graph: &Graph, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let file = std::fs::File::create(path)?;
    write_graph_snapshot(graph, file)
}

/// Reads the graph out of a snapshot produced by [`write_graph_snapshot`]
/// (or any container with the graph sections, e.g. a full `bgpq compile`
/// output).
pub fn read_graph_snapshot<R: Read>(r: R) -> Result<Graph, SnapshotError> {
    decode_graph(&SnapshotArchive::read_from(r)?)
}

/// Loads the graph out of a snapshot file.
pub fn load_graph_snapshot(path: impl AsRef<Path>) -> Result<Graph, SnapshotError> {
    decode_graph(&SnapshotArchive::open(path)?)
}

/// True when `prefix` begins with the snapshot magic bytes. `prefix` may be
/// shorter than the magic (then only a full match of the available bytes
/// counts, and an empty prefix is not a snapshot).
pub fn is_snapshot_bytes(prefix: &[u8]) -> bool {
    prefix.len() >= MAGIC.len() && prefix[..MAGIC.len()] == MAGIC
}

/// Sniffs whether `path` starts with the snapshot magic (format
/// autodetection by content, not file extension).
pub fn sniff_snapshot(path: impl AsRef<Path>) -> std::io::Result<bool> {
    let mut file = std::fs::File::open(path)?;
    let mut prefix = [0u8; 8];
    let mut read = 0;
    while read < prefix.len() {
        match file.read(&mut prefix[read..])? {
            0 => break,
            n => read += n,
        }
    }
    Ok(is_snapshot_bytes(&prefix[..read]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let award = b.add_node("award", Value::str("Oscar"));
        let year = b.add_node("year", Value::Int(2012));
        let movie = b.add_node("movie", Value::str("Argo"));
        let rating = b.add_node("rating", Value::Float(7.7));
        let flag = b.add_node("flag", Value::Bool(true));
        let misc = b.add_node("misc", Value::Null);
        b.add_edge(award, movie).unwrap();
        b.add_edge(year, movie).unwrap();
        b.add_edge(movie, rating).unwrap();
        b.add_edge(movie, flag).unwrap();
        b.add_edge(flag, misc).unwrap();
        b.build()
    }

    fn round_trip(graph: &Graph) -> Graph {
        let mut buf = Vec::new();
        write_graph_snapshot(graph, &mut buf).unwrap();
        read_graph_snapshot(std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn graph_round_trips_exactly() {
        let g = sample_graph();
        let loaded = round_trip(&g);
        assert_eq!(loaded.node_count(), g.node_count());
        assert_eq!(loaded.edge_count(), g.edge_count());
        assert_eq!(loaded.interner(), g.interner());
        for v in g.nodes() {
            assert_eq!(loaded.label(v), g.label(v));
            assert_eq!(loaded.value(v), g.value(v));
            assert_eq!(loaded.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(loaded.in_neighbors(v), g.in_neighbors(v));
        }
    }

    #[test]
    fn tombstones_and_ids_are_preserved() {
        let mut g = sample_graph();
        let deleted = NodeId(2);
        g.delete_node(deleted).unwrap();
        let loaded = round_trip(&g);
        assert_eq!(loaded.node_count(), g.node_count(), "slots preserved");
        assert!(!loaded.is_live(deleted));
        assert_eq!(loaded.live_node_count(), g.live_node_count());
        assert_eq!(loaded.edge_count(), g.edge_count());
        // The tombstoned slot can be detected but never matched.
        assert!(loaded.contains_node(deleted));
        assert!(loaded.neighbors(deleted).is_empty());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::empty();
        let loaded = round_trip(&g);
        assert_eq!(loaded.node_count(), 0);
        assert_eq!(loaded.edge_count(), 0);
    }

    #[test]
    fn nan_float_bits_survive() {
        let mut b = GraphBuilder::new();
        b.add_node("x", Value::Float(f64::NAN));
        let g = b.build();
        let loaded = round_trip(&g);
        match loaded.value(NodeId(0)) {
            Value::Float(x) => assert!(x.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn magic_and_version_are_checked() {
        let mut buf = Vec::new();
        write_graph_snapshot(&sample_graph(), &mut buf).unwrap();
        let mut not_magic = buf.clone();
        not_magic[0] ^= 0xff;
        assert_eq!(
            read_graph_snapshot(std::io::Cursor::new(not_magic)).unwrap_err(),
            SnapshotError::NotASnapshot
        );
        let mut future = buf.clone();
        future[8] = 9;
        assert_eq!(
            read_graph_snapshot(std::io::Cursor::new(future)).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: 9,
                supported: FORMAT_VERSION
            }
        );
        assert!(is_snapshot_bytes(&buf));
        assert!(!is_snapshot_bytes(b"BGPQ"));
        assert!(!is_snapshot_bytes(b"n 0 movie\n"));
    }

    #[test]
    fn section_checksums_are_enforced() {
        let mut buf = Vec::new();
        write_graph_snapshot(&sample_graph(), &mut buf).unwrap();
        let archive = SnapshotArchive::from_bytes(buf.clone()).unwrap();
        let (section, range) = archive
            .sections()
            .find(|(s, _)| *s == Section::Labels)
            .unwrap();
        let mut damaged = buf.clone();
        damaged[range.start + 5] ^= 0x01;
        assert_eq!(
            read_graph_snapshot(std::io::Cursor::new(damaged)).unwrap_err(),
            SnapshotError::ChecksumMismatch { section }
        );
    }

    #[test]
    fn error_display_names_sections() {
        assert!(SnapshotError::ChecksumMismatch {
            section: Section::OutAdjacency
        }
        .to_string()
        .contains("out-adjacency"));
        assert!(SnapshotError::Truncated {
            section: Section::SectionTable
        }
        .to_string()
        .contains("section table"));
        assert!(SnapshotError::UnsupportedVersion {
            found: 3,
            supported: 1
        }
        .to_string()
        .contains("version 3"));
        assert!(SnapshotError::NotASnapshot.to_string().contains("magic"));
        assert_eq!(Section::from_id(42), Section::Unknown(42));
        assert!(Section::Unknown(42).to_string().contains("42"));
    }
}
