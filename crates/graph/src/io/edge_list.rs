//! Plain edge-list ingestion (`src dst` pairs, SNAP-style).
//!
//! Many published graph datasets ship as nothing but an edge list: one
//! whitespace- or tab-separated `src dst` pair per line, `#` or `%` comment
//! lines, no labels. This reader streams such files into a
//! [`GraphBuilder`]: nodes are declared implicitly by their first
//! appearance, all carry the same configurable label, and each node's
//! attribute value records its external id (as [`Value::Int`]) so loaded
//! graphs keep a handle back to the source dataset.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Label given to every implicitly declared node of an edge list.
pub const DEFAULT_EDGE_LIST_LABEL: &str = "node";

/// Parses an edge list with the default node label.
///
/// # Examples
///
/// ```
/// use bgpq_graph::io::read_edge_list;
///
/// let text = "# a triangle, SNAP-style\n1\t2\n2\t3\n3\t1\n";
/// let g = read_edge_list(std::io::Cursor::new(text), "node").unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// // External ids are kept as the nodes' attribute values.
/// assert_eq!(g.value(bgpq_graph::NodeId(0)), &bgpq_graph::Value::Int(1));
/// ```
pub fn read_edge_list<R: BufRead>(reader: R, label: &str) -> Result<Graph> {
    let mut builder = GraphBuilder::new();
    let interned = builder.intern_label(label);
    let mut id_map: HashMap<u64, NodeId> = HashMap::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line_num = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let src = parse_endpoint(tokens.next(), line_num, "source")?;
        let dst = parse_endpoint(tokens.next(), line_num, "destination")?;
        if let Some(extra) = tokens.next() {
            return Err(GraphError::Parse {
                line: line_num,
                message: format!("unexpected trailing token {extra:?} (expected `src dst`)"),
            });
        }
        let mut intern = |external: u64| {
            *id_map.entry(external).or_insert_with(|| {
                // Ids beyond i64 (64-bit hashes) keep their identity as a
                // string value instead of wrapping negative.
                let value = i64::try_from(external)
                    .map(Value::Int)
                    .unwrap_or_else(|_| Value::Str(external.to_string()));
                builder.add_node_labeled(interned, value)
            })
        };
        let s = intern(src);
        let d = intern(dst);
        edges.push((s, d));
    }
    builder.add_edges(edges)?;
    Ok(builder.build())
}

/// Loads an edge-list file with the given node label.
pub fn load_edge_list(path: impl AsRef<Path>, label: &str) -> Result<Graph> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file), label)
}

/// Writes a graph as a plain edge list (node labels and values are **not**
/// representable in this format and are dropped; external ids are the
/// contiguous live node ids). Round-tripping therefore preserves structure,
/// not attributes — use the text or JSONL formats for lossless saves.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# bgpq edge list: {} nodes, {} edges",
        graph.live_node_count(),
        graph.edge_count()
    )?;
    for e in graph.edges() {
        writeln!(w, "{}\t{}", e.src.0, e.dst.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Saves a graph as an edge-list file.
pub fn save_edge_list(graph: &Graph, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

fn parse_endpoint(token: Option<&str>, line: usize, what: &str) -> Result<u64> {
    let Some(token) = token else {
        return Err(GraphError::Parse {
            line,
            message: format!("missing edge {what}"),
        });
    };
    token.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid edge {what} {token:?} (expected an unsigned integer)"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_nodes_in_first_appearance_order() {
        let text = "5 9\n9 5\n5 7\n";
        let g = read_edge_list(std::io::Cursor::new(text), "host").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        // 5 appears first, then 9, then 7.
        assert_eq!(g.value(NodeId(0)), &Value::Int(5));
        assert_eq!(g.value(NodeId(1)), &Value::Int(9));
        assert_eq!(g.value(NodeId(2)), &Value::Int(7));
        assert_eq!(g.label_name(NodeId(0)), "host");
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn comments_blank_lines_and_duplicates() {
        let text = "# snap header\n% matrix-market header\n\n1 2\n1 2\n";
        let g = read_edge_list(std::io::Cursor::new(text), "node").unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1, "duplicate edges are deduplicated");
    }

    #[test]
    fn self_loops_are_kept() {
        let g = read_edge_list(std::io::Cursor::new("3 3\n"), "node").unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn ids_beyond_i64_keep_identity_as_strings() {
        let huge = u64::MAX;
        let text = format!("{huge} 1\n");
        let g = read_edge_list(std::io::Cursor::new(text), "node").unwrap();
        assert_eq!(g.value(NodeId(0)), &Value::Str(huge.to_string()));
        assert_eq!(g.value(NodeId(1)), &Value::Int(1));
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let missing = "1 2\n3\n";
        let err = read_edge_list(std::io::Cursor::new(missing), "node").unwrap_err();
        assert!(
            matches!(err, GraphError::Parse { line: 2, ref message } if message.contains("destination")),
            "got {err:?}"
        );

        let non_numeric = "a 2\n";
        let err = read_edge_list(std::io::Cursor::new(non_numeric), "node").unwrap_err();
        assert!(
            matches!(err, GraphError::Parse { line: 1, .. }),
            "got {err:?}"
        );

        let trailing = "1 2 3\n";
        let err = read_edge_list(std::io::Cursor::new(trailing), "node").unwrap_err();
        assert!(
            matches!(err, GraphError::Parse { line: 1, ref message } if message.contains("trailing")),
            "got {err:?}"
        );
    }

    #[test]
    fn structural_round_trip() {
        let text = "0 1\n1 2\n2 0\n2 2\n";
        let g = read_edge_list(std::io::Cursor::new(text), "node").unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(std::io::Cursor::new(buf), "node").unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let edges =
            |g: &Graph| -> Vec<(u32, u32)> { g.edges().map(|e| (e.src.0, e.dst.0)).collect() };
        let (mut a, mut b) = (edges(&g), edges(&g2));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bgpq_edge_list_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        let g = read_edge_list(std::io::Cursor::new("1 2\n2 3\n"), "node").unwrap();
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path, "node").unwrap();
        assert_eq!(g2.node_count(), 3);
        assert_eq!(g2.edge_count(), 2);
        std::fs::remove_file(path).ok();
    }
}
