//! A minimal JSON reader and writer, shared by the JSON-lines dataset
//! format and the `bgpq-net` wire protocol.
//!
//! The workspace is dependency-free, so instead of `serde_json` this module
//! provides just enough JSON to parse one dataset record per line: objects,
//! arrays, strings (with escapes), numbers (kept as `i64` when they are
//! integral so node attributes round-trip as [`crate::Value::Int`]), booleans
//! and `null`. Errors carry a byte offset which the JSONL loader combines
//! with its line number. The writer side ([`write_json`] / [`Json::render`])
//! emits exactly what the parser accepts, so protocol payloads and dataset
//! records are encoded and decoded by one implementation.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order of the input (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value (convenience for protocol encoders).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs, in order.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key of an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an `f64`, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes this value into a compact JSON string (see [`write_json`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_json(&mut out, self);
        out
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A JSON syntax error: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset into the parsed text.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> std::result::Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> std::result::Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> std::result::Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> std::result::Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> std::result::Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> std::result::Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> std::result::Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => return Err(self.error(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Re-borrow the original text to keep multi-byte UTF-8
                    // characters intact: find the full char starting one byte
                    // back.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("non-empty by construction");
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> std::result::Result<char, JsonError> {
        let unit = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by \u and a low
        // surrogate; everything else maps directly.
        if (0xD800..0xDC00).contains(&unit) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.error("bad surrogate pair"));
                }
            }
            return Err(self.error("lone high surrogate"));
        }
        char::from_u32(unit).ok_or_else(|| self.error("bad \\u escape"))
    }

    fn hex4(&mut self) -> std::result::Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("bad \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape digits"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> std::result::Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error(format!("invalid number {text:?}")))
    }
}

/// Renders a finite float as a JSON number token that reloads as a float:
/// whole values keep a decimal point (`7.0`, not `7`, which would reload as
/// an integer). Returns `None` for non-finite values — JSON has no
/// representation for them, so writers must reject rather than emit an
/// unparseable `NaN`/`inf` token.
pub fn json_float_token(x: f64) -> Option<String> {
    if !x.is_finite() {
        return None;
    }
    if x.fract() == 0.0 {
        Some(format!("{x:.1}"))
    } else {
        Some(x.to_string())
    }
}

/// Serializes `value` compactly (no whitespace) into `out`. The output
/// parses back to an equal [`Json`] with one documented exception: JSON has
/// no token for non-finite floats, so `NaN`/`±inf` are written as `null`
/// rather than producing an unparseable document — encoders that must not
/// lose them should reject such values up front (see [`json_float_token`]).
pub fn write_json(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(x) => match json_float_token(*x) {
            Some(token) => out.push_str(&token),
            None => out.push_str("null"),
        },
        Json::Str(s) => write_json_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, key);
                out.push(':');
                write_json(out, item);
            }
            out.push('}');
        }
    }
}

/// Writes `s` as a JSON string literal (with the required escapes) into
/// `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("false").unwrap(), Json::Bool(false));
        assert_eq!(parse_json("42").unwrap(), Json::Int(42));
        assert_eq!(parse_json("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse_json("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(parse_json("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse_json("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        match v.get("a").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Int(1));
                assert_eq!(items[1].get("b"), Some(&Json::Null));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse_json(r#""a\"b\\c\nd\u00e9\u0041""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\ndéA".into()));
        let surrogate = parse_json(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(surrogate, Json::Str("😀".into()));

        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
        assert_eq!(
            parse_json(&out).unwrap(),
            Json::Str("a\"b\\c\nd\u{1}".into())
        );
    }

    #[test]
    fn unicode_text_passes_through() {
        let v = parse_json("\"héllo wörld 日本\"").unwrap();
        assert_eq!(v, Json::Str("héllo wörld 日本".into()));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse_json("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(parse_json("").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("tru").is_err());
        assert!(parse_json("1 2").unwrap_err().message.contains("trailing"));
        assert!(parse_json("\"\\ud800x\"").is_err());
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = parse_json(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Int(2)));
    }

    #[test]
    fn writer_round_trips() {
        let value = Json::obj([
            ("type", Json::str("query")),
            ("n", Json::Int(-42)),
            ("x", Json::Float(2.5)),
            ("whole", Json::Float(7.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Int(1), Json::str("a\"b\nc"), Json::Arr(vec![])]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = value.render();
        assert_eq!(parse_json(&text).unwrap(), value);
        // Whole floats keep their decimal point so they reload as floats.
        assert!(text.contains("\"whole\":7.0"));
        // Compact: no spaces outside strings.
        assert!(!text.replace("a\\\"b\\nc", "").contains(' '));
    }

    #[test]
    fn writer_maps_non_finite_floats_to_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn typed_accessors() {
        assert_eq!(Json::Int(-3).as_i64(), Some(-3));
        assert_eq!(Json::Str("x".into()).as_i64(), None);
        assert_eq!(Json::Int(2).as_f64(), Some(2.0));
        assert_eq!(Json::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Int(1).as_bool(), None);
        assert_eq!(
            Json::Arr(vec![Json::Null]).as_arr().map(<[_]>::len),
            Some(1)
        );
        assert_eq!(Json::Null.as_arr(), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Json::Int(3).as_u64(), Some(3));
        assert_eq!(Json::Int(-3).as_u64(), None);
        assert_eq!(Json::Null.as_u64(), None);
        assert_eq!(Json::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Json::Bool(true).as_str(), None);
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::Arr(vec![]).type_name(), "array");
        assert_eq!(Json::Obj(vec![]).type_name(), "object");
        assert_eq!(Json::Float(1.0).type_name(), "number");
    }
}
