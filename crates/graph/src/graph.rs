//! The node-labeled directed data graph `G = (V, E, f, ν)`.
//!
//! [`Graph`] is an immutable-after-construction graph optimized for the kinds
//! of accesses the bounded-evaluation machinery performs:
//!
//! * neighbor and label lookups in O(degree);
//! * `has_edge` in O(log degree) (adjacency lists are kept sorted);
//! * enumeration of all nodes carrying a given label (via the embedded
//!   [`LabelIndex`]);
//! * **common-neighbor** queries for a set of nodes, the primitive behind
//!   access-constraint indices (`S → (l, N)` asks for the common neighbors of
//!   an `S`-labeled node set that carry label `l`).
//!
//! Construction goes through [`crate::GraphBuilder`], which performs the
//! necessary sorting and deduplication once. For serving scenarios the graph
//! additionally supports **in-place mutation** ([`Graph::insert_node`],
//! [`Graph::insert_edge`], [`Graph::delete_edge`], [`Graph::delete_node`])
//! that keeps the adjacency lists sorted and the embedded [`LabelIndex`] in
//! sync, so access-constraint indices can be maintained incrementally
//! against the mutated graph instead of rebuilt.

use crate::error::GraphError;
use crate::label::{Label, LabelInterner};
use crate::label_index::LabelIndex;
use crate::value::Value;
use crate::Result;
use std::fmt;

/// Sentinel label carried by deleted node slots. It is never interned, so it
/// compares unequal to every real label and [`LabelIndex`] lookups for it
/// return the empty slice.
pub(crate) const TOMBSTONE: Label = Label(u32::MAX);

/// Neighbor-list size from which [`Graph::common_neighbors`] switches one
/// intersection side from sorted-vec `binary_search` to a
/// [`crate::NodeBitSet`]. Below this, loading the bitmap costs more than the
/// handful of binary searches it replaces.
pub const BITMAP_INTERSECT_THRESHOLD: usize = 64;

/// Identifier of a node in a [`Graph`]; contiguous from `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of a directed edge `(src, dst)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
}

impl EdgeId {
    /// Creates an edge id from its endpoints.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        EdgeId { src, dst }
    }
}

/// A node-labeled directed data graph.
///
/// The size of the graph, written `|G|` in the paper, is the number of nodes
/// plus the number of edges ([`Graph::size`]).
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) interner: LabelInterner,
    pub(crate) labels: Vec<Label>,
    pub(crate) values: Vec<Value>,
    /// Sorted out-adjacency per node.
    pub(crate) out: Vec<Vec<NodeId>>,
    /// Sorted in-adjacency per node.
    pub(crate) inc: Vec<Vec<NodeId>>,
    pub(crate) edge_count: usize,
    pub(crate) label_index: LabelIndex,
    /// Number of deleted (tombstoned) node slots; node ids stay contiguous
    /// so deletion marks the slot instead of shifting ids.
    pub(crate) dead_count: usize,
}

impl Graph {
    /// Creates an empty graph with an empty label alphabet.
    pub fn empty() -> Self {
        Graph {
            interner: LabelInterner::new(),
            labels: Vec::new(),
            values: Vec::new(),
            out: Vec::new(),
            inc: Vec::new(),
            edge_count: 0,
            label_index: LabelIndex::default(),
            dead_count: 0,
        }
    }

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of directed edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The paper's `|G| = |V| + |E|`.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label interner shared by this graph.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// The graph's label → sorted-node-bucket index. Read-only: mutation
    /// goes through the graph's own insert/delete operations, which keep
    /// the index consistent.
    pub fn label_index(&self) -> &LabelIndex {
        &self.label_index
    }

    /// Returns all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Returns every directed edge `(src, dst)`.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.out.iter().enumerate().flat_map(|(src, dsts)| {
            dsts.iter()
                .map(move |&dst| EdgeId::new(NodeId(src as u32), dst))
        })
    }

    /// True when `v` is a valid node id of this graph.
    pub fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.labels.len()
    }

    /// The label `f(v)` of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is not a node of this graph.
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v.index()]
    }

    /// The label of `v`, or `None` when `v` is out of range.
    pub fn try_label(&self, v: NodeId) -> Option<Label> {
        self.labels.get(v.index()).copied()
    }

    /// The attribute value `ν(v)` of node `v`.
    pub fn value(&self, v: NodeId) -> &Value {
        &self.values[v.index()]
    }

    /// The label name of node `v` (for diagnostics).
    pub fn label_name(&self, v: NodeId) -> String {
        self.interner.name_or_placeholder(self.label(v))
    }

    /// Out-neighbors of `v`, sorted by node id.
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.out[v.index()]
    }

    /// In-neighbors of `v`, sorted by node id.
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.inc[v.index()]
    }

    /// All neighbors of `v` (union of in- and out-neighbors, deduplicated,
    /// sorted).
    ///
    /// The paper treats neighborhood as undirected: `v` is a neighbor of `v'`
    /// when either `(v, v')` or `(v', v)` is an edge.
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let out = &self.out[v.index()];
        let inc = &self.inc[v.index()];
        let mut merged = Vec::with_capacity(out.len() + inc.len());
        let (mut i, mut j) = (0, 0);
        while i < out.len() && j < inc.len() {
            match out[i].cmp(&inc[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(out[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(inc[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(out[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&out[i..]);
        merged.extend_from_slice(&inc[j..]);
        merged
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out[v.index()].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inc[v.index()].len()
    }

    /// Undirected degree of `v` (number of distinct neighbors).
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// True when the directed edge `(src, dst)` exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.out
            .get(src.index())
            .is_some_and(|dsts| dsts.binary_search(&dst).is_ok())
    }

    /// True when `a` and `b` are neighbors in either direction.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.has_edge(a, b) || self.has_edge(b, a)
    }

    /// All nodes carrying `label`, sorted by node id.
    pub fn nodes_with_label(&self, label: Label) -> &[NodeId] {
        self.label_index.nodes(label)
    }

    /// Number of nodes carrying `label`.
    pub fn label_count(&self, label: Label) -> usize {
        self.label_index.count(label)
    }

    /// Neighbors of `v` (either direction) that carry `label`.
    pub fn neighbors_with_label(&self, v: NodeId, label: Label) -> Vec<NodeId> {
        self.neighbors(v)
            .into_iter()
            .filter(|&n| self.label(n) == label)
            .collect()
    }

    /// Common neighbors of every node in `nodes` (in either direction).
    ///
    /// Following the paper, the common neighbors of the empty set are **all**
    /// (live) nodes of the graph.
    ///
    /// Each pairwise intersection picks its representation adaptively: small
    /// neighbor lists stay on the sorted-vec `binary_search` path, while a
    /// list of [`BITMAP_INTERSECT_THRESHOLD`] nodes or more is loaded into a
    /// [`crate::NodeBitSet`] once so every membership probe is a single bit
    /// test instead of an `O(log n)` search. The answer is identical either
    /// way (the engine bench compares both on a hub-heavy workload).
    pub fn common_neighbors(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        if nodes.is_empty() {
            return self.nodes().filter(|&v| self.is_live(v)).collect();
        }
        // Start from the node with the smallest neighborhood to keep the
        // intersection cheap.
        let mut sets: Vec<Vec<NodeId>> = nodes.iter().map(|&v| self.neighbors(v)).collect();
        sets.sort_by_key(Vec::len);
        let mut acc = sets[0].clone();
        let mut bits: Option<crate::NodeBitSet> = None;
        for set in &sets[1..] {
            if acc.is_empty() {
                break;
            }
            if set.len() >= BITMAP_INTERSECT_THRESHOLD {
                let bits =
                    bits.get_or_insert_with(|| crate::NodeBitSet::with_capacity(self.node_count()));
                bits.clear();
                for &v in set {
                    bits.insert(v);
                }
                acc.retain(|&v| bits.contains(v));
            } else {
                acc.retain(|v| set.binary_search(v).is_ok());
            }
        }
        acc
    }

    /// The pre-bitmap [`Graph::common_neighbors`]: sorted-vec intersection
    /// via `binary_search` for every set. Kept as the comparison baseline for
    /// the engine's `bitmap_intersection` bench; answers are always identical
    /// to [`Graph::common_neighbors`].
    pub fn common_neighbors_sorted_vec(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        if nodes.is_empty() {
            return self.nodes().filter(|&v| self.is_live(v)).collect();
        }
        let mut sets: Vec<Vec<NodeId>> = nodes.iter().map(|&v| self.neighbors(v)).collect();
        sets.sort_by_key(Vec::len);
        let mut acc = sets[0].clone();
        for set in &sets[1..] {
            acc.retain(|v| set.binary_search(v).is_ok());
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Common neighbors of `nodes` that carry `label`.
    pub fn common_neighbors_with_label(&self, nodes: &[NodeId], label: Label) -> Vec<NodeId> {
        self.common_neighbors(nodes)
            .into_iter()
            .filter(|&v| self.label(v) == label)
            .collect()
    }

    /// Total number of distinct labels that appear on at least one node.
    pub fn distinct_label_count(&self) -> usize {
        self.label_index.distinct_labels()
    }

    /// True when `v` is a node slot that has not been deleted.
    ///
    /// Node ids are contiguous and stable: [`Graph::delete_node`] tombstones
    /// the slot instead of shifting ids, so `contains_node` keeps answering
    /// true for deleted slots while `is_live` does not.
    pub fn is_live(&self, v: NodeId) -> bool {
        self.labels.get(v.index()).is_some_and(|&l| l != TOMBSTONE)
    }

    /// Number of live (non-deleted) nodes.
    pub fn live_node_count(&self) -> usize {
        self.labels.len() - self.dead_count
    }
}

/// In-place mutation, the write side of the serving subsystem.
///
/// These operations keep every invariant the read API relies on: adjacency
/// lists stay sorted and deduplicated, `edge_count` stays exact, and the
/// embedded [`LabelIndex`] tracks label membership. Deleting a node
/// tombstones its slot (ids never shift): the slot keeps existing for
/// [`Graph::contains_node`], but carries a reserved sentinel label that
/// matches no interned label, has no adjacency, and is absent from the label
/// index — so matchers, which seed candidates through the label index, never
/// see deleted nodes.
impl Graph {
    /// Appends a node labeled `label_name` (interned on the fly), returning
    /// its id.
    pub fn insert_node(&mut self, label_name: &str, value: Value) -> NodeId {
        let label = self.interner.intern(label_name);
        self.insert_node_labeled(label, value)
    }

    /// Appends a node with an already-interned label, returning its id.
    ///
    /// # Panics
    /// Panics when `label` is the reserved tombstone sentinel.
    pub fn insert_node_labeled(&mut self, label: Label, value: Value) -> NodeId {
        assert!(label != TOMBSTONE, "the tombstone label cannot be assigned");
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label);
        self.values.push(value);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.label_index.insert(label, id);
        id
    }

    /// Inserts the directed edge `(src, dst)`. Returns `Ok(true)` when the
    /// edge is new, `Ok(false)` when it already existed (the graph stays
    /// simple), and an error when either endpoint is missing or deleted.
    pub fn insert_edge(&mut self, src: NodeId, dst: NodeId) -> Result<bool> {
        if !self.is_live(src) || !self.is_live(dst) {
            return Err(GraphError::EndpointNotFound {
                src: src.0 as u64,
                dst: dst.0 as u64,
            });
        }
        match self.out[src.index()].binary_search(&dst) {
            Ok(_) => Ok(false),
            Err(pos) => {
                self.out[src.index()].insert(pos, dst);
                let ipos = self.inc[dst.index()]
                    .binary_search(&src)
                    .expect_err("out and in adjacency agree on membership");
                self.inc[dst.index()].insert(ipos, src);
                self.edge_count += 1;
                Ok(true)
            }
        }
    }

    /// Deletes the directed edge `(src, dst)`. Returns `Ok(true)` when the
    /// edge existed, `Ok(false)` when it did not, and an error when either
    /// endpoint id is out of range.
    pub fn delete_edge(&mut self, src: NodeId, dst: NodeId) -> Result<bool> {
        if !self.contains_node(src) || !self.contains_node(dst) {
            return Err(GraphError::EndpointNotFound {
                src: src.0 as u64,
                dst: dst.0 as u64,
            });
        }
        match self.out[src.index()].binary_search(&dst) {
            Err(_) => Ok(false),
            Ok(pos) => {
                self.out[src.index()].remove(pos);
                let ipos = self.inc[dst.index()]
                    .binary_search(&src)
                    .expect("out and in adjacency agree on membership");
                self.inc[dst.index()].remove(ipos);
                self.edge_count -= 1;
                Ok(true)
            }
        }
    }

    /// Deletes node `v`: removes every incident edge, unregisters the node
    /// from the label index and tombstones its slot. Returns the removed
    /// edges so callers maintaining derived indices can account for the full
    /// change `ΔG` (the edges plus the node).
    ///
    /// Errors when `v` is out of range or already deleted.
    pub fn delete_node(&mut self, v: NodeId) -> Result<Vec<EdgeId>> {
        if !self.is_live(v) {
            return Err(GraphError::NodeNotFound(v.0 as u64));
        }
        let mut removed = Vec::new();
        for dst in std::mem::take(&mut self.out[v.index()]) {
            let pos = self.inc[dst.index()]
                .binary_search(&v)
                .expect("out and in adjacency agree on membership");
            self.inc[dst.index()].remove(pos);
            removed.push(EdgeId::new(v, dst));
        }
        for src in std::mem::take(&mut self.inc[v.index()]) {
            let pos = self.out[src.index()]
                .binary_search(&v)
                .expect("out and in adjacency agree on membership");
            self.out[src.index()].remove(pos);
            removed.push(EdgeId::new(src, v));
        }
        self.edge_count -= removed.len();
        self.label_index.remove(self.labels[v.index()], v);
        self.labels[v.index()] = TOMBSTONE;
        self.values[v.index()] = Value::Null;
        self.dead_count += 1;
        Ok(removed)
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::empty()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(|V|={}, |E|={}, labels={})",
            self.node_count(),
            self.edge_count(),
            self.distinct_label_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::graph::NodeId;
    use crate::value::Value;

    /// Builds the small movie graph used across substrate tests:
    ///
    /// ```text
    ///   award --> movie <-- year
    ///               |\
    ///               v v
    ///          actor   actress
    ///               \   /
    ///                v v
    ///              country
    /// ```
    fn movie_graph() -> (crate::Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let award = b.add_node("award", Value::str("Oscar"));
        let year = b.add_node("year", Value::Int(2012));
        let movie = b.add_node("movie", Value::str("Argo"));
        let actor = b.add_node("actor", Value::str("A"));
        let actress = b.add_node("actress", Value::str("B"));
        let country = b.add_node("country", Value::str("US"));
        b.add_edge(award, movie).unwrap();
        b.add_edge(year, movie).unwrap();
        b.add_edge(movie, actor).unwrap();
        b.add_edge(movie, actress).unwrap();
        b.add_edge(actor, country).unwrap();
        b.add_edge(actress, country).unwrap();
        let g = b.build();
        (g, vec![award, year, movie, actor, actress, country])
    }

    #[test]
    fn counts_and_size() {
        let (g, _) = movie_graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.size(), 12);
        assert!(!g.is_empty());
        assert_eq!(g.distinct_label_count(), 6);
    }

    #[test]
    fn labels_and_values() {
        let (g, ids) = movie_graph();
        let movie = ids[2];
        assert_eq!(g.label_name(movie), "movie");
        assert_eq!(g.value(movie), &Value::str("Argo"));
        assert_eq!(g.value(ids[1]), &Value::Int(2012));
        assert!(g.contains_node(movie));
        assert!(!g.contains_node(NodeId(100)));
        assert_eq!(g.try_label(NodeId(100)), None);
    }

    #[test]
    fn adjacency_is_correct() {
        let (g, ids) = movie_graph();
        let (award, year, movie, actor, actress, country) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        assert!(g.has_edge(award, movie));
        assert!(!g.has_edge(movie, award));
        assert!(g.are_neighbors(movie, award));
        assert_eq!(g.out_neighbors(movie), &[actor, actress]);
        assert_eq!(g.in_neighbors(movie), &[award, year]);
        assert_eq!(g.neighbors(movie), vec![award, year, actor, actress]);
        assert_eq!(g.out_degree(movie), 2);
        assert_eq!(g.in_degree(movie), 2);
        assert_eq!(g.degree(movie), 4);
        assert_eq!(g.degree(country), 2);
    }

    #[test]
    fn label_index_lookups() {
        let (g, ids) = movie_graph();
        let movie_label = g.interner().get("movie").unwrap();
        assert_eq!(g.nodes_with_label(movie_label), &[ids[2]]);
        assert_eq!(g.label_count(movie_label), 1);
        let actor_label = g.interner().get("actor").unwrap();
        assert_eq!(g.neighbors_with_label(ids[2], actor_label), vec![ids[3]]);
    }

    #[test]
    fn common_neighbors_of_pairs() {
        let (g, ids) = movie_graph();
        let (award, year, movie, actor, actress, country) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        // award and year share exactly the movie.
        assert_eq!(g.common_neighbors(&[award, year]), vec![movie]);
        // actor and actress share movie and country.
        assert_eq!(g.common_neighbors(&[actor, actress]), vec![movie, country]);
        let country_label = g.interner().get("country").unwrap();
        assert_eq!(
            g.common_neighbors_with_label(&[actor, actress], country_label),
            vec![country]
        );
        // Disconnected pair shares nothing.
        assert!(g.common_neighbors(&[award, country]).is_empty());
    }

    #[test]
    fn common_neighbors_of_empty_set_is_all_nodes() {
        let (g, _) = movie_graph();
        assert_eq!(g.common_neighbors(&[]).len(), g.node_count());
    }

    #[test]
    fn edges_iterator_enumerates_all_edges() {
        let (g, _) = movie_graph();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        for e in edges {
            assert!(g.has_edge(e.src, e.dst));
        }
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = crate::Graph::empty();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert!(g.common_neighbors(&[]).is_empty());
    }

    #[test]
    fn insert_node_and_edge_maintain_indices() {
        let (mut g, ids) = movie_graph();
        let movie_label = g.interner().get("movie").unwrap();
        let m2 = g.insert_node("movie", Value::str("Gravity"));
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.live_node_count(), 7);
        assert_eq!(g.nodes_with_label(movie_label), &[ids[2], m2]);
        assert!(g.is_live(m2));

        // New edges keep adjacency sorted and refuse duplicates.
        assert!(g.insert_edge(ids[0], m2).unwrap());
        assert!(!g.insert_edge(ids[0], m2).unwrap());
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.out_neighbors(ids[0]), &[ids[2], m2]);
        assert_eq!(g.in_neighbors(m2), &[ids[0]]);
        assert!(g.insert_edge(NodeId(50), m2).is_err());
    }

    #[test]
    fn delete_edge_updates_both_directions() {
        let (mut g, ids) = movie_graph();
        assert!(g.delete_edge(ids[2], ids[3]).unwrap());
        assert!(!g.delete_edge(ids[2], ids[3]).unwrap());
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.out_neighbors(ids[2]), &[ids[4]]);
        assert_eq!(g.in_neighbors(ids[3]), &[] as &[NodeId]);
        assert!(g.delete_edge(NodeId(50), ids[3]).is_err());
    }

    #[test]
    fn delete_node_tombstones_and_detaches() {
        let (mut g, ids) = movie_graph();
        let movie = ids[2];
        let movie_label = g.label(movie);
        let removed = g.delete_node(movie).unwrap();
        // All four incident edges are reported exactly once.
        assert_eq!(removed.len(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.is_live(movie));
        assert!(g.contains_node(movie), "ids stay stable");
        assert_eq!(g.live_node_count(), 5);
        assert!(g.nodes_with_label(movie_label).is_empty());
        assert!(g.neighbors(movie).is_empty());
        assert_eq!(g.in_neighbors(ids[3]), &[] as &[NodeId]);
        // The tombstoned label matches no interned label.
        assert!(g.try_label(movie).is_some());
        assert_ne!(g.label(movie), movie_label);
        // Deleting again or touching the dead slot errors.
        assert!(g.delete_node(movie).is_err());
        assert!(g.insert_edge(ids[0], movie).is_err());
        // Dead slots keep edge deletion well-defined (the edges are gone).
        assert!(!g.delete_edge(ids[0], movie).unwrap());
    }

    #[test]
    fn delete_node_handles_self_loops() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", Value::Null);
        let c = b.add_node("b", Value::Null);
        b.add_edge(a, a).unwrap();
        b.add_edge(a, c).unwrap();
        b.add_edge(c, a).unwrap();
        let mut g = b.build();
        let removed = g.delete_node(a).unwrap();
        assert_eq!(removed.len(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_live(c));
    }

    #[test]
    fn display_formats() {
        let (g, ids) = movie_graph();
        assert!(g.to_string().contains("|V|=6"));
        assert_eq!(ids[0].to_string(), "v0");
        assert_eq!(
            crate::graph::EdgeId::new(ids[0], ids[2]),
            crate::graph::EdgeId::new(ids[0], ids[2])
        );
    }

    /// Two hubs with large overlapping neighborhoods push the intersection
    /// over [`BITMAP_INTERSECT_THRESHOLD`]: the bitmap path must agree with
    /// the sorted-vec baseline exactly, order included.
    #[test]
    fn bitmap_and_sorted_vec_intersections_agree() {
        let mut b = crate::GraphBuilder::new();
        let h1 = b.add_node("hub", Value::Null);
        let h2 = b.add_node("hub", Value::Null);
        for i in 0..200 {
            let x = b.add_node("x", Value::Int(i));
            b.add_edge(h1, x).unwrap();
            if i % 3 != 0 {
                b.add_edge(h2, x).unwrap();
            }
        }
        let g = b.build();
        let fast = g.common_neighbors(&[h1, h2]);
        let slow = g.common_neighbors_sorted_vec(&[h1, h2]);
        assert_eq!(fast, slow);
        assert!(fast.len() > super::BITMAP_INTERSECT_THRESHOLD);
        // Below the threshold both take the sorted-vec path; still equal.
        let x0 = fast[0];
        assert_eq!(
            g.common_neighbors(&[h1, x0]),
            g.common_neighbors_sorted_vec(&[h1, x0])
        );
    }
}
