//! Zero-copy fragment execution: [`GraphAccess`] and [`FragmentView`].
//!
//! The bounded executors of `bgpq-core` evaluate a pattern on the fetched
//! fragment `G_Q ⊆ G`. The original implementation *materialized* `G_Q` as a
//! standalone [`Graph`] per query — cloning the label interner, re-adding
//! every node and value through a [`crate::GraphBuilder`], and remapping all
//! node ids twice (parent → local for the candidate sets, local → parent for
//! the answers). On the reference benchmark that copy dominated the bounded
//! hot path and made `bVF2` *slower* than whole-graph `VF2`.
//!
//! This module removes the copy:
//!
//! * [`GraphAccess`] abstracts the read surface the matchers of
//!   `bgpq-matching` need (labels, values, adjacency, degrees, label
//!   lookups), so the same `VF2`/`gsim` code runs on a whole [`Graph`] or on
//!   a fragment view without knowing which;
//! * [`FragmentView`] implements it as a *borrow* of the base graph plus the
//!   fragment's node set: a bitset records membership, and fragment-local
//!   adjacency lists (CSR layout) are built once per query by filtering the
//!   parent adjacency — node ids remain **parent ids** throughout, so no
//!   remapping ever happens;
//! * [`ScratchArena`] owns the buffers a view is built into. A session layer
//!   (the `bgpq-engine` `Engine`) keeps arenas across queries, so steady-state
//!   fragment construction performs no allocations at all.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::label::Label;
use crate::subgraph::Subgraph;
use crate::value::Value;

/// The read-only graph surface pattern matchers run against.
///
/// Implemented by [`Graph`] (the whole data graph) and by [`FragmentView`]
/// (a zero-copy view of a fragment `G_Q ⊆ G`). All node ids handed in and
/// out are ids of the underlying *base* graph; a view merely restricts which
/// nodes and edges are visible.
pub trait GraphAccess {
    /// Number of visible nodes.
    fn node_count(&self) -> usize;

    /// Number of visible directed edges.
    fn edge_count(&self) -> usize;

    /// True when `v` is a visible node.
    fn contains_node(&self, v: NodeId) -> bool;

    /// The label `f(v)` of node `v`.
    ///
    /// # Panics
    /// May panic when `v` is not a node of the underlying graph.
    fn label(&self, v: NodeId) -> Label;

    /// The attribute value `ν(v)` of node `v`.
    ///
    /// # Panics
    /// May panic when `v` is not a node of the underlying graph.
    fn value(&self, v: NodeId) -> &Value;

    /// Visible out-neighbors of `v`, sorted by node id. Empty when `v` is
    /// not visible.
    fn out_neighbors(&self, v: NodeId) -> &[NodeId];

    /// Visible in-neighbors of `v`, sorted by node id. Empty when `v` is
    /// not visible.
    fn in_neighbors(&self, v: NodeId) -> &[NodeId];

    /// True when the directed edge `(src, dst)` is visible.
    fn has_edge(&self, src: NodeId, dst: NodeId) -> bool;

    /// Visible nodes carrying `label`, sorted by node id.
    fn nodes_with_label(&self, label: Label) -> &[NodeId];

    /// Iterates over all visible node ids, ascending.
    fn node_ids(&self) -> Box<dyn Iterator<Item = NodeId> + '_>;

    /// Iterates over all visible directed edges, ascending by `(src, dst)`.
    fn edge_ids(&self) -> Box<dyn Iterator<Item = EdgeId> + '_>;

    /// Visible out-degree of `v`.
    fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// Visible in-degree of `v`.
    fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Number of visible nodes carrying `label`.
    fn label_count(&self, label: Label) -> usize {
        self.nodes_with_label(label).len()
    }

    /// `|G| = |V| + |E|` of the visible graph.
    fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }
}

impl GraphAccess for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn contains_node(&self, v: NodeId) -> bool {
        Graph::contains_node(self, v)
    }

    fn label(&self, v: NodeId) -> Label {
        Graph::label(self, v)
    }

    fn value(&self, v: NodeId) -> &Value {
        Graph::value(self, v)
    }

    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        Graph::out_neighbors(self, v)
    }

    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        Graph::in_neighbors(self, v)
    }

    fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        Graph::has_edge(self, src, dst)
    }

    fn nodes_with_label(&self, label: Label) -> &[NodeId] {
        Graph::nodes_with_label(self, label)
    }

    fn node_ids(&self) -> Box<dyn Iterator<Item = NodeId> + '_> {
        Box::new(self.nodes())
    }

    fn edge_ids(&self) -> Box<dyn Iterator<Item = EdgeId> + '_> {
        Box::new(self.edges())
    }

    fn out_degree(&self, v: NodeId) -> usize {
        Graph::out_degree(self, v)
    }

    fn in_degree(&self, v: NodeId) -> usize {
        Graph::in_degree(self, v)
    }

    fn label_count(&self, label: Label) -> usize {
        Graph::label_count(self, label)
    }
}

/// Reusable buffers a [`FragmentView`] is built into.
///
/// One arena serves one view at a time; building a new view overwrites the
/// previous one's storage (the borrow checker enforces this — a view borrows
/// the arena for its whole lifetime). Session layers keep a pool of arenas
/// and hand one to each bounded execution, so per-query fragment
/// construction reuses capacity instead of allocating.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Fragment nodes (parent ids), sorted ascending.
    nodes: Vec<NodeId>,
    /// Bitset over parent node ids: membership in the fragment.
    membership: Vec<u64>,
    /// `slot_of[parent_id]` = index into `nodes`; only valid for members.
    slot_of: Vec<u32>,
    /// CSR offsets into `out_adj`, one entry per fragment node plus one.
    out_start: Vec<u32>,
    /// Concatenated fragment-local out-adjacency, sorted per node.
    out_adj: Vec<NodeId>,
    /// CSR offsets into `in_adj`.
    in_start: Vec<u32>,
    /// Concatenated fragment-local in-adjacency, sorted per node.
    in_adj: Vec<NodeId>,
    /// Fragment nodes regrouped by label (each group sorted by node id).
    by_label: Vec<NodeId>,
    /// `(label, start, end)` ranges into `by_label`, sorted by label.
    label_ranges: Vec<(Label, u32, u32)>,
    /// Scratch for building `in_adj` from an explicit edge list.
    edge_scratch: Vec<(NodeId, NodeId)>,
}

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears every buffer (keeping capacity) and sizes the membership
    /// bitset and slot table for `parent_nodes` parent ids.
    fn reset(&mut self, parent_nodes: usize) {
        self.nodes.clear();
        self.out_start.clear();
        self.out_adj.clear();
        self.in_start.clear();
        self.in_adj.clear();
        self.by_label.clear();
        self.label_ranges.clear();
        self.edge_scratch.clear();
        let words = parent_nodes.div_ceil(64);
        self.membership.clear();
        self.membership.resize(words, 0);
        // `slot_of` entries are only read behind a membership check, so
        // stale values from a previous fragment never leak.
        if self.slot_of.len() < parent_nodes {
            self.slot_of.resize(parent_nodes, 0);
        }
    }

    fn set_nodes(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        self.nodes.extend(nodes);
        self.nodes.sort_unstable();
        self.nodes.dedup();
        for (i, &v) in self.nodes.iter().enumerate() {
            self.membership[v.index() / 64] |= 1 << (v.index() % 64);
            self.slot_of[v.index()] = i as u32;
        }
    }

    fn contains(&self, v: NodeId) -> bool {
        self.membership
            .get(v.index() / 64)
            .is_some_and(|w| w & (1 << (v.index() % 64)) != 0)
    }

    /// Fills the adjacency CSR with the *induced* edges: every parent edge
    /// whose both endpoints are fragment members.
    fn fill_induced_adjacency(&mut self, graph: &Graph) {
        for i in 0..self.nodes.len() {
            let v = self.nodes[i];
            self.out_start.push(self.out_adj.len() as u32);
            for &w in graph.out_neighbors(v) {
                if self.contains(w) {
                    self.out_adj.push(w);
                }
            }
        }
        self.out_start.push(self.out_adj.len() as u32);
        for i in 0..self.nodes.len() {
            let v = self.nodes[i];
            self.in_start.push(self.in_adj.len() as u32);
            for &w in graph.in_neighbors(v) {
                if self.contains(w) {
                    self.in_adj.push(w);
                }
            }
        }
        self.in_start.push(self.in_adj.len() as u32);
    }

    /// Fills the adjacency CSR from an explicit edge set (ascending by
    /// `(src, dst)`, endpoints guaranteed to be members).
    fn fill_explicit_adjacency(&mut self, edges: impl Iterator<Item = (NodeId, NodeId)>) {
        self.edge_scratch.extend(edges);
        // Out-adjacency: the edge list is already sorted by (src, dst).
        let mut cursor = 0usize;
        for &v in &self.nodes {
            self.out_start.push(self.out_adj.len() as u32);
            while cursor < self.edge_scratch.len() && self.edge_scratch[cursor].0 == v {
                self.out_adj.push(self.edge_scratch[cursor].1);
                cursor += 1;
            }
        }
        self.out_start.push(self.out_adj.len() as u32);
        // In-adjacency: re-sort by (dst, src) and walk again.
        self.edge_scratch.sort_unstable_by_key(|&(s, d)| (d, s));
        let mut cursor = 0usize;
        for &v in &self.nodes {
            self.in_start.push(self.in_adj.len() as u32);
            while cursor < self.edge_scratch.len() && self.edge_scratch[cursor].1 == v {
                self.in_adj.push(self.edge_scratch[cursor].0);
                cursor += 1;
            }
        }
        self.in_start.push(self.in_adj.len() as u32);
    }

    /// Groups the fragment nodes by label for `nodes_with_label` lookups.
    fn fill_label_ranges(&mut self, graph: &Graph) {
        self.by_label.extend_from_slice(&self.nodes);
        self.by_label.sort_unstable_by_key(|&v| (graph.label(v), v));
        let mut start = 0usize;
        while start < self.by_label.len() {
            let label = graph.label(self.by_label[start]);
            let mut end = start + 1;
            while end < self.by_label.len() && graph.label(self.by_label[end]) == label {
                end += 1;
            }
            self.label_ranges.push((label, start as u32, end as u32));
            start = end;
        }
    }
}

/// A zero-copy view of a fragment `G_Q ⊆ G`.
///
/// The view borrows the base [`Graph`] (for labels and attribute values) and
/// a [`ScratchArena`] holding the fragment's membership bitset and
/// fragment-local adjacency. Node ids are **parent ids** — matchers running
/// on the view produce answers directly over `G`, with no remapping.
///
/// Build one with [`FragmentView::induced`] (the hot path: fragment edges
/// are all parent edges between fragment nodes) or
/// [`FragmentView::from_subgraph`] (honors an explicit [`Subgraph`] edge
/// set).
#[derive(Debug, Clone, Copy)]
pub struct FragmentView<'a> {
    graph: &'a Graph,
    arena: &'a ScratchArena,
}

impl<'a> FragmentView<'a> {
    /// Builds the view of the subgraph of `graph` *induced* by `nodes`
    /// (duplicates and ordering of `nodes` don't matter).
    ///
    /// # Panics
    /// Panics if some node id is out of range for `graph`.
    pub fn induced(graph: &'a Graph, nodes: &[NodeId], arena: &'a mut ScratchArena) -> Self {
        assert!(
            nodes.iter().all(|&v| v.index() < Graph::node_count(graph)),
            "fragment node out of range"
        );
        arena.reset(Graph::node_count(graph));
        arena.set_nodes(nodes.iter().copied());
        arena.fill_induced_adjacency(graph);
        arena.fill_label_ranges(graph);
        FragmentView { graph, arena }
    }

    /// Builds the view of an explicit [`Subgraph`] of `graph`, preserving
    /// its exact node and edge sets (which may be sparser than the induced
    /// ones).
    ///
    /// # Panics
    /// Panics if the fragment references node ids out of range for `graph`.
    pub fn from_subgraph(
        graph: &'a Graph,
        fragment: &Subgraph,
        arena: &'a mut ScratchArena,
    ) -> Self {
        assert!(
            fragment
                .nodes()
                .all(|v| v.index() < Graph::node_count(graph)),
            "fragment node out of range"
        );
        arena.reset(Graph::node_count(graph));
        arena.set_nodes(fragment.nodes());
        arena.fill_explicit_adjacency(fragment.edges());
        arena.fill_label_ranges(graph);
        FragmentView { graph, arena }
    }

    /// The base graph this view restricts.
    pub fn base(&self) -> &'a Graph {
        self.graph
    }

    /// The fragment's nodes (parent ids, ascending).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.arena.nodes.iter().copied()
    }

    /// The fragment's slot (dense index into [`FragmentView::nodes`]) of a
    /// parent node, when it is a member.
    fn slot(&self, v: NodeId) -> Option<usize> {
        self.arena
            .contains(v)
            .then(|| self.arena.slot_of[v.index()] as usize)
    }
}

impl GraphAccess for FragmentView<'_> {
    fn node_count(&self) -> usize {
        self.arena.nodes.len()
    }

    fn edge_count(&self) -> usize {
        self.arena.out_adj.len()
    }

    fn contains_node(&self, v: NodeId) -> bool {
        self.arena.contains(v)
    }

    fn label(&self, v: NodeId) -> Label {
        self.graph.label(v)
    }

    fn value(&self, v: NodeId) -> &Value {
        self.graph.value(v)
    }

    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        match self.slot(v) {
            Some(i) => {
                let (s, e) = (self.arena.out_start[i], self.arena.out_start[i + 1]);
                &self.arena.out_adj[s as usize..e as usize]
            }
            None => &[],
        }
    }

    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        match self.slot(v) {
            Some(i) => {
                let (s, e) = (self.arena.in_start[i], self.arena.in_start[i + 1]);
                &self.arena.in_adj[s as usize..e as usize]
            }
            None => &[],
        }
    }

    fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.out_neighbors(src).binary_search(&dst).is_ok()
    }

    fn nodes_with_label(&self, label: Label) -> &[NodeId] {
        match self
            .arena
            .label_ranges
            .binary_search_by_key(&label, |&(l, _, _)| l)
        {
            Ok(i) => {
                let (_, s, e) = self.arena.label_ranges[i];
                &self.arena.by_label[s as usize..e as usize]
            }
            Err(_) => &[],
        }
    }

    fn node_ids(&self) -> Box<dyn Iterator<Item = NodeId> + '_> {
        Box::new(self.arena.nodes.iter().copied())
    }

    fn edge_ids(&self) -> Box<dyn Iterator<Item = EdgeId> + '_> {
        Box::new((0..self.arena.nodes.len()).flat_map(move |i| {
            let src = self.arena.nodes[i];
            let (s, e) = (self.arena.out_start[i], self.arena.out_start[i + 1]);
            self.arena.out_adj[s as usize..e as usize]
                .iter()
                .map(move |&dst| EdgeId::new(src, dst))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond_graph() -> Graph {
        // a0 -> b1, a0 -> c2, b1 -> d3, c2 -> d3, d3 -> a4 (a-labeled again),
        // plus an isolated e5.
        let mut b = GraphBuilder::new();
        let a0 = b.add_node("a", Value::Int(0));
        let b1 = b.add_node("b", Value::Int(1));
        let c2 = b.add_node("c", Value::Int(2));
        let d3 = b.add_node("d", Value::Int(3));
        let a4 = b.add_node("a", Value::Int(4));
        b.add_node("e", Value::Int(5));
        b.add_edge(a0, b1).unwrap();
        b.add_edge(a0, c2).unwrap();
        b.add_edge(b1, d3).unwrap();
        b.add_edge(c2, d3).unwrap();
        b.add_edge(d3, a4).unwrap();
        b.build()
    }

    #[test]
    fn graph_implements_graph_access_consistently() {
        let g = diamond_graph();
        assert_eq!(GraphAccess::node_count(&g), g.node_count());
        assert_eq!(GraphAccess::edge_count(&g), g.edge_count());
        assert_eq!(g.node_ids().count(), 6);
        assert_eq!(g.edge_ids().count(), 5);
        assert_eq!(GraphAccess::out_degree(&g, NodeId(0)), 2);
        assert_eq!(GraphAccess::size(&g), 11);
        let a = g.interner().get("a").unwrap();
        assert_eq!(GraphAccess::label_count(&g, a), 2);
    }

    #[test]
    fn induced_view_restricts_nodes_and_edges() {
        let g = diamond_graph();
        let mut arena = ScratchArena::new();
        // Fragment {a0, b1, d3}: edges a0->b1 and b1->d3 survive; c2's edges
        // and d3->a4 do not.
        let view = FragmentView::induced(&g, &[NodeId(3), NodeId(0), NodeId(1)], &mut arena);
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.edge_count(), 2);
        assert_eq!(view.size(), 5);
        assert!(view.contains_node(NodeId(0)));
        assert!(!view.contains_node(NodeId(2)));
        assert!(!view.contains_node(NodeId(100)));
        assert_eq!(view.out_neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(view.out_neighbors(NodeId(2)), &[] as &[NodeId]);
        assert_eq!(view.in_neighbors(NodeId(3)), &[NodeId(1)]);
        assert!(view.has_edge(NodeId(0), NodeId(1)));
        assert!(!view.has_edge(NodeId(0), NodeId(2))); // c2 invisible
        assert!(!view.has_edge(NodeId(3), NodeId(4))); // a4 invisible
        assert_eq!(view.out_degree(NodeId(1)), 1);
        assert_eq!(view.in_degree(NodeId(1)), 1);
        // Labels and values read through to the parent.
        assert_eq!(view.label(NodeId(3)), g.label(NodeId(3)));
        assert_eq!(view.value(NodeId(3)), &Value::Int(3));
        let a = g.interner().get("a").unwrap();
        assert_eq!(view.nodes_with_label(a), &[NodeId(0)]);
        let e = g.interner().get("e").unwrap();
        assert_eq!(view.nodes_with_label(e), &[] as &[NodeId]);
        assert_eq!(view.label_count(a), 1);
        let edges: Vec<EdgeId> = view.edge_ids().collect();
        assert_eq!(
            edges,
            vec![
                EdgeId::new(NodeId(0), NodeId(1)),
                EdgeId::new(NodeId(1), NodeId(3))
            ]
        );
    }

    #[test]
    fn from_subgraph_honors_sparser_edge_sets() {
        let g = diamond_graph();
        let mut s = Subgraph::new();
        s.insert_edge(NodeId(0), NodeId(1));
        s.insert_node(NodeId(3)); // member, but the b1->d3 edge is left out
        let mut arena = ScratchArena::new();
        let view = FragmentView::from_subgraph(&g, &s, &mut arena);
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.edge_count(), 1);
        assert!(view.has_edge(NodeId(0), NodeId(1)));
        // The induced edge b1->d3 exists in the parent but not in the
        // explicit fragment, so the view must not show it.
        assert!(!view.has_edge(NodeId(1), NodeId(3)));
        assert_eq!(view.out_neighbors(NodeId(1)), &[] as &[NodeId]);
        assert_eq!(view.in_neighbors(NodeId(3)), &[] as &[NodeId]);
    }

    #[test]
    fn induced_view_equals_subgraph_induced() {
        let g = diamond_graph();
        let nodes = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let s = Subgraph::induced(&g, nodes);
        let mut arena = ScratchArena::new();
        let view = FragmentView::induced(&g, &nodes, &mut arena);
        assert_eq!(view.node_count(), s.node_count());
        assert_eq!(view.edge_count(), s.edge_count());
        for e in view.edge_ids() {
            assert!(s.contains_edge(e.src, e.dst));
        }
    }

    /// The differential oracle: a view over a fragment must present exactly
    /// the graph [`Subgraph::materialize`] builds, modulo the id remapping
    /// the materialized path needs and the view avoids.
    #[test]
    fn view_iteration_equals_materialized_subgraph() {
        let g = diamond_graph();
        let fragments: Vec<Subgraph> = vec![
            Subgraph::induced(&g, [NodeId(0), NodeId(1), NodeId(3), NodeId(4)]),
            Subgraph::induced(&g, g.nodes()),
            Subgraph::induced(&g, [NodeId(5)]),
            Subgraph::new(),
            {
                let mut s = Subgraph::new();
                s.insert_edge(NodeId(0), NodeId(2));
                s.insert_node(NodeId(4));
                s
            },
        ];
        for fragment in &fragments {
            let m = fragment.materialize(&g);
            let mut arena = ScratchArena::new();
            let view = FragmentView::from_subgraph(&g, fragment, &mut arena);

            assert_eq!(view.node_count(), m.graph.node_count());
            assert_eq!(view.edge_count(), m.graph.edge_count());
            // Node-by-node: labels, values, degrees and adjacency agree once
            // local ids are translated back to parent ids.
            for (local_idx, parent) in m.to_parent.iter().enumerate() {
                let local = NodeId(local_idx as u32);
                assert!(view.contains_node(*parent));
                assert_eq!(view.label(*parent), m.graph.label(local));
                assert_eq!(view.value(*parent), m.graph.value(local));
                let out: Vec<NodeId> = m
                    .graph
                    .out_neighbors(local)
                    .iter()
                    .map(|&w| m.parent_node(w))
                    .collect();
                assert_eq!(view.out_neighbors(*parent), out.as_slice());
                let inc: Vec<NodeId> = m
                    .graph
                    .in_neighbors(local)
                    .iter()
                    .map(|&w| m.parent_node(w))
                    .collect();
                assert_eq!(view.in_neighbors(*parent), inc.as_slice());
            }
            // Label lookups agree.
            for label in g.interner().labels() {
                let through_view: Vec<NodeId> = view.nodes_with_label(label).to_vec();
                let mut through_mat: Vec<NodeId> = m
                    .graph
                    .nodes_with_label(label)
                    .iter()
                    .map(|&v| m.parent_node(v))
                    .collect();
                through_mat.sort_unstable();
                assert_eq!(through_view, through_mat);
            }
        }
    }

    #[test]
    fn arena_reuse_rebuilds_cleanly() {
        let g = diamond_graph();
        let mut arena = ScratchArena::new();
        {
            let view = FragmentView::induced(&g, &[NodeId(0), NodeId(1), NodeId(2)], &mut arena);
            assert_eq!(view.node_count(), 3);
            assert!(view.contains_node(NodeId(2)));
        }
        // Rebuild with a disjoint fragment: nothing from the first build may
        // leak through.
        let view = FragmentView::induced(&g, &[NodeId(3), NodeId(4)], &mut arena);
        assert_eq!(view.node_count(), 2);
        assert!(!view.contains_node(NodeId(0)));
        assert!(!view.contains_node(NodeId(2)));
        assert!(view.has_edge(NodeId(3), NodeId(4)));
        assert_eq!(view.out_neighbors(NodeId(3)), &[NodeId(4)]);

        // And duplicates in the node list are deduplicated.
        let view = FragmentView::induced(&g, &[NodeId(1), NodeId(1)], &mut arena);
        assert_eq!(view.node_count(), 1);
        assert_eq!(view.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_nodes_are_rejected() {
        let g = diamond_graph();
        let mut arena = ScratchArena::new();
        let _ = FragmentView::induced(&g, &[NodeId(99)], &mut arena);
    }

    #[test]
    fn empty_view_behaves() {
        let g = diamond_graph();
        let mut arena = ScratchArena::new();
        let view = FragmentView::induced(&g, &[], &mut arena);
        assert_eq!(view.node_count(), 0);
        assert_eq!(view.edge_count(), 0);
        assert_eq!(view.node_ids().count(), 0);
        assert_eq!(view.edge_ids().count(), 0);
        assert!(!view.contains_node(NodeId(0)));
        let a = g.interner().get("a").unwrap();
        assert_eq!(view.nodes_with_label(a), &[] as &[NodeId]);
    }
}
