//! Worker-aware pooling of [`ScratchArena`]s.
//!
//! The engine originally kept a flat `Mutex<Vec<ScratchArena>>` checkout
//! pool — correct, but built on the latent assumption that arenas are
//! engine-local and anonymous: any execution grabs any arena, and a pool
//! shared with a parallel (sharded) execution path would funnel every worker
//! through one lock and one LIFO stack, with no affinity between a worker
//! thread and the buffers it warmed.
//!
//! [`ArenaPool`] makes the pool worker-aware: it owns one slot per expected
//! worker thread, each behind its own `Mutex`. A parallel execution pins
//! worker `i` to slot `i` ([`ArenaPool::with_worker`]) — no contention
//! between workers, stable buffer reuse per thread, and two concurrent
//! executions can never alias an arena (the `Mutex` per slot makes aliasing
//! unrepresentable; the engine's concurrency test locks this down).
//! Anonymous callers ([`ArenaPool::with_any`]) scan for a free slot and fall
//! back to an overflow stack, so oversubscription degrades to extra arenas,
//! never to blocking behind a busy slot.

use crate::view::ScratchArena;
use std::sync::Mutex;

/// A pool of [`ScratchArena`]s with one dedicated slot per worker thread.
#[derive(Debug, Default)]
pub struct ArenaPool {
    /// One slot per expected worker; `with_worker(i)` uses slot `i % len`.
    slots: Vec<Mutex<ScratchArena>>,
    /// Extra arenas for oversubscribed `with_any` callers.
    overflow: Mutex<Vec<ScratchArena>>,
}

impl ArenaPool {
    /// A pool with `workers` dedicated slots (at least one).
    pub fn new(workers: usize) -> Self {
        ArenaPool {
            slots: (0..workers.max(1))
                .map(|_| Mutex::new(ScratchArena::new()))
                .collect(),
            overflow: Mutex::new(Vec::new()),
        }
    }

    /// Number of dedicated worker slots.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Runs `f` with the arena dedicated to `worker`. Distinct worker ids
    /// below [`ArenaPool::workers`] never contend; a worker id past the end
    /// wraps around (and may then block until its shared slot frees up —
    /// callers spawning more workers than slots should size the pool to the
    /// thread count instead).
    pub fn with_worker<R>(&self, worker: usize, f: impl FnOnce(&mut ScratchArena) -> R) -> R {
        let mut arena = self.slots[worker % self.slots.len()]
            .lock()
            .expect("arena slot poisoned");
        f(&mut arena)
    }

    /// Runs `f` with any free arena: the first unlocked slot, else an arena
    /// popped from (and returned to) the overflow stack. Never blocks on a
    /// busy slot, so concurrent callers always get distinct arenas.
    pub fn with_any<R>(&self, f: impl FnOnce(&mut ScratchArena) -> R) -> R {
        for slot in &self.slots {
            if let Ok(mut arena) = slot.try_lock() {
                return f(&mut arena);
            }
        }
        let mut arena = self
            .overflow
            .lock()
            .expect("arena overflow poisoned")
            .pop()
            .unwrap_or_default();
        let result = f(&mut arena);
        self.overflow
            .lock()
            .expect("arena overflow poisoned")
            .push(arena);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn worker_slots_are_distinct() {
        let pool = ArenaPool::new(4);
        assert_eq!(pool.workers(), 4);
        let a0 = pool.with_worker(0, |a| a as *mut ScratchArena as usize);
        let a1 = pool.with_worker(1, |a| a as *mut ScratchArena as usize);
        assert_ne!(a0, a1, "distinct workers must get distinct arenas");
        // The same worker gets its own slot back.
        assert_eq!(a0, pool.with_worker(0, |a| a as *mut ScratchArena as usize));
        // Wrap-around shares the slot of worker 0.
        assert_eq!(a0, pool.with_worker(4, |a| a as *mut ScratchArena as usize));
    }

    #[test]
    fn with_any_never_hands_out_a_busy_arena() {
        let pool = ArenaPool::new(1);
        let barrier = Barrier::new(2);
        let overlap = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    pool.with_any(|arena| {
                        let addr = arena as *mut ScratchArena as usize;
                        // Both threads hold an arena across this barrier, so
                        // the addresses they publish describe overlapping
                        // checkouts — they must differ.
                        barrier.wait();
                        let prev = overlap.swap(addr, Ordering::SeqCst);
                        if prev != 0 {
                            assert_ne!(prev, addr, "concurrent checkouts aliased one arena");
                        }
                        barrier.wait();
                    });
                });
            }
        });
    }
}
