//! Incremental construction of [`Graph`]s.
//!
//! The builder accepts nodes (label name + value) and directed edges in any
//! order, deduplicates parallel edges, and produces an immutable [`Graph`]
//! with sorted adjacency and a label index.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::label::{Label, LabelInterner};
use crate::label_index::LabelIndex;
use crate::value::Value;
use crate::Result;
use std::collections::HashSet;

/// Builder for [`Graph`].
///
/// ```
/// use bgpq_graph::{GraphBuilder, Value};
///
/// let mut b = GraphBuilder::new();
/// let movie = b.add_node("movie", Value::str("Argo"));
/// let actor = b.add_node("actor", Value::str("Alan"));
/// b.add_edge(movie, actor).unwrap();
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// assert!(g.has_edge(movie, actor));
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    interner: LabelInterner,
    labels: Vec<Label>,
    values: Vec<Value>,
    edges: Vec<(NodeId, NodeId)>,
    edge_set: HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder with a fresh label interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that reuses an existing label interner, so that the
    /// produced graph shares label ids with previously built artifacts
    /// (patterns, schemas).
    pub fn with_interner(interner: LabelInterner) -> Self {
        GraphBuilder {
            interner,
            ..Self::default()
        }
    }

    /// Creates a builder with capacity hints for nodes and edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            interner: LabelInterner::new(),
            labels: Vec::with_capacity(nodes),
            values: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            edge_set: HashSet::with_capacity(edges),
        }
    }

    /// Access to the interner being populated.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Interns a label name without creating a node.
    pub fn intern_label(&mut self, name: &str) -> Label {
        self.interner.intern(name)
    }

    /// Adds a node with a label given by name, returning its id.
    pub fn add_node(&mut self, label_name: &str, value: Value) -> NodeId {
        let label = self.interner.intern(label_name);
        self.add_node_labeled(label, value)
    }

    /// Adds a node with an already-interned label.
    pub fn add_node_labeled(&mut self, label: Label, value: Value) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label);
        self.values.push(value);
        id
    }

    /// Adds a directed edge `(src, dst)`.
    ///
    /// Duplicate edges are ignored (the graph is simple); referencing a
    /// missing endpoint is an error.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<()> {
        let n = self.labels.len() as u32;
        if src.0 >= n || dst.0 >= n {
            return Err(GraphError::EndpointNotFound {
                src: src.0 as u64,
                dst: dst.0 as u64,
            });
        }
        if self.edge_set.insert((src, dst)) {
            self.edges.push((src, dst));
        }
        Ok(())
    }

    /// Adds every edge in `edges`; stops at the first error.
    pub fn add_edges<I>(&mut self, edges: I) -> Result<()>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        for (src, dst) in edges {
            self.add_edge(src, dst)?;
        }
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.labels.len();
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut inc: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(src, dst) in &self.edges {
            out[src.index()].push(dst);
            inc[dst.index()].push(src);
        }
        for list in out.iter_mut().chain(inc.iter_mut()) {
            list.sort_unstable();
        }
        let label_index = LabelIndex::build(&self.labels);
        Graph {
            interner: self.interner,
            labels: self.labels,
            values: self.values,
            out,
            inc,
            edge_count: self.edges.len(),
            label_index,
            dead_count: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", Value::Null);
        let c = b.add_node("b", Value::Int(1));
        b.add_edge(a, c).unwrap();
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.edge_count(), 1);
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, c));
        assert!(!g.has_edge(c, a));
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", Value::Null);
        let c = b.add_node("b", Value::Null);
        b.add_edge(a, c).unwrap();
        b.add_edge(a, c).unwrap();
        assert_eq!(b.edge_count(), 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_neighbors(a), &[c]);
    }

    #[test]
    fn missing_endpoint_is_an_error() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", Value::Null);
        let err = b.add_edge(a, NodeId(5)).unwrap_err();
        assert!(matches!(err, GraphError::EndpointNotFound { .. }));
    }

    #[test]
    fn add_edges_bulk() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", Value::Null);
        let c = b.add_node("b", Value::Null);
        let d = b.add_node("c", Value::Null);
        b.add_edges([(a, c), (c, d), (d, a)]).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn with_interner_shares_label_ids() {
        let mut interner = LabelInterner::new();
        let movie = interner.intern("movie");
        let mut b = GraphBuilder::with_interner(interner);
        let m = b.add_node("movie", Value::Null);
        let g = b.build();
        assert_eq!(g.label(m), movie);
    }

    #[test]
    fn adjacency_is_sorted_regardless_of_insertion_order() {
        let mut b = GraphBuilder::with_capacity(4, 3);
        let hub = b.add_node("hub", Value::Null);
        let n3 = b.add_node("x", Value::Null);
        let n2 = b.add_node("x", Value::Null);
        let n1 = b.add_node("x", Value::Null);
        // Insert in descending order of destination id.
        b.add_edge(hub, n1).unwrap();
        b.add_edge(hub, n2).unwrap();
        b.add_edge(hub, n3).unwrap();
        let g = b.build();
        let out = g.out_neighbors(hub);
        let mut sorted = out.to_vec();
        sorted.sort_unstable();
        assert_eq!(out, sorted.as_slice());
    }

    #[test]
    fn intern_label_without_node() {
        let mut b = GraphBuilder::new();
        let l = b.intern_label("ghost");
        assert_eq!(b.interner().get("ghost"), Some(l));
        let g = b.build();
        assert_eq!(g.label_count(l), 0);
    }
}
