//! Node attribute values.
//!
//! In the paper every data node `v` carries an attribute value `ν(v)` of its
//! label, e.g. `year = 2011`, and pattern predicates compare that value with
//! constants using `=, ≠, <, ≤, >, ≥`. [`Value`] is the dynamically typed
//! value used on both sides of those comparisons.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed attribute value attached to a data node.
///
/// Values of different types are never considered equal (apart from the
/// integer/float numeric tower, which compares numerically) and comparisons
/// across incomparable types return `None` from [`Value::partial_cmp_value`].
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// Absence of a value; the default for nodes without attributes.
    #[default]
    Null,
    /// Boolean attribute.
    Bool(bool),
    /// 64-bit signed integer attribute (years, counts, ids...).
    Int(i64),
    /// 64-bit float attribute (ratings, weights...).
    Float(f64),
    /// String attribute (names, titles, URLs...).
    Str(String),
}

impl Value {
    /// Builds a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns `true` when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer content, if this value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float content, coercing integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string content, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
        }
    }

    /// Compares two values, returning `None` when the types are incomparable.
    ///
    /// Numeric values (`Int`, `Float`) are compared on the numeric line;
    /// `NaN` floats are incomparable with everything including themselves.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Structural/numeric equality used by `=` predicates.
    pub fn eq_value(&self, other: &Value) -> bool {
        matches!(self.partial_cmp_value(other), Some(Ordering::Equal))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.eq_value(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_tower_comparisons() {
        assert_eq!(
            Value::Int(3).partial_cmp_value(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).partial_cmp_value(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(5).partial_cmp_value(&Value::Int(4)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(Value::Int(1).partial_cmp_value(&Value::str("1")), None);
        assert_eq!(Value::Bool(true).partial_cmp_value(&Value::Int(1)), None);
        assert_eq!(Value::Null.partial_cmp_value(&Value::Int(0)), None);
    }

    #[test]
    fn nan_is_incomparable() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.partial_cmp_value(&Value::Float(1.0)), None);
        assert!(!nan.eq_value(&nan));
    }

    #[test]
    fn equality_follows_numeric_comparison() {
        assert_eq!(Value::Int(7), Value::Float(7.0));
        assert_ne!(Value::Int(7), Value::str("7"));
        assert_eq!(Value::str("abc"), Value::str("abc"));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(1.5f64).as_float(), Some(1.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(String::from("y")).as_str(), Some("y"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn display_and_type_names() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
        assert_eq!(Value::Bool(false).type_name(), "bool");
        assert_eq!(Value::Float(0.0).type_name(), "float");
    }
}
