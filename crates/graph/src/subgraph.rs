//! Subgraph fragments `G_Q ⊆ G`.
//!
//! A query plan for an effectively bounded query fetches a *bounded* set of
//! nodes and edges from the big graph `G`; [`Subgraph`] is the container for
//! that fragment. It stores parent node ids and parent edges, and can be
//! materialized into a standalone [`Graph`] (sharing the parent's label
//! alphabet), together with the mapping back to parent node ids.
//!
//! Materialization copies the fragment — interner clone, node re-insertion,
//! two rounds of id remapping — and is **not** the execution hot path
//! anymore: the bounded executors run the matchers on a zero-copy
//! [`crate::FragmentView`] instead. [`Subgraph::materialize`] remains as the
//! slow, obviously-correct oracle the view is differentially tested against.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// A set of nodes and edges of some parent graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subgraph {
    nodes: BTreeSet<NodeId>,
    edges: BTreeSet<(NodeId, NodeId)>,
}

/// A [`Subgraph`] materialized as a standalone [`Graph`].
#[derive(Debug, Clone)]
pub struct MaterializedSubgraph {
    /// The standalone graph over renumbered node ids.
    pub graph: Graph,
    /// `to_parent[new_id] = parent_id` for every node of `graph`.
    pub to_parent: Vec<NodeId>,
}

impl MaterializedSubgraph {
    /// Translates a node of the materialized graph back to the parent graph.
    pub fn parent_node(&self, local: NodeId) -> NodeId {
        self.to_parent[local.index()]
    }
}

impl Subgraph {
    /// Creates an empty subgraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The subgraph induced by `nodes` in `parent`: it contains every edge of
    /// `parent` whose both endpoints are in `nodes`.
    pub fn induced(parent: &Graph, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let node_set: BTreeSet<NodeId> = nodes.into_iter().collect();
        let mut edges = BTreeSet::new();
        for &v in &node_set {
            for &w in parent.out_neighbors(v) {
                if node_set.contains(&w) {
                    edges.insert((v, w));
                }
            }
        }
        Subgraph {
            nodes: node_set,
            edges,
        }
    }

    /// Adds a (parent) node to the fragment.
    pub fn insert_node(&mut self, v: NodeId) -> bool {
        self.nodes.insert(v)
    }

    /// Adds a (parent) directed edge to the fragment; both endpoints are
    /// inserted as well so the fragment stays a well-formed graph.
    pub fn insert_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        self.nodes.insert(src);
        self.nodes.insert(dst);
        self.edges.insert((src, dst))
    }

    /// Nodes of the fragment (parent ids, ascending).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Edges of the fragment (parent ids, ascending).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }

    /// True when the fragment contains `v`.
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// True when the fragment contains the directed edge `(src, dst)`.
    pub fn contains_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.edges.contains(&(src, dst))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `|G_Q| = |V_Q| + |E_Q|`.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// True when the fragment has neither nodes nor edges.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// Merges another fragment into this one.
    pub fn union_with(&mut self, other: &Subgraph) {
        self.nodes.extend(other.nodes.iter().copied());
        self.edges.extend(other.edges.iter().copied());
    }

    /// Checks that every edge of the fragment exists in `parent` and that
    /// every node id is valid — i.e. the fragment really is a subgraph of
    /// `parent`.
    pub fn is_subgraph_of(&self, parent: &Graph) -> bool {
        self.nodes.iter().all(|&v| parent.contains_node(v))
            && self.edges.iter().all(|&(s, d)| parent.has_edge(s, d))
    }

    /// Materializes the fragment as a standalone [`Graph`] carrying the
    /// parent's labels, values and label alphabet.
    pub fn materialize(&self, parent: &Graph) -> MaterializedSubgraph {
        let mut builder = GraphBuilder::with_interner(parent.interner().clone());
        let mut to_local: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut to_parent = Vec::with_capacity(self.nodes.len());
        for &v in &self.nodes {
            let local = builder.add_node_labeled(parent.label(v), parent.value(v).clone());
            to_local.insert(v, local);
            to_parent.push(v);
        }
        for &(src, dst) in &self.edges {
            let (ls, ld) = (to_local[&src], to_local[&dst]);
            builder
                .add_edge(ls, ld)
                .expect("endpoints were inserted above");
        }
        MaterializedSubgraph {
            graph: builder.build(),
            to_parent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn chain_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(&format!("l{i}"), Value::Int(i as i64)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build()
    }

    #[test]
    fn insert_edge_adds_endpoints() {
        let mut s = Subgraph::new();
        assert!(s.insert_edge(NodeId(3), NodeId(5)));
        assert!(s.contains_node(NodeId(3)));
        assert!(s.contains_node(NodeId(5)));
        assert!(s.contains_edge(NodeId(3), NodeId(5)));
        assert!(!s.contains_edge(NodeId(5), NodeId(3)));
        assert_eq!(s.size(), 3);
        // Re-inserting is a no-op.
        assert!(!s.insert_edge(NodeId(3), NodeId(5)));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = chain_graph(5);
        let s = Subgraph::induced(&g, [NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.edge_count(), 1); // only (1,2); (2,3) and (3,4) touch node 3
        assert!(s.contains_edge(NodeId(1), NodeId(2)));
        assert!(s.is_subgraph_of(&g));
    }

    #[test]
    fn is_subgraph_of_detects_foreign_edges() {
        let g = chain_graph(3);
        let mut s = Subgraph::new();
        s.insert_edge(NodeId(0), NodeId(2)); // not an edge of the chain
        assert!(!s.is_subgraph_of(&g));
        let mut s2 = Subgraph::new();
        s2.insert_node(NodeId(17)); // not a node of the chain
        assert!(!s2.is_subgraph_of(&g));
    }

    #[test]
    fn materialize_preserves_labels_values_and_edges() {
        let g = chain_graph(4);
        let s = Subgraph::induced(&g, [NodeId(1), NodeId(2)]);
        let m = s.materialize(&g);
        assert_eq!(m.graph.node_count(), 2);
        assert_eq!(m.graph.edge_count(), 1);
        // Labels and values carried over.
        let local_of_1 = NodeId(0); // parent node 1 is the smallest, so local 0
        assert_eq!(m.parent_node(local_of_1), NodeId(1));
        assert_eq!(m.graph.label(local_of_1), g.label(NodeId(1)));
        assert_eq!(m.graph.value(local_of_1), g.value(NodeId(1)));
        // The interner is shared, so label names resolve identically.
        assert_eq!(m.graph.label_name(local_of_1), "l1");
    }

    #[test]
    fn union_merges_fragments() {
        let mut a = Subgraph::new();
        a.insert_edge(NodeId(0), NodeId(1));
        let mut b = Subgraph::new();
        b.insert_edge(NodeId(1), NodeId(2));
        a.union_with(&b);
        assert_eq!(a.node_count(), 3);
        assert_eq!(a.edge_count(), 2);
        assert!(!a.is_empty());
        assert!(Subgraph::new().is_empty());
    }

    #[test]
    fn empty_materialization() {
        let g = chain_graph(2);
        let m = Subgraph::new().materialize(&g);
        assert_eq!(m.graph.node_count(), 0);
        assert_eq!(m.graph.edge_count(), 0);
    }
}
