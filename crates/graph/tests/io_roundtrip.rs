//! Round-trip guarantees of the text interchange format: parse → serialize →
//! parse yields an identical graph, and serialization is a fixpoint.

use bgpq_graph::io::{read_graph, write_graph};
use bgpq_graph::{Graph, GraphBuilder, Value};
use std::io::Cursor;

/// Structural equality over the public API: same nodes (label name + value),
/// same adjacency, same label alphabet behaviour.
fn assert_same_graph(a: &Graph, b: &Graph) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    for v in a.nodes() {
        assert_eq!(a.label_name(v), b.label_name(v), "label of {v}");
        assert_eq!(a.value(v), b.value(v), "value of {v}");
        assert_eq!(a.out_neighbors(v), b.out_neighbors(v), "out of {v}");
        assert_eq!(a.in_neighbors(v), b.in_neighbors(v), "in of {v}");
    }
    assert_eq!(a.distinct_label_count(), b.distinct_label_count());
}

fn serialize(g: &Graph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_graph(g, &mut buf).unwrap();
    buf
}

/// A graph exercising every value type, multi-label nodes, string escapes
/// and non-trivial adjacency.
fn sample_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let m1 = b.add_node("movie", Value::str("Argo"));
    let m2 = b.add_node("movie", Value::str("with spaces and \"quotes\""));
    let y = b.add_node("year", Value::Int(2012));
    let r = b.add_node("rating", Value::Float(7.7));
    let f = b.add_node("flag", Value::Bool(true));
    let n = b.add_node("misc", Value::Null);
    let neg = b.add_node("offset", Value::Int(-42));
    b.add_edge(y, m1).unwrap();
    b.add_edge(y, m2).unwrap();
    b.add_edge(m1, r).unwrap();
    b.add_edge(m1, f).unwrap();
    b.add_edge(m2, n).unwrap();
    b.add_edge(neg, m2).unwrap();
    b.build()
}

#[test]
fn parse_serialize_parse_is_identity() {
    let g1 = sample_graph();
    let text1 = serialize(&g1);
    let g2 = read_graph(Cursor::new(&text1)).unwrap();
    assert_same_graph(&g1, &g2);
    // And serialization is a fixpoint: the second dump is byte-identical.
    let text2 = serialize(&g2);
    assert_eq!(text1, text2);
}

#[test]
fn externally_authored_text_round_trips() {
    // Non-contiguous ids, comments, blank lines, values of every kind.
    let text = "\
# a hand-written graph
n 100 movie \"Argo\"
n 7 year 2012

n 3 rating 7.5
n 4 flag false
n 5 misc
e 7 100
e 100 3
e 100 4
e 100 5
";
    let g1 = read_graph(Cursor::new(text)).unwrap();
    assert_eq!(g1.node_count(), 5);
    assert_eq!(g1.edge_count(), 4);
    let dump1 = serialize(&g1);
    let g2 = read_graph(Cursor::new(&dump1)).unwrap();
    assert_same_graph(&g1, &g2);
    assert_eq!(dump1, serialize(&g2));
}

#[test]
fn labels_with_whitespace_and_quotes_round_trip() {
    let mut b = GraphBuilder::new();
    let sf = b.add_node("science fiction", Value::str("Dune"));
    let q = b.add_node("odd \"label\"", Value::Int(1));
    let tab = b.add_node("tab\tseparated", Value::Null);
    b.add_edge(sf, q).unwrap();
    b.add_edge(q, tab).unwrap();
    let g1 = b.build();
    let text1 = serialize(&g1);
    let g2 = read_graph(Cursor::new(&text1)).unwrap();
    assert_same_graph(&g1, &g2);
    assert_eq!(g2.label_name(sf), "science fiction");
    assert_eq!(g2.value(sf), &Value::str("Dune"));
    assert_eq!(g2.label_name(q), "odd \"label\"");
    assert_eq!(g2.label_name(tab), "tab\tseparated");
    assert_eq!(text1, serialize(&g2));
}

#[test]
fn unterminated_quoted_label_is_a_parse_error() {
    let err = read_graph(Cursor::new("n 0 \"broken label 1\n")).unwrap_err();
    assert!(err.to_string().contains("unterminated"), "{err}");
}

#[test]
fn empty_label_round_trips_as_quoted_token() {
    let mut b = GraphBuilder::new();
    let v = b.add_node("", Value::Int(1));
    let g1 = b.build();
    let text = serialize(&g1);
    assert!(std::str::from_utf8(&text).unwrap().contains("n 0 \"\" 1"));
    let g2 = read_graph(Cursor::new(&text)).unwrap();
    assert_same_graph(&g1, &g2);
    assert_eq!(g2.label_name(v), "");
    // A truly missing label is still rejected.
    let err = read_graph(Cursor::new("n 0\n")).unwrap_err();
    assert!(err.to_string().contains("missing node label"), "{err}");
}

#[test]
fn empty_graph_round_trips() {
    let g = Graph::empty();
    let dump = serialize(&g);
    let g2 = read_graph(Cursor::new(&dump)).unwrap();
    assert_same_graph(&g, &g2);
}

#[test]
fn large_generated_graph_round_trips() {
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = (0..500)
        .map(|i| b.add_node(&format!("l{}", i % 13), Value::Int(i)))
        .collect();
    for i in 0..ids.len() {
        b.add_edge(ids[i], ids[(i * 7 + 3) % ids.len()]).unwrap();
        b.add_edge(ids[i], ids[(i * 11 + 5) % ids.len()]).unwrap();
    }
    let g1 = b.build();
    let g2 = read_graph(Cursor::new(serialize(&g1))).unwrap();
    assert_same_graph(&g1, &g2);
}

#[test]
fn mutated_graph_round_trips_as_its_live_content() {
    // Mutate a graph (including a node deletion) and save it: deleted slots
    // must not be written, and the loaded graph must equal the live content
    // with compacted ids.
    let mut g = sample_graph();
    let extra = g.insert_node("movie", Value::str("Gravity"));
    g.insert_edge(extra, bgpq_graph::NodeId(2)).unwrap();
    g.delete_node(bgpq_graph::NodeId(0)).unwrap();

    let g2 = read_graph(Cursor::new(serialize(&g))).unwrap();
    assert_eq!(g2.node_count(), g.live_node_count());
    assert_eq!(g2.edge_count(), g.edge_count());
    assert_eq!(g2.distinct_label_count(), g.distinct_label_count());
    // Every live node survives with its label, value and degree; ids are
    // compacted in order, so live node k of `g` becomes node k of `g2`.
    let live: Vec<_> = g.nodes().filter(|&v| g.is_live(v)).collect();
    for (k, &v) in live.iter().enumerate() {
        let w = bgpq_graph::NodeId(k as u32);
        assert_eq!(g.label_name(v), g2.label_name(w), "label of {v}");
        assert_eq!(g.value(v), g2.value(w), "value of {v}");
        assert_eq!(g.out_degree(v), g2.out_degree(w), "out degree of {v}");
        assert_eq!(g.in_degree(v), g2.in_degree(w), "in degree of {v}");
    }
    // The serialization of the loaded graph is a fixpoint.
    assert_eq!(
        serialize(&g2),
        serialize(&read_graph(Cursor::new(serialize(&g2))).unwrap())
    );
}
