//! Round-trip guarantees of the binary snapshot container: `save → load` is
//! the identity on the *exact* in-memory representation — including
//! tombstoned slots, which the text writer compacts away — and serialization
//! is deterministic byte for byte.

use bgpq_graph::io::snapshot::{
    encode_graph, read_graph_snapshot, write_graph_snapshot, Section, SnapshotWriter,
};
use bgpq_graph::io::{load_graph_snapshot, save_graph_snapshot};
use bgpq_graph::{Graph, GraphBuilder, NodeId, Value};
use std::io::Cursor;

/// Slot-exact equality: snapshots preserve node ids, tombstones, labels,
/// values and adjacency verbatim (unlike the text round trip, which only
/// preserves live content under compacted ids).
fn assert_identical(a: &Graph, b: &Graph) {
    assert_eq!(a.node_count(), b.node_count(), "slot count");
    assert_eq!(a.live_node_count(), b.live_node_count(), "live count");
    assert_eq!(a.edge_count(), b.edge_count(), "edge count");
    assert_eq!(a.distinct_label_count(), b.distinct_label_count());
    for (la, lb) in a.interner().iter().zip(b.interner().iter()) {
        assert_eq!(la, lb, "interner entry");
    }
    for v in a.nodes() {
        assert_eq!(a.is_live(v), b.is_live(v), "liveness of {v}");
        if !a.is_live(v) {
            continue;
        }
        assert_eq!(a.label(v), b.label(v), "label of {v}");
        assert_eq!(a.label_name(v), b.label_name(v), "label name of {v}");
        match (a.value(v), b.value(v)) {
            // NaN != NaN under PartialEq; the container must still
            // preserve the exact bit pattern.
            (Value::Float(x), Value::Float(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "float bits of {v}")
            }
            (va, vb) => assert_eq!(va, vb, "value of {v}"),
        }
        assert_eq!(a.out_neighbors(v), b.out_neighbors(v), "out of {v}");
        assert_eq!(a.in_neighbors(v), b.in_neighbors(v), "in of {v}");
    }
    for label in a.interner().iter().map(|(l, _)| l) {
        assert_eq!(
            a.nodes_with_label(label),
            b.nodes_with_label(label),
            "label index bucket {label:?}"
        );
    }
}

fn snapshot_bytes(g: &Graph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_graph_snapshot(g, &mut buf).unwrap();
    buf
}

fn round_trip(g: &Graph) -> Graph {
    read_graph_snapshot(Cursor::new(snapshot_bytes(g))).unwrap()
}

/// Tiny deterministic generator (xorshift) so the suite needs no deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Every value type, shared labels, unicode strings, non-trivial adjacency.
fn sample_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let m1 = b.add_node("movie", Value::str("Argo"));
    let m2 = b.add_node("movie", Value::str("naïve — ünïcode"));
    let y = b.add_node("year", Value::Int(-2012));
    let r = b.add_node("rating", Value::Float(7.7));
    let f = b.add_node("flag", Value::Bool(true));
    let n = b.add_node("misc", Value::Null);
    b.add_edge(y, m1).unwrap();
    b.add_edge(y, m2).unwrap();
    b.add_edge(m1, r).unwrap();
    b.add_edge(m1, f).unwrap();
    b.add_edge(m2, n).unwrap();
    b.add_edge(n, y).unwrap();
    b.build()
}

fn random_graph(seed: u64, nodes: usize, edges: usize) -> Graph {
    let mut rng = Rng(seed | 1);
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = (0..nodes)
        .map(|i| {
            let value = match rng.below(5) {
                0 => Value::Null,
                1 => Value::Bool(rng.below(2) == 0),
                2 => Value::Int(rng.next() as i64),
                3 => Value::Float(f64::from_bits(rng.next())),
                _ => Value::str(format!("s{}", rng.below(1000))),
            };
            b.add_node(&format!("l{}", i % 7), value)
        })
        .collect();
    for _ in 0..edges {
        let src = ids[rng.below(ids.len())];
        let dst = ids[rng.below(ids.len())];
        b.add_edge(src, dst).unwrap();
    }
    b.build()
}

#[test]
fn sample_graph_round_trips_slot_exactly() {
    let g = sample_graph();
    assert_identical(&g, &round_trip(&g));
}

#[test]
fn empty_graph_round_trips() {
    let g = Graph::empty();
    let loaded = round_trip(&g);
    assert_eq!(loaded.node_count(), 0);
    assert_eq!(loaded.edge_count(), 0);
    assert_eq!(loaded.distinct_label_count(), 0);
}

#[test]
fn serialization_is_deterministic() {
    let g = random_graph(99, 120, 400);
    assert_eq!(snapshot_bytes(&g), snapshot_bytes(&g));
    // And stable across a reload: load(save(g)) serializes identically.
    assert_eq!(snapshot_bytes(&g), snapshot_bytes(&round_trip(&g)));
}

#[test]
fn random_graphs_round_trip_across_seeds_and_sizes() {
    for seed in 0..20u64 {
        let nodes = 10 + (seed as usize * 13) % 150;
        let edges = nodes * 3;
        let g = random_graph(seed, nodes, edges);
        assert_identical(&g, &round_trip(&g));
    }
}

#[test]
fn tombstoned_slots_are_preserved_verbatim() {
    let mut g = random_graph(7, 60, 200);
    let mut rng = Rng(1234);
    // Delete a third of the nodes and a handful of edges, then insert a few
    // more nodes so live slots surround tombstones on both sides.
    for _ in 0..20 {
        let v = NodeId(rng.below(60) as u32);
        if g.is_live(v) {
            g.delete_node(v).unwrap();
        }
    }
    let fresh = g.insert_node("l0", Value::Int(31337));
    let anchor = g
        .nodes()
        .find(|&v| g.is_live(v) && v != fresh)
        .expect("a live node survives");
    g.insert_edge(anchor, fresh).unwrap();
    assert!(g.live_node_count() < g.node_count(), "deletions happened");

    let loaded = round_trip(&g);
    assert_identical(&g, &loaded);
    // Tombstones specifically: identical per-slot liveness map.
    let lives = |g: &Graph| -> Vec<bool> { g.nodes().map(|v| g.is_live(v)).collect() };
    assert_eq!(lives(&g), lives(&loaded));
}

#[test]
fn extreme_values_survive_bit_exactly() {
    let mut b = GraphBuilder::new();
    let values = [
        Value::Int(i64::MIN),
        Value::Int(i64::MAX),
        Value::Float(f64::NAN),
        Value::Float(f64::NEG_INFINITY),
        Value::Float(-0.0),
        Value::str(""),
        Value::str("a\tb\nc\"d\\e"),
    ];
    for v in values {
        b.add_node("x", v);
    }
    let g = b.build();
    assert_identical(&g, &round_trip(&g));
}

#[test]
fn file_level_save_and_load_round_trip() {
    let dir = std::env::temp_dir().join("bgpq_snapshot_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.bgpq");
    let g = sample_graph();
    save_graph_snapshot(&g, &path).unwrap();
    let loaded = load_graph_snapshot(&path).unwrap();
    assert_identical(&g, &loaded);
    std::fs::remove_file(path).ok();
}

/// Forward compatibility: a reader must skip section ids it does not know,
/// so a newer writer can append sections without breaking old readers.
#[test]
fn unknown_sections_are_tolerated() {
    let g = sample_graph();
    let mut writer = SnapshotWriter::new();
    encode_graph(&g, &mut writer);
    writer.add_section(Section::from_id(0xBEEF), b"future payload".to_vec());
    let mut buf = Vec::new();
    writer.write_to(&mut buf).unwrap();
    let loaded = read_graph_snapshot(Cursor::new(buf)).unwrap();
    assert_identical(&g, &loaded);
}
