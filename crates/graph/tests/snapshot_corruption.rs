//! Corruption robustness of the snapshot container: every truncation and
//! every byte flip must surface as a typed [`SnapshotError`] naming the
//! damaged section — never a panic, and never a silently mis-loaded graph.

use bgpq_graph::io::snapshot::{
    checksum, read_graph_snapshot, write_graph_snapshot, Section, SnapshotArchive, SnapshotError,
    FORMAT_VERSION, MAGIC,
};
use bgpq_graph::{Graph, GraphBuilder, NodeId, Value};
use std::io::Cursor;
use std::ops::Range;

fn sample_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = (0..40)
        .map(|i| {
            b.add_node(
                &format!("l{}", i % 5),
                match i % 4 {
                    0 => Value::Int(i),
                    1 => Value::str(format!("v{i}")),
                    2 => Value::Float(i as f64 / 3.0),
                    _ => Value::Null,
                },
            )
        })
        .collect();
    for i in 0..ids.len() {
        b.add_edge(ids[i], ids[(i * 7 + 3) % ids.len()]).unwrap();
        b.add_edge(ids[i], ids[(i * 11 + 5) % ids.len()]).unwrap();
    }
    b.build()
}

fn snapshot_bytes(g: &Graph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_graph_snapshot(g, &mut buf).unwrap();
    buf
}

/// The verified `(section, payload range)` table of a pristine snapshot.
fn section_table(bytes: &[u8]) -> Vec<(Section, Range<usize>)> {
    SnapshotArchive::from_bytes(bytes.to_vec())
        .unwrap()
        .sections()
        .collect()
}

fn load(bytes: &[u8]) -> Result<Graph, SnapshotError> {
    read_graph_snapshot(Cursor::new(bytes))
}

/// Truncating the file at *every* possible length must produce a typed
/// error, never a panic and never a short-but-plausible graph.
#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let bytes = snapshot_bytes(&sample_graph());
    for len in 0..bytes.len() {
        let err = load(&bytes[..len]).expect_err(&format!("length {len} must not load"));
        match (len, &err) {
            // A proper prefix of the magic still looks like a snapshot cut
            // short; anything shorter than the fixed header is Truncated.
            (0..=15, SnapshotError::Truncated { section }) => {
                assert_eq!(*section, Section::Header, "length {len}")
            }
            (0..=15, other) => panic!("length {len}: unexpected {other:?}"),
            (
                _,
                SnapshotError::Truncated { .. }
                | SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::Corrupt { .. },
            ) => {}
            (_, other) => panic!("length {len}: unexpected {other:?}"),
        }
    }
}

/// Truncating exactly at each section's payload boundary names the first
/// section whose bytes are missing.
#[test]
fn truncation_at_section_boundaries_names_the_missing_section() {
    let bytes = snapshot_bytes(&sample_graph());
    let table = section_table(&bytes);
    for (i, (section, range)) in table.iter().enumerate() {
        // Cut at the section's start: this section's extent now dangles.
        let err = load(&bytes[..range.start]).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::Truncated { section: *section },
            "cut at start of {section}"
        );
        // Cut one byte into the payload: still this section.
        if !range.is_empty() {
            let err = load(&bytes[..range.start + 1]).unwrap_err();
            assert_eq!(
                err,
                SnapshotError::Truncated { section: *section },
                "cut inside {section}"
            );
        }
        // Cut at the section's end: the *next* section is the first victim.
        if let Some((next, _)) = table.get(i + 1) {
            let err = load(&bytes[..range.end]).unwrap_err();
            assert_eq!(
                err,
                SnapshotError::Truncated { section: *next },
                "cut at end of {section}"
            );
        }
    }
}

/// Flipping any single byte anywhere in the file must either fail with a
/// typed error or (vacuously) still load the identical graph. It must never
/// panic and never load a *different* graph.
#[test]
fn flipping_any_byte_never_panics_or_misloads() {
    let graph = sample_graph();
    let bytes = snapshot_bytes(&graph);
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0xFF] {
            let mut copy = bytes.clone();
            copy[at] ^= mask;
            match load(&copy) {
                Err(_) => {}
                Ok(loaded) => {
                    // Only acceptable if the flip was immaterial: same graph.
                    assert_eq!(loaded.node_count(), graph.node_count(), "byte {at}");
                    assert_eq!(loaded.edge_count(), graph.edge_count(), "byte {at}");
                    for v in graph.nodes() {
                        assert_eq!(
                            graph.out_neighbors(v),
                            loaded.out_neighbors(v),
                            "byte {at}, node {v}"
                        );
                        assert_eq!(graph.label(v), loaded.label(v), "byte {at}, node {v}");
                    }
                }
            }
        }
    }
}

#[test]
fn damaged_magic_is_not_a_snapshot() {
    let mut bytes = snapshot_bytes(&sample_graph());
    bytes[0] ^= 0x20;
    assert_eq!(load(&bytes).unwrap_err(), SnapshotError::NotASnapshot);
    // Arbitrary non-snapshot content gets the same diagnosis.
    assert_eq!(
        load(b"n 0 movie \"Argo\"\n").unwrap_err(),
        SnapshotError::NotASnapshot
    );
}

#[test]
fn future_format_version_is_rejected_with_both_versions() {
    let mut bytes = snapshot_bytes(&sample_graph());
    bytes[MAGIC.len()] = 0x7B; // version field follows the magic
    assert_eq!(
        load(&bytes).unwrap_err(),
        SnapshotError::UnsupportedVersion {
            found: 0x7B,
            supported: FORMAT_VERSION,
        }
    );
}

/// Damaging the recorded checksum of each table entry (file offset
/// `16 + i*28 + 20`) must name exactly that entry's section.
#[test]
fn table_checksum_damage_names_the_right_section() {
    let bytes = snapshot_bytes(&sample_graph());
    let table = section_table(&bytes);
    for (i, (section, _)) in table.iter().enumerate() {
        let mut copy = bytes.clone();
        copy[16 + i * 28 + 20] ^= 0xFF;
        assert_eq!(
            load(&copy).unwrap_err(),
            SnapshotError::ChecksumMismatch { section: *section },
            "entry {i}"
        );
    }
}

/// Damaging one payload byte in each section must name that section.
#[test]
fn payload_damage_names_the_containing_section() {
    let bytes = snapshot_bytes(&sample_graph());
    for (section, range) in section_table(&bytes) {
        if range.is_empty() {
            continue;
        }
        let mut copy = bytes.clone();
        let mid = range.start + range.len() / 2;
        copy[mid] ^= 0xFF;
        assert_eq!(
            load(&copy).unwrap_err(),
            SnapshotError::ChecksumMismatch { section },
            "payload of {section}"
        );
    }
}

/// A section extent that overflows or reaches past the file is rejected at
/// parse time, before any decoding touches it.
#[test]
fn implausible_section_extents_are_rejected() {
    let g = sample_graph();
    let bytes = snapshot_bytes(&g);

    // Overflowing offset+len in the first entry.
    let mut copy = bytes.clone();
    copy[16 + 4..16 + 12].copy_from_slice(&u64::MAX.to_le_bytes());
    match load(&copy).unwrap_err() {
        SnapshotError::Corrupt { section, .. } => assert_eq!(section, Section::SectionTable),
        SnapshotError::Truncated { .. } => {}
        other => panic!("unexpected {other:?}"),
    }

    // Implausible section count in the header.
    let mut copy = bytes.clone();
    copy[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    match load(&copy).unwrap_err() {
        SnapshotError::Corrupt { section, message } => {
            assert_eq!(section, Section::Header);
            assert!(message.contains("section count"), "{message}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// Structurally invalid content behind a *correct* checksum is caught by the
/// decoder's invariant checks — here, an out-of-bounds adjacency target.
#[test]
fn structurally_invalid_content_is_a_corrupt_error() {
    let bytes = snapshot_bytes(&sample_graph());
    let table = section_table(&bytes);
    let (_, range) = table
        .iter()
        .find(|(s, _)| *s == Section::OutAdjacency)
        .expect("out adjacency present")
        .clone();
    let entry_index = table
        .iter()
        .position(|(s, _)| *s == Section::OutAdjacency)
        .unwrap();

    let mut copy = bytes.clone();
    // The last u32 of the payload is an adjacency target; point it far out
    // of bounds and fix up the recorded checksum so only the decoder can
    // object.
    let target_at = range.end - 4;
    copy[target_at..range.end].copy_from_slice(&u32::MAX.to_le_bytes());
    let fixed = checksum(&copy[range.clone()]);
    let checksum_at = 16 + entry_index * 28 + 20;
    copy[checksum_at..checksum_at + 8].copy_from_slice(&fixed.to_le_bytes());

    match load(&copy).unwrap_err() {
        SnapshotError::Corrupt { section, .. } => assert_eq!(section, Section::OutAdjacency),
        other => panic!("unexpected {other:?}"),
    }
}

/// Error messages are actionable: they name the section in human-readable
/// form and suggest regeneration on version mismatch.
#[test]
fn diagnostics_are_human_readable() {
    let truncated = SnapshotError::Truncated {
        section: Section::LabelIndex,
    };
    assert!(truncated.to_string().contains("label-index"), "{truncated}");
    let version = SnapshotError::UnsupportedVersion {
        found: 9,
        supported: FORMAT_VERSION,
    };
    assert!(version.to_string().contains("bgpq compile"), "{version}");
}
