//! `optgsim`: graph simulation seeded by access-constraint indices.
//!
//! Same idea as [`crate::opt_vf2`], applied to the simulation baseline of
//! [`crate::simulation`]: candidate sets are narrowed with the indices of an
//! access schema before the fixpoint refinement runs. Seeding uses
//! [`SeedSemantics::Simulation`], which only propagates narrowing from
//! pattern *children* — the direction in which simulation guarantees witness
//! edges — so the computed relation is exactly the one `gsim` returns on the
//! whole graph.

use crate::result::SimulationRelation;
use crate::seed::{seeded_candidates_with_stats, SeedSemantics, SeedStats};
use crate::simulation::SimulationMatcher;
use bgpq_access::AccessIndexSet;
use bgpq_graph::Graph;
use bgpq_pattern::Pattern;

/// Computes the maximum graph-simulation relation of `pattern` in `graph`,
/// seeding the refinement with candidate sets narrowed by `indices`.
///
/// Equivalent to [`crate::simulation::simulation_match`] whenever `graph`
/// satisfies the schema behind `indices`.
pub fn opt_simulation_match(
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
) -> SimulationRelation {
    opt_simulation_match_stats(pattern, graph, indices).0
}

/// [`opt_simulation_match`] that additionally reports the candidate-seeding
/// counters ([`SeedStats`]).
pub fn opt_simulation_match_stats(
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
) -> (SimulationRelation, SeedStats) {
    let (candidates, seed) =
        seeded_candidates_with_stats(pattern, graph, indices, SeedSemantics::Simulation);
    let relation = SimulationMatcher::new(pattern, graph)
        .with_candidates(candidates)
        .run();
    (relation, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::simulation_match;
    use bgpq_access::{AccessConstraint, AccessSchema};
    use bgpq_graph::{GraphBuilder, Value};
    use bgpq_pattern::{PatternBuilder, PatternNodeId, Predicate};

    /// a1 -> b1, a2 -> b2, plus b3 with no incoming a-edge.
    fn ab_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("a", Value::Int(1));
        let b1 = b.add_node("b", Value::Int(1));
        let a2 = b.add_node("a", Value::Int(2));
        let b2 = b.add_node("b", Value::Int(2));
        b.add_node("b", Value::Int(3));
        b.add_edge(a1, b1).unwrap();
        b.add_edge(a2, b2).unwrap();
        b.build()
    }

    fn ab_pattern(graph: &Graph) -> Pattern {
        let mut pb = PatternBuilder::with_interner(graph.interner().clone());
        let pa = pb.node("a", Predicate::always());
        let pc = pb.node("b", Predicate::always());
        pb.edge(pa, pc);
        pb.build()
    }

    /// The regression the child-only rule exists for: `b3` simulates the
    /// pattern's `b` node despite having no `a` parent, so narrowing `b`
    /// through the `a → (b, N)` constraint would lose it.
    #[test]
    fn parentless_simulators_are_preserved() {
        let g = ab_graph();
        let q = ab_pattern(&g);
        let a_l = g.interner().get("a").unwrap();
        let b_l = g.interner().get("b").unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(a_l, 10),
            AccessConstraint::unary(a_l, b_l, 1),
        ]);
        let indices = AccessIndexSet::build(&g, &schema);
        let plain = simulation_match(&q, &g);
        let opt = opt_simulation_match(&q, &g, &indices);
        assert_eq!(plain, opt);
        // All three b-nodes simulate the child (it has no requirements).
        assert_eq!(opt.matches_of(PatternNodeId(1)).len(), 3);
        // Only a1 and a2 simulate the parent.
        assert_eq!(opt.matches_of(PatternNodeId(0)).len(), 2);
    }

    #[test]
    fn child_side_narrowing_is_used_and_lossless() {
        let g = ab_graph();
        let q = ab_pattern(&g);
        let a_l = g.interner().get("a").unwrap();
        let b_l = g.interner().get("b").unwrap();
        // `a` can be narrowed through its child `b`: every simulating a-node
        // has a b-child witness.
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(b_l, 10),
            AccessConstraint::unary(b_l, a_l, 1),
        ]);
        let indices = AccessIndexSet::build(&g, &schema);
        assert_eq!(
            simulation_match(&q, &g),
            opt_simulation_match(&q, &g, &indices)
        );
    }

    #[test]
    fn predicates_and_empty_schema() {
        let g = ab_graph();
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let pa = pb.node("a", Predicate::always());
        let pc = pb.node("b", Predicate::range(1, 2));
        pb.edge(pa, pc);
        let q = pb.build();
        let indices = AccessIndexSet::build(&g, &AccessSchema::new());
        assert_eq!(
            simulation_match(&q, &g),
            opt_simulation_match(&q, &g, &indices)
        );
    }
}
