//! Match results shared by the baselines and the bounded executors.

use bgpq_graph::NodeId;
use bgpq_pattern::{Pattern, PatternNodeId};
use std::collections::BTreeSet;
use std::fmt;

/// A single subgraph-isomorphism match: an injective assignment of a data
/// node to every pattern node.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Match {
    /// `assignment[u.index()]` is the data node matched to pattern node `u`.
    assignment: Vec<NodeId>,
}

impl Match {
    /// Creates a match from the per-pattern-node assignment.
    pub fn new(assignment: Vec<NodeId>) -> Self {
        Match { assignment }
    }

    /// The data node matched to pattern node `u`.
    pub fn node_for(&self, u: PatternNodeId) -> NodeId {
        self.assignment[u.index()]
    }

    /// The full assignment, indexed by pattern node.
    pub fn assignment(&self) -> &[NodeId] {
        &self.assignment
    }

    /// Number of pattern nodes covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True for the empty match (a pattern with no nodes).
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// True when no data node is used twice (injectivity).
    pub fn is_injective(&self) -> bool {
        let distinct: BTreeSet<&NodeId> = self.assignment.iter().collect();
        distinct.len() == self.assignment.len()
    }

    /// Remaps every data node id through `f` (used to translate matches on a
    /// materialized fragment `G_Q` back to ids of the parent graph `G`).
    pub fn map_nodes(&self, mut f: impl FnMut(NodeId) -> NodeId) -> Match {
        Match {
            assignment: self.assignment.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .assignment
            .iter()
            .enumerate()
            .map(|(i, v)| format!("u{i}->{v}"))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// The answer set of a subgraph query: all matches, deduplicated and sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchSet {
    matches: Vec<Match>,
}

impl MatchSet {
    /// Creates a match set, deduplicating and sorting the matches so two
    /// sets computed by different algorithms can be compared directly.
    pub fn new(matches: impl IntoIterator<Item = Match>) -> Self {
        let set: BTreeSet<Match> = matches.into_iter().collect();
        MatchSet {
            matches: set.into_iter().collect(),
        }
    }

    /// The matches in canonical order.
    pub fn matches(&self) -> &[Match] {
        &self.matches
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True when the query has no match.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Iterates over the matches.
    pub fn iter(&self) -> impl Iterator<Item = &Match> {
        self.matches.iter()
    }
}

impl FromIterator<Match> for MatchSet {
    fn from_iter<T: IntoIterator<Item = Match>>(iter: T) -> Self {
        MatchSet::new(iter)
    }
}

/// The maximum graph-simulation relation `R_M ⊆ V_Q × V`.
///
/// Per the paper (and Henzinger-Henzinger-Kopke), the maximum match relation
/// is unique and possibly empty; it is non-empty only when **every** pattern
/// node has at least one simulating data node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimulationRelation {
    /// `relation[u.index()]` = sorted data nodes simulating pattern node `u`.
    relation: Vec<Vec<NodeId>>,
}

impl SimulationRelation {
    /// The empty relation (no pattern node matches).
    pub fn empty(pattern_nodes: usize) -> Self {
        SimulationRelation {
            relation: vec![Vec::new(); pattern_nodes],
        }
    }

    /// Builds a relation from per-pattern-node match lists. If any list is
    /// empty the whole relation collapses to the empty relation, mirroring
    /// the totality requirement of the definition.
    pub fn from_candidates(candidates: Vec<Vec<NodeId>>) -> Self {
        if candidates.iter().any(Vec::is_empty) {
            return SimulationRelation::empty(candidates.len());
        }
        let relation = candidates
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        SimulationRelation { relation }
    }

    /// Data nodes simulating pattern node `u`.
    pub fn matches_of(&self, u: PatternNodeId) -> &[NodeId] {
        self.relation
            .get(u.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True when `(u, v)` is in the relation.
    pub fn contains(&self, u: PatternNodeId, v: NodeId) -> bool {
        self.matches_of(u).binary_search(&v).is_ok()
    }

    /// Number of pattern nodes the relation was computed for.
    pub fn pattern_node_count(&self) -> usize {
        self.relation.len()
    }

    /// Total number of `(u, v)` pairs.
    pub fn pair_count(&self) -> usize {
        self.relation.iter().map(Vec::len).sum()
    }

    /// True when the relation is empty (the query has no match).
    pub fn is_empty(&self) -> bool {
        self.pair_count() == 0
    }

    /// True when every pattern node of `pattern` has at least one match.
    pub fn is_total_for(&self, pattern: &Pattern) -> bool {
        pattern.node_count() == self.relation.len() && self.relation.iter().all(|v| !v.is_empty())
    }

    /// Iterates over all `(u, v)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (PatternNodeId, NodeId)> + '_ {
        self.relation
            .iter()
            .enumerate()
            .flat_map(|(i, nodes)| nodes.iter().map(move |&v| (PatternNodeId(i as u32), v)))
    }

    /// Remaps every data node id through `f` (fragment → parent translation).
    pub fn map_nodes(&self, mut f: impl FnMut(NodeId) -> NodeId) -> SimulationRelation {
        SimulationRelation {
            relation: self
                .relation
                .iter()
                .map(|nodes| {
                    let mut mapped: Vec<NodeId> = nodes.iter().map(|&v| f(v)).collect();
                    mapped.sort_unstable();
                    mapped
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_accessors_and_injectivity() {
        let m = Match::new(vec![NodeId(3), NodeId(5), NodeId(7)]);
        assert_eq!(m.node_for(PatternNodeId(1)), NodeId(5));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert!(m.is_injective());
        let dup = Match::new(vec![NodeId(3), NodeId(3)]);
        assert!(!dup.is_injective());
        assert!(Match::new(vec![]).is_empty());
        assert_eq!(m.to_string(), "{u0->v3, u1->v5, u2->v7}");
    }

    #[test]
    fn match_map_nodes_translates_ids() {
        let m = Match::new(vec![NodeId(0), NodeId(1)]);
        let shifted = m.map_nodes(|v| NodeId(v.0 + 10));
        assert_eq!(shifted.assignment(), &[NodeId(10), NodeId(11)]);
    }

    #[test]
    fn match_set_deduplicates_and_sorts() {
        let a = Match::new(vec![NodeId(1), NodeId(2)]);
        let b = Match::new(vec![NodeId(0), NodeId(2)]);
        let set = MatchSet::new([a.clone(), b.clone(), a.clone()]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.matches()[0], b);
        assert_eq!(set.matches()[1], a);
        assert!(!set.is_empty());
        assert_eq!(set.iter().count(), 2);
        let from_iter: MatchSet = [a.clone()].into_iter().collect();
        assert_eq!(from_iter.len(), 1);
    }

    #[test]
    fn simulation_relation_totality_rule() {
        // One empty candidate list collapses everything.
        let rel = SimulationRelation::from_candidates(vec![vec![NodeId(1)], vec![]]);
        assert!(rel.is_empty());
        assert_eq!(rel.pair_count(), 0);

        let rel = SimulationRelation::from_candidates(vec![
            vec![NodeId(2), NodeId(1), NodeId(2)],
            vec![NodeId(3)],
        ]);
        assert_eq!(rel.pair_count(), 3);
        assert_eq!(rel.matches_of(PatternNodeId(0)), &[NodeId(1), NodeId(2)]);
        assert!(rel.contains(PatternNodeId(1), NodeId(3)));
        assert!(!rel.contains(PatternNodeId(1), NodeId(4)));
        assert_eq!(rel.pattern_node_count(), 2);
        assert_eq!(rel.pairs().count(), 3);
    }

    #[test]
    fn simulation_relation_map_nodes() {
        let rel = SimulationRelation::from_candidates(vec![vec![NodeId(5)], vec![NodeId(6)]]);
        let mapped = rel.map_nodes(|v| NodeId(v.0 * 2));
        assert_eq!(mapped.matches_of(PatternNodeId(0)), &[NodeId(10)]);
        assert_eq!(mapped.matches_of(PatternNodeId(1)), &[NodeId(12)]);
    }

    #[test]
    fn empty_relation_has_no_pairs() {
        let rel = SimulationRelation::empty(3);
        assert!(rel.is_empty());
        assert_eq!(rel.pattern_node_count(), 3);
        assert_eq!(rel.matches_of(PatternNodeId(0)), &[] as &[NodeId]);
        assert_eq!(rel.matches_of(PatternNodeId(9)), &[] as &[NodeId]);
    }
}
