//! Subgraph-isomorphism matching (the `VF2` baseline).
//!
//! A match of a pattern `Q` in a graph `G` is an injective mapping `h` from
//! pattern nodes to data nodes such that
//!
//! * labels agree: `f_Q(u) = f(h(u))`;
//! * predicates hold: `g_Q(ν(h(u)))` is true;
//! * every pattern edge is realized: `(u, u') ∈ E_Q ⇒ (h(u), h(u')) ∈ E`.
//!
//! (This is the "match = subgraph isomorphic to Q" semantics of Section II:
//! the matched subgraph `G'` consists of the image nodes and the images of
//! the pattern edges, so data edges *between* matched nodes that have no
//! pattern counterpart are irrelevant.)
//!
//! The implementation is a VF2-style backtracking search with a
//! connectivity-aware matching order, candidate sets restricted to
//! label-compatible nodes, and optional externally supplied candidate sets
//! (used by `optVF2` and by the bounded executor `bVF2`).

use crate::result::{Match, MatchSet};
use bgpq_graph::{Graph, GraphAccess, NodeId};
use bgpq_pattern::{Pattern, PatternNodeId};
use std::collections::HashSet;

/// Tuning knobs for the subgraph matcher.
#[derive(Debug, Clone, Default)]
pub struct Vf2Config {
    /// Stop after this many matches (`None` = enumerate all).
    pub max_matches: Option<usize>,
    /// Abort after roughly this many search-tree nodes (`None` = unlimited).
    /// Used by the experiments to emulate the paper's evaluation timeouts.
    pub max_steps: Option<u64>,
}

/// Statistics of one matcher run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vf2Stats {
    /// Search-tree nodes expanded.
    pub steps: u64,
    /// True when the run stopped because `max_steps` was hit.
    pub aborted: bool,
}

/// A backtracking subgraph-isomorphism matcher.
///
/// Generic over [`GraphAccess`]: the same search runs on a whole [`Graph`]
/// (the `VF2`/`optVF2` baselines) or on a zero-copy
/// [`FragmentView`](bgpq_graph::FragmentView) of the fetched fragment `G_Q`
/// (the bounded executor `bVF2`), with answers reported over the ids of
/// whatever graph it was given.
pub struct SubgraphMatcher<'a, G: GraphAccess = Graph> {
    pattern: &'a Pattern,
    graph: &'a G,
    config: Vf2Config,
    /// Optional externally supplied candidate sets per pattern node, kept
    /// sorted and deduplicated for binary-search membership tests.
    candidates: Option<Vec<Vec<NodeId>>>,
}

impl<'a, G: GraphAccess> SubgraphMatcher<'a, G> {
    /// Creates a matcher over the full data graph.
    pub fn new(pattern: &'a Pattern, graph: &'a G) -> Self {
        SubgraphMatcher {
            pattern,
            graph,
            config: Vf2Config::default(),
            candidates: None,
        }
    }

    /// Restricts the search to the given candidate sets (one per pattern
    /// node, indexed by [`PatternNodeId`]). The sets are treated as sets:
    /// order and duplicates don't matter, and nodes absent from the graph
    /// (or, on a fragment view, from the fragment) are ignored.
    pub fn with_candidates(mut self, mut candidates: Vec<Vec<NodeId>>) -> Self {
        assert_eq!(candidates.len(), self.pattern.node_count());
        for set in &mut candidates {
            set.sort_unstable();
            set.dedup();
        }
        self.candidates = Some(candidates);
        self
    }

    /// Sets the configuration.
    pub fn with_config(mut self, config: Vf2Config) -> Self {
        self.config = config;
        self
    }

    /// Enumerates matches, returning the canonical match set.
    pub fn find_all(&self) -> MatchSet {
        self.run().0
    }

    /// True when at least one match exists.
    pub fn exists(&self) -> bool {
        let matcher = SubgraphMatcher {
            pattern: self.pattern,
            graph: self.graph,
            config: Vf2Config {
                max_matches: Some(1),
                ..self.config.clone()
            },
            candidates: self.candidates.clone(),
        };
        !matcher.run().0.is_empty()
    }

    /// Number of matches.
    pub fn count(&self) -> usize {
        self.find_all().len()
    }

    /// Runs the search, returning the match set and run statistics.
    pub fn run(&self) -> (MatchSet, Vf2Stats) {
        let n = self.pattern.node_count();
        if n == 0 {
            return (MatchSet::new([Match::new(Vec::new())]), Vf2Stats::default());
        }
        let order = self.matching_order();
        let mut state = SearchState {
            matcher: self,
            order,
            assignment: vec![None; n],
            used: HashSet::new(),
            results: Vec::new(),
            stats: Vf2Stats::default(),
        };
        state.search(0);
        (MatchSet::new(state.results), state.stats)
    }

    /// True when data node `v` is label- and predicate-compatible with
    /// pattern node `u`, and (when candidate sets are given) belongs to `u`'s
    /// candidate set.
    fn compatible(&self, u: PatternNodeId, v: NodeId) -> bool {
        if !self.graph.contains_node(v) || self.graph.label(v) != self.pattern.label(u) {
            return false;
        }
        if !self.pattern.predicate(u).eval(self.graph.value(v)) {
            return false;
        }
        if let Some(cands) = &self.candidates {
            if cands[u.index()].binary_search(&v).is_err() {
                return false;
            }
        }
        // Cheap degree pruning: v must offer at least as many out/in edges.
        self.graph.out_degree(v) >= self.pattern.children(u).len()
            && self.graph.in_degree(v) >= self.pattern.parents(u).len()
    }

    /// Static matching order: start from the most constrained node (smallest
    /// candidate estimate), then repeatedly pick an unvisited node with the
    /// most already-ordered neighbors (ties broken by estimate).
    fn matching_order(&self) -> Vec<PatternNodeId> {
        let n = self.pattern.node_count();
        let estimate: Vec<usize> = (0..n)
            .map(|i| {
                let u = PatternNodeId(i as u32);
                match &self.candidates {
                    Some(c) => c[i].len(),
                    None => self.graph.label_count(self.pattern.label(u)),
                }
            })
            .collect();
        let mut order: Vec<PatternNodeId> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        for _ in 0..n {
            let mut best: Option<(usize, usize, usize)> = None; // (-connected, estimate, idx)
            for i in 0..n {
                if placed[i] {
                    continue;
                }
                let u = PatternNodeId(i as u32);
                let connected = self
                    .pattern
                    .neighbors(u)
                    .iter()
                    .filter(|&&w| placed[w.index()])
                    .count();
                let key = (usize::MAX - connected, estimate[i], i);
                if best.map(|b| key < b).unwrap_or(true) {
                    best = Some(key);
                }
            }
            let (_, _, idx) = best.expect("some node remains");
            placed[idx] = true;
            order.push(PatternNodeId(idx as u32));
        }
        order
    }
}

struct SearchState<'m, 'a, G: GraphAccess> {
    matcher: &'m SubgraphMatcher<'a, G>,
    order: Vec<PatternNodeId>,
    assignment: Vec<Option<NodeId>>,
    used: HashSet<NodeId>,
    results: Vec<Match>,
    stats: Vf2Stats,
}

impl<G: GraphAccess> SearchState<'_, '_, G> {
    fn done(&self) -> bool {
        if self.stats.aborted {
            return true;
        }
        if let Some(max) = self.matcher.config.max_matches {
            if self.results.len() >= max {
                return true;
            }
        }
        false
    }

    fn search(&mut self, depth: usize) {
        if self.done() {
            return;
        }
        if let Some(max_steps) = self.matcher.config.max_steps {
            if self.stats.steps >= max_steps {
                self.stats.aborted = true;
                return;
            }
        }
        self.stats.steps += 1;

        if depth == self.order.len() {
            let assignment: Vec<NodeId> = self
                .assignment
                .iter()
                .map(|v| v.expect("complete"))
                .collect();
            self.results.push(Match::new(assignment));
            return;
        }
        let u = self.order[depth];
        let candidates = self.candidate_nodes(u);
        for v in candidates {
            if self.done() {
                return;
            }
            if self.used.contains(&v) || !self.consistent(u, v) {
                continue;
            }
            self.assignment[u.index()] = Some(v);
            self.used.insert(v);
            self.search(depth + 1);
            self.used.remove(&v);
            self.assignment[u.index()] = None;
        }
    }

    /// Candidate data nodes for pattern node `u` given the current partial
    /// assignment: neighbors of an already-matched pattern neighbor when one
    /// exists (locality), otherwise all label-compatible nodes.
    fn candidate_nodes(&self, u: PatternNodeId) -> Vec<NodeId> {
        let graph = self.matcher.graph;
        let pattern = self.matcher.pattern;
        // Prefer expanding from a matched pattern neighbor.
        for &p in pattern.children(u) {
            if let Some(v) = self.assignment[p.index()] {
                return graph
                    .in_neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&c| self.matcher.compatible(u, c))
                    .collect();
            }
        }
        for &p in pattern.parents(u) {
            if let Some(v) = self.assignment[p.index()] {
                return graph
                    .out_neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&c| self.matcher.compatible(u, c))
                    .collect();
            }
        }
        match &self.matcher.candidates {
            Some(cands) => cands[u.index()]
                .iter()
                .copied()
                .filter(|&c| self.matcher.compatible(u, c))
                .collect(),
            None => graph
                .nodes_with_label(pattern.label(u))
                .iter()
                .copied()
                .filter(|&c| self.matcher.compatible(u, c))
                .collect(),
        }
    }

    /// Checks that assigning `v` to `u` realizes every pattern edge between
    /// `u` and already-matched pattern nodes.
    fn consistent(&self, u: PatternNodeId, v: NodeId) -> bool {
        if !self.matcher.compatible(u, v) {
            return false;
        }
        let graph = self.matcher.graph;
        let pattern = self.matcher.pattern;
        for &child in pattern.children(u) {
            if let Some(w) = self.assignment[child.index()] {
                if !graph.has_edge(v, w) {
                    return false;
                }
            }
        }
        for &parent in pattern.parents(u) {
            if let Some(w) = self.assignment[parent.index()] {
                if !graph.has_edge(w, v) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_graph::{GraphBuilder, Value};
    use bgpq_pattern::{PatternBuilder, Predicate};

    /// Builds a data graph with `k` (movie -> actor, movie -> actress) stars
    /// plus one movie lacking an actress.
    fn movie_graph(k: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..k as i64 {
            let m = b.add_node("movie", Value::Int(2000 + i));
            let a = b.add_node("actor", Value::Int(i));
            let s = b.add_node("actress", Value::Int(i));
            b.add_edge(m, a).unwrap();
            b.add_edge(m, s).unwrap();
        }
        let lonely = b.add_node("movie", Value::Int(1990));
        let a = b.add_node("actor", Value::Int(99));
        b.add_edge(lonely, a).unwrap();
        b.build()
    }

    fn movie_pattern(graph: &Graph) -> Pattern {
        let mut b = PatternBuilder::with_interner(graph.interner().clone());
        let m = b.node("movie", Predicate::always());
        let a = b.node("actor", Predicate::always());
        let s = b.node("actress", Predicate::always());
        b.edge(m, a);
        b.edge(m, s);
        b.build()
    }

    #[test]
    fn finds_all_star_matches() {
        let g = movie_graph(3);
        let q = movie_pattern(&g);
        let matches = SubgraphMatcher::new(&q, &g).find_all();
        // The lonely movie has no actress, so exactly 3 matches.
        assert_eq!(matches.len(), 3);
        for m in matches.iter() {
            assert!(m.is_injective());
            // Verify every pattern edge is realized.
            for (s, d) in q.edges() {
                assert!(g.has_edge(m.node_for(s), m.node_for(d)));
            }
        }
    }

    #[test]
    fn predicates_prune_matches() {
        let g = movie_graph(3);
        let mut b = PatternBuilder::with_interner(g.interner().clone());
        let m = b.node("movie", Predicate::range(2001, 2002));
        let a = b.node("actor", Predicate::always());
        b.edge(m, a);
        let q = b.build();
        let matches = SubgraphMatcher::new(&q, &g).find_all();
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn empty_pattern_has_one_empty_match() {
        let g = movie_graph(1);
        let q = PatternBuilder::with_interner(g.interner().clone()).build();
        let matches = SubgraphMatcher::new(&q, &g).find_all();
        assert_eq!(matches.len(), 1);
        assert!(matches.matches()[0].is_empty());
    }

    #[test]
    fn no_match_when_label_absent() {
        let g = movie_graph(2);
        let mut b = PatternBuilder::with_interner(g.interner().clone());
        b.node("director", Predicate::always());
        let q = b.build();
        assert!(SubgraphMatcher::new(&q, &g).find_all().is_empty());
        assert!(!SubgraphMatcher::new(&q, &g).exists());
    }

    #[test]
    fn injectivity_is_enforced() {
        // Pattern: two distinct actors of the same movie; data: movie with
        // only one actor → no match.
        let mut gb = GraphBuilder::new();
        let m = gb.add_node("movie", Value::Int(1));
        let a = gb.add_node("actor", Value::Int(1));
        gb.add_edge(m, a).unwrap();
        let g = gb.build();

        let mut b = PatternBuilder::with_interner(g.interner().clone());
        let pm = b.node("movie", Predicate::always());
        let a1 = b.node("actor", Predicate::always());
        let a2 = b.node("actor", Predicate::always());
        b.edge(pm, a1);
        b.edge(pm, a2);
        let q = b.build();
        assert_eq!(SubgraphMatcher::new(&q, &g).count(), 0);

        // With two actors there are 2 matches (the two orderings).
        let mut gb = GraphBuilder::new();
        let m = gb.add_node("movie", Value::Int(1));
        let a = gb.add_node("actor", Value::Int(1));
        let b2 = gb.add_node("actor", Value::Int(2));
        gb.add_edge(m, a).unwrap();
        gb.add_edge(m, b2).unwrap();
        let g2 = gb.build();
        assert_eq!(SubgraphMatcher::new(&q, &g2).count(), 2);
    }

    #[test]
    fn edge_direction_matters() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a", Value::Null);
        let c = gb.add_node("b", Value::Null);
        gb.add_edge(a, c).unwrap();
        let g = gb.build();

        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let pa = pb.node("a", Predicate::always());
        let pc = pb.node("b", Predicate::always());
        pb.edge(pc, pa); // reversed direction
        let q = pb.build();
        assert_eq!(SubgraphMatcher::new(&q, &g).count(), 0);
    }

    #[test]
    fn candidate_restriction_limits_matches() {
        let g = movie_graph(3);
        let q = movie_pattern(&g);
        // Restrict the movie node to a single data node.
        let movie_nodes = g.nodes_with_label(g.interner().get("movie").unwrap());
        let actors = g.nodes_with_label(g.interner().get("actor").unwrap());
        let actresses = g.nodes_with_label(g.interner().get("actress").unwrap());
        let candidates = vec![vec![movie_nodes[0]], actors.to_vec(), actresses.to_vec()];
        let matches = SubgraphMatcher::new(&q, &g)
            .with_candidates(candidates)
            .find_all();
        assert_eq!(matches.len(), 1);
        assert_eq!(
            matches.matches()[0].node_for(PatternNodeId(0)),
            movie_nodes[0]
        );
    }

    #[test]
    fn max_matches_short_circuits() {
        let g = movie_graph(10);
        let q = movie_pattern(&g);
        let (matches, stats) = SubgraphMatcher::new(&q, &g)
            .with_config(Vf2Config {
                max_matches: Some(2),
                max_steps: None,
            })
            .run();
        assert_eq!(matches.len(), 2);
        assert!(!stats.aborted);
    }

    #[test]
    fn max_steps_aborts_search() {
        let g = movie_graph(50);
        let q = movie_pattern(&g);
        let (_, stats) = SubgraphMatcher::new(&q, &g)
            .with_config(Vf2Config {
                max_matches: None,
                max_steps: Some(5),
            })
            .run();
        assert!(stats.aborted);
        assert!(stats.steps <= 6);
    }

    #[test]
    fn triangle_pattern_in_cycle() {
        // Directed triangle data graph; triangle pattern has 3 rotations.
        let mut gb = GraphBuilder::new();
        let n0 = gb.add_node("x", Value::Null);
        let n1 = gb.add_node("x", Value::Null);
        let n2 = gb.add_node("x", Value::Null);
        gb.add_edge(n0, n1).unwrap();
        gb.add_edge(n1, n2).unwrap();
        gb.add_edge(n2, n0).unwrap();
        let g = gb.build();

        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let p0 = pb.node("x", Predicate::always());
        let p1 = pb.node("x", Predicate::always());
        let p2 = pb.node("x", Predicate::always());
        pb.edge(p0, p1);
        pb.edge(p1, p2);
        pb.edge(p2, p0);
        let q = pb.build();
        assert_eq!(SubgraphMatcher::new(&q, &g).count(), 3);
    }
}
