//! Maximum graph simulation (the `gsim` baseline).
//!
//! A binary relation `R ⊆ V_Q × V` is a *simulation* of pattern `Q` in graph
//! `G` when for every `(u, v) ∈ R`:
//!
//! * labels agree (`f_Q(u) = f(v)`) and the predicate holds (`g_Q(ν(v))`);
//! * for every pattern edge `(u, u')` there is a data edge `(v, v')` with
//!   `(u', v') ∈ R` — every child requirement of `u` has a witness.
//!
//! `Q(G)` is the unique **maximum** such relation in which every pattern node
//! has at least one match; when some pattern node cannot be matched the
//! answer is empty (see [`SimulationRelation::from_candidates`]). The
//! implementation is the fixpoint refinement of Henzinger, Henzinger & Kopke:
//! start from all label/predicate-compatible pairs and repeatedly remove
//! pairs that lost their last witness, until stable.
//!
//! Like [`crate::vf2`], the matcher accepts optional externally supplied
//! candidate sets; `optgsim` ([`crate::opt_simulation`]) and the bounded
//! executor `bSim` (`bgpq_core::exec::bounded_simulation_match`) seed it with
//! index-restricted candidates, which never changes the result as long as
//! the candidate sets cover the maximum relation.

use crate::result::SimulationRelation;
use bgpq_graph::{Graph, GraphAccess, NodeId};
use bgpq_pattern::{Pattern, PatternNodeId};
use std::collections::BTreeSet;

/// Fixpoint matcher computing the maximum graph-simulation relation.
///
/// Generic over [`GraphAccess`], like [`crate::SubgraphMatcher`]: `gsim` and
/// `optgsim` run it on the whole [`Graph`], the bounded executor `bSim` on a
/// zero-copy [`FragmentView`](bgpq_graph::FragmentView) of the fetched
/// fragment.
pub struct SimulationMatcher<'a, G: GraphAccess = Graph> {
    pattern: &'a Pattern,
    graph: &'a G,
    /// Optional externally supplied candidate sets per pattern node.
    candidates: Option<Vec<Vec<NodeId>>>,
}

impl<'a, G: GraphAccess> SimulationMatcher<'a, G> {
    /// Creates a matcher over the full data graph.
    pub fn new(pattern: &'a Pattern, graph: &'a G) -> Self {
        SimulationMatcher {
            pattern,
            graph,
            candidates: None,
        }
    }

    /// Restricts the initial relation to the given candidate sets (one per
    /// pattern node, indexed by [`PatternNodeId`]).
    ///
    /// The result is unchanged as long as each candidate set is a superset of
    /// the maximum relation's matches for that node.
    pub fn with_candidates(mut self, candidates: Vec<Vec<NodeId>>) -> Self {
        assert_eq!(candidates.len(), self.pattern.node_count());
        self.candidates = Some(candidates);
        self
    }

    /// True when data node `v` can possibly simulate pattern node `u`.
    fn compatible(&self, u: PatternNodeId, v: NodeId) -> bool {
        self.graph.label(v) == self.pattern.label(u)
            && self.pattern.predicate(u).eval(self.graph.value(v))
    }

    /// The initial (pre-refinement) match set of pattern node `u`.
    fn initial_set(&self, u: PatternNodeId) -> BTreeSet<NodeId> {
        match &self.candidates {
            Some(cands) => cands[u.index()]
                .iter()
                .copied()
                .filter(|&v| self.graph.contains_node(v) && self.compatible(u, v))
                .collect(),
            None => self
                .graph
                .nodes_with_label(self.pattern.label(u))
                .iter()
                .copied()
                .filter(|&v| self.compatible(u, v))
                .collect(),
        }
    }

    /// Runs the refinement to the maximum fixpoint.
    pub fn run(&self) -> SimulationRelation {
        let n = self.pattern.node_count();
        let mut sim: Vec<BTreeSet<NodeId>> =
            self.pattern.nodes().map(|u| self.initial_set(u)).collect();

        loop {
            let mut changed = false;
            for i in 0..n {
                let u = PatternNodeId(i as u32);
                for &child in self.pattern.children(u) {
                    // Drop every v ∈ sim(u) without an out-neighbor in
                    // sim(child). Removals are collected first so that
                    // self-loops (u = child) read a consistent snapshot.
                    let doomed: Vec<NodeId> = sim[i]
                        .iter()
                        .copied()
                        .filter(|&v| {
                            !self
                                .graph
                                .out_neighbors(v)
                                .iter()
                                .any(|w| sim[child.index()].contains(w))
                        })
                        .collect();
                    if !doomed.is_empty() {
                        changed = true;
                        for v in doomed {
                            sim[i].remove(&v);
                        }
                    }
                }
                if sim[i].is_empty() && n > 0 {
                    // Totality is violated: the whole answer is empty.
                    return SimulationRelation::empty(n);
                }
            }
            if !changed {
                break;
            }
        }
        SimulationRelation::from_candidates(
            sim.into_iter().map(|s| s.into_iter().collect()).collect(),
        )
    }
}

/// Computes the maximum graph-simulation relation of `pattern` in `graph`
/// (the paper's `gsim` baseline). Accepts any [`GraphAccess`]
/// implementation.
pub fn simulation_match<G: GraphAccess>(pattern: &Pattern, graph: &G) -> SimulationRelation {
    SimulationMatcher::new(pattern, graph).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_graph::{GraphBuilder, Value};
    use bgpq_pattern::{PatternBuilder, Predicate};

    /// a1 -> b1 -> c1, a2 -> b2 (b2 has no c-child), plus a dangling b3.
    fn chain_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("a", Value::Int(1));
        let b1 = b.add_node("b", Value::Int(1));
        let c1 = b.add_node("c", Value::Int(1));
        let a2 = b.add_node("a", Value::Int(2));
        let b2 = b.add_node("b", Value::Int(2));
        b.add_node("b", Value::Int(3));
        b.add_edge(a1, b1).unwrap();
        b.add_edge(b1, c1).unwrap();
        b.add_edge(a2, b2).unwrap();
        b.build()
    }

    fn chain_pattern(graph: &Graph) -> Pattern {
        let mut b = PatternBuilder::with_interner(graph.interner().clone());
        let a = b.node("a", Predicate::always());
        let c = b.node("b", Predicate::always());
        let d = b.node("c", Predicate::always());
        b.edge(a, c);
        b.edge(c, d);
        b.build()
    }

    #[test]
    fn refinement_prunes_nodes_without_witnesses() {
        let g = chain_graph();
        let q = chain_pattern(&g);
        let rel = simulation_match(&q, &g);
        // Only a1 -> b1 -> c1 survives: b2 has no c-child, b3 no child at all,
        // and a2's only b-child (b2) is pruned.
        assert_eq!(rel.matches_of(PatternNodeId(0)), &[NodeId(0)]);
        assert_eq!(rel.matches_of(PatternNodeId(1)), &[NodeId(1)]);
        assert_eq!(rel.matches_of(PatternNodeId(2)), &[NodeId(2)]);
        assert!(rel.is_total_for(&q));
    }

    #[test]
    fn simulation_allows_non_injective_matches() {
        // Pattern: two a-nodes pointing at one b; data: a single a -> b.
        // Simulation (unlike isomorphism) matches both pattern a's to the
        // same data node.
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a", Value::Null);
        let c = gb.add_node("b", Value::Null);
        gb.add_edge(a, c).unwrap();
        let g = gb.build();

        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let p1 = pb.node("a", Predicate::always());
        let p2 = pb.node("a", Predicate::always());
        let pc = pb.node("b", Predicate::always());
        pb.edge(p1, pc);
        pb.edge(p2, pc);
        let q = pb.build();
        let rel = simulation_match(&q, &g);
        assert_eq!(rel.matches_of(PatternNodeId(0)), &[a]);
        assert_eq!(rel.matches_of(PatternNodeId(1)), &[a]);
        assert_eq!(rel.matches_of(PatternNodeId(2)), &[c]);
    }

    #[test]
    fn totality_violation_empties_the_relation() {
        let g = chain_graph();
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let pa = pb.node("a", Predicate::always());
        let pd = pb.node("d", Predicate::always()); // label absent from G
        pb.edge(pa, pd);
        let q = pb.build();
        let rel = simulation_match(&q, &g);
        assert!(rel.is_empty());
        assert_eq!(rel.pattern_node_count(), 2);
    }

    #[test]
    fn predicates_restrict_the_relation() {
        let g = chain_graph();
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        pb.node("b", Predicate::range(2, 3));
        let q = pb.build();
        let rel = simulation_match(&q, &g);
        // b2 (value 2) and b3 (value 3) pass; b1 (value 1) does not.
        assert_eq!(rel.matches_of(PatternNodeId(0)), &[NodeId(4), NodeId(5)]);
    }

    #[test]
    fn cycle_pattern_on_cycle_graph() {
        let mut gb = GraphBuilder::new();
        let n0 = gb.add_node("x", Value::Null);
        let n1 = gb.add_node("x", Value::Null);
        gb.add_edge(n0, n1).unwrap();
        gb.add_edge(n1, n0).unwrap();
        let g = gb.build();

        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let p0 = pb.node("x", Predicate::always());
        let p1 = pb.node("x", Predicate::always());
        pb.edge(p0, p1);
        pb.edge(p1, p0);
        let q = pb.build();
        let rel = simulation_match(&q, &g);
        // Both data nodes simulate both pattern nodes.
        assert_eq!(rel.pair_count(), 4);
    }

    #[test]
    fn self_loop_pattern_requires_cyclic_witnesses() {
        // Pattern x with a self-loop: only data nodes on an x-cycle qualify.
        let mut gb = GraphBuilder::new();
        let on_cycle = gb.add_node("x", Value::Null);
        let chain = gb.add_node("x", Value::Null);
        gb.add_edge(on_cycle, on_cycle).unwrap();
        gb.add_edge(chain, on_cycle).unwrap();
        let g = gb.build();

        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let p = pb.node("x", Predicate::always());
        pb.edge(p, p);
        let q = pb.build();
        let rel = simulation_match(&q, &g);
        assert_eq!(rel.matches_of(PatternNodeId(0)), &[on_cycle, chain]);
        // `chain` survives because its witness (`on_cycle`) stays in the set.
    }

    #[test]
    fn empty_pattern_yields_empty_relation() {
        let g = chain_graph();
        let q = PatternBuilder::with_interner(g.interner().clone()).build();
        let rel = simulation_match(&q, &g);
        assert_eq!(rel.pattern_node_count(), 0);
        assert!(rel.is_empty());
    }

    #[test]
    fn candidate_restriction_with_superset_is_lossless() {
        let g = chain_graph();
        let q = chain_pattern(&g);
        let full = simulation_match(&q, &g);
        // Seed with exactly the label-compatible sets (a sound superset).
        let candidates: Vec<Vec<NodeId>> = q
            .nodes()
            .map(|u| g.nodes_with_label(q.label(u)).to_vec())
            .collect();
        let seeded = SimulationMatcher::new(&q, &g)
            .with_candidates(candidates)
            .run();
        assert_eq!(full, seeded);
    }

    #[test]
    fn candidate_restriction_can_shrink_the_relation() {
        let g = chain_graph();
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        pb.node("b", Predicate::always());
        let q = pb.build();
        let seeded = SimulationMatcher::new(&q, &g)
            .with_candidates(vec![vec![NodeId(1)]])
            .run();
        assert_eq!(seeded.matches_of(PatternNodeId(0)), &[NodeId(1)]);
    }
}
