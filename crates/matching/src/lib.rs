//! # bgpq-matching
//!
//! Baseline graph pattern matching algorithms for the `bgpq` workspace:
//!
//! * [`vf2`] — subgraph-isomorphism matching (the paper's `VF2` baseline): a
//!   backtracking search enumerating every injective mapping of the pattern
//!   into the data graph that preserves labels, predicates and edges;
//! * [`opt_vf2`] — `optVF2`: the same search seeded with candidate sets
//!   narrowed by access-constraint indices;
//! * [`simulation`] — maximum graph simulation (the paper's `gsim` baseline,
//!   after Henzinger, Henzinger & Kopke);
//! * [`opt_simulation`] — `optgsim`: simulation seeded from index-restricted
//!   candidate sets;
//! * [`seed`] — the index-seeded candidate computation shared by the two
//!   optimized baselines (and semantics-aware: isomorphism may narrow
//!   through any pattern neighbor, simulation only through children);
//! * [`result`] — the match/relation types shared with the bounded
//!   executors of `bgpq-core`.
//!
//! The bounded evaluation of the paper (`bVF2`, `bSim`) lives in
//! `bgpq_core::exec` — `bounded_subgraph_match` and
//! `bounded_simulation_match` there plan a fetch over the access indices
//! (`bgpq_core::plan`), materialize the bounded fragment `G_Q`
//! (`bgpq_core::fetch`), and reuse these matchers on the fragment instead of
//! `G`. (This crate cannot intra-doc-link those items: `bgpq-core` depends
//! on `bgpq-matching`, not the other way around. The session-oriented entry
//! point wrapping both sides is the `bgpq-engine` crate.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod opt_simulation;
pub mod opt_vf2;
pub mod result;
pub mod seed;
pub mod simulation;
pub mod vf2;

pub use opt_simulation::{opt_simulation_match, opt_simulation_match_stats};
pub use opt_vf2::{opt_subgraph_match, opt_subgraph_match_stats, opt_subgraph_match_with_config};
pub use result::{Match, MatchSet, SimulationRelation};
pub use seed::{seeded_candidates, seeded_candidates_with_stats, SeedSemantics, SeedStats};
pub use simulation::{simulation_match, SimulationMatcher};
pub use vf2::{SubgraphMatcher, Vf2Config, Vf2Stats};
