//! # bgpq-matching
//!
//! Baseline graph pattern matching algorithms for the `bgpq` workspace:
//!
//! * [`vf2`] — subgraph-isomorphism matching (the paper's `VF2` baseline): a
//!   backtracking search enumerating every injective mapping of the pattern
//!   into the data graph that preserves labels, predicates and edges;
//! * [`opt_vf2`] — `optVF2`: the same search seeded with candidate sets
//!   narrowed by access-constraint indices;
//! * [`simulation`] — maximum graph simulation (the paper's `gsim` baseline,
//!   after Henzinger, Henzinger & Kopke);
//! * [`opt_simulation`] — `optgsim`: simulation seeded from index-restricted
//!   candidate sets;
//! * [`result`] — the match/relation types shared with the bounded
//!   executors of `bgpq-core`.
//!
//! The bounded evaluation of the paper (`bVF2`, `bSim`) lives in
//! `bgpq-core::exec`; it reuses these algorithms, but runs them on the small
//! fetched fragment `G_Q` instead of `G`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod opt_simulation;
pub mod opt_vf2;
pub mod result;
pub mod simulation;
pub mod vf2;

pub use opt_simulation::opt_simulation_match;
pub use opt_vf2::opt_subgraph_match;
pub use result::{Match, MatchSet, SimulationRelation};
pub use simulation::{simulation_match, SimulationMatcher};
pub use vf2::{SubgraphMatcher, Vf2Config};
