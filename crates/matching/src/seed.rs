//! Index-seeded candidate sets for `optVF2` / `optgsim`.
//!
//! Given a pattern `Q`, a data graph `G` and the indices of an access schema
//! `A` with `G |= A`, this module computes, for every pattern node `u`, a
//! sound candidate set: a superset of the data nodes that can appear in any
//! answer. The optimized baselines hand these sets to the matchers of
//! [`crate::vf2`] / [`crate::simulation`], which prunes their search without
//! changing the result.
//!
//! Seeding works in two steps:
//!
//! 1. **global seeding** — a type (1) constraint `∅ → (l, N)` lists all
//!    `l`-labeled nodes, so any pattern node labeled `l` starts from at most
//!    `N` candidates;
//! 2. **propagation** — a constraint `S → (l, N)` narrows a node `u` labeled
//!    `l` once suitable pattern neighbors covering the source labels `S`
//!    already have narrow candidate sets: every data node matching `u` must
//!    be a common neighbor of some combination of their candidates, so the
//!    union of index lookups over those combinations covers `u`.
//!
//! The soundness of step 2 depends on the query semantics, captured by
//! [`SeedSemantics`]:
//!
//! * **isomorphism** — a match realizes *every* pattern edge, so any pattern
//!   neighbor of `u` (parent or child) can contribute a source label;
//! * **simulation** — a simulating node is only guaranteed witnesses for the
//!   *children* of `u`; a data node can simulate `u` without having any
//!   parent-side counterpart, so only children may drive the narrowing.
//!
//! Using the isomorphism rule for simulation would drop valid simulation
//! matches — the distinction mirrors the paper's separate boundedness
//! results for subgraph and simulation queries.

use bgpq_access::AccessIndexSet;
use bgpq_graph::{Graph, NodeId};
use bgpq_pattern::{Pattern, PatternNodeId};

/// Which query semantics the candidate sets must stay sound for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedSemantics {
    /// Subgraph-isomorphism matching (`VF2` family): propagate from any
    /// pattern neighbor.
    Isomorphism,
    /// Graph-simulation matching (`gsim` family): propagate from pattern
    /// children only.
    Simulation,
}

/// Safety valve: skip a narrowing step whose key-combination count explodes
/// (the unrestricted fallback remains sound).
const MAX_COMBINATIONS: usize = 20_000;

/// Counters describing one candidate-seeding run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedStats {
    /// Candidate nodes dropped because the pattern node's predicate rejected
    /// them — the seeding-side analogue of
    /// `FetchStats::predicate_filtered` in `bgpq-core`.
    pub predicate_filtered: u64,
}

/// Computes one sound candidate set per pattern node.
///
/// Nodes that no constraint narrows fall back to the label index of `graph`
/// (all label-compatible nodes), so the result is always usable with
/// [`crate::SubgraphMatcher::with_candidates`] /
/// [`crate::SimulationMatcher::with_candidates`].
pub fn seeded_candidates(
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
    semantics: SeedSemantics,
) -> Vec<Vec<NodeId>> {
    seeded_candidates_with_stats(pattern, graph, indices, semantics).0
}

/// [`seeded_candidates`] that also reports [`SeedStats`] counters.
pub fn seeded_candidates_with_stats(
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
    semantics: SeedSemantics,
) -> (Vec<Vec<NodeId>>, SeedStats) {
    let n = pattern.node_count();
    let mut cand: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut known = vec![false; n];
    let mut stats = SeedStats::default();

    // Step 1: global constraints.
    for u in pattern.nodes() {
        if let Some(id) = indices.find_global(pattern.label(u)) {
            let index = indices.get(id).expect("id from find_global");
            cand[u.index()] =
                filter_by_predicate(pattern, graph, u, index.global_nodes(), &mut stats);
            known[u.index()] = true;
        }
    }

    // Step 2: propagate until no node gains a candidate set.
    loop {
        let mut progressed = false;
        for u in pattern.nodes() {
            if known[u.index()] {
                continue;
            }
            if let Some(nodes) = try_narrow(
                pattern, graph, indices, semantics, u, &cand, &known, &mut stats,
            ) {
                cand[u.index()] = nodes;
                known[u.index()] = true;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Fallback: label-compatible nodes for everything still unseeded.
    for u in pattern.nodes() {
        if !known[u.index()] {
            cand[u.index()] = filter_by_predicate(
                pattern,
                graph,
                u,
                graph.nodes_with_label(pattern.label(u)),
                &mut stats,
            );
        }
    }
    (cand, stats)
}

/// Attempts to narrow `u` with some constraint of the schema, returning the
/// sound candidate set on success.
#[allow(clippy::too_many_arguments)]
fn try_narrow(
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
    semantics: SeedSemantics,
    u: PatternNodeId,
    cand: &[Vec<NodeId>],
    known: &[bool],
    stats: &mut SeedStats,
) -> Option<Vec<NodeId>> {
    let pool: Vec<PatternNodeId> = match semantics {
        SeedSemantics::Isomorphism => pattern.neighbors(u),
        SeedSemantics::Simulation => pattern.children(u).to_vec(),
    };
    for (id, constraint) in indices.schema().constraints_targeting(pattern.label(u)) {
        if constraint.is_global() {
            continue; // handled in step 1
        }
        let index = indices.get(id).expect("id from schema iteration");
        if index.is_truncated() {
            // A truncated index dropped (key → target) entries during its
            // build, so a lookup may report "empty" for a set that does
            // have common neighbors — narrowing through it would silently
            // lose matches. Fall through to another constraint or the
            // label-scan fallback instead.
            continue;
        }
        let weight = |w: PatternNodeId| known[w.index()].then(|| cand[w.index()].len() as u64);
        let Some(via) = pick_via_nodes(pattern, constraint.source(), &pool, &weight) else {
            continue;
        };
        let combos: usize = via
            .iter()
            .map(|w| cand[w.index()].len())
            .try_fold(1usize, |acc, len| acc.checked_mul(len))
            .unwrap_or(usize::MAX);
        if combos > MAX_COMBINATIONS {
            continue;
        }
        let mut out = Vec::new();
        for_each_combination(&via, cand, &mut |key| {
            out.extend_from_slice(index.common_neighbors(key));
        });
        // Combination unions repeat nodes heavily; a bitmap membership pass
        // drops duplicates in O(n) before the much smaller sort.
        let mut seen = bgpq_graph::NodeBitSet::with_capacity(graph.node_count());
        bgpq_graph::bitset::dedup_with_bitset(&mut out, &mut seen);
        out.sort_unstable();
        return Some(filter_by_predicate(pattern, graph, u, &out, stats));
    }
    None
}

/// Picks, for every source label of a constraint, a pattern node from `pool`
/// carrying that label — the one with the smallest `weight` (ties broken by
/// node id, keeping the choice deterministic). `weight` returns `None` for
/// nodes that are not yet available (unseeded here, uncovered in the
/// planner of `bgpq-core`, which shares this selection rule).
pub fn pick_via_nodes(
    pattern: &Pattern,
    source: &[bgpq_graph::Label],
    pool: &[PatternNodeId],
    weight: &impl Fn(PatternNodeId) -> Option<u64>,
) -> Option<Vec<PatternNodeId>> {
    source
        .iter()
        .map(|&label| {
            pool.iter()
                .copied()
                .filter(|&w| pattern.label(w) == label)
                .filter_map(|w| weight(w).map(|k| (k, w)))
                .min()
                .map(|(_, w)| w)
        })
        .collect()
}

/// Invokes `emit` with every combination of candidates of the `via` nodes
/// (the cartesian product of their candidate sets, in order).
///
/// Shared by the optimized baselines here and by the bounded fetch of
/// `bgpq-core`.
pub fn for_each_combination(
    via: &[PatternNodeId],
    candidates: &[Vec<NodeId>],
    emit: &mut impl FnMut(&[NodeId]),
) {
    let mut key = Vec::with_capacity(via.len());
    enumerate_combinations(via, candidates, &mut key, emit);
}

fn enumerate_combinations(
    via: &[PatternNodeId],
    cand: &[Vec<NodeId>],
    key: &mut Vec<NodeId>,
    emit: &mut impl FnMut(&[NodeId]),
) {
    if key.len() == via.len() {
        emit(key);
        return;
    }
    let w = via[key.len()];
    for &v in &cand[w.index()] {
        key.push(v);
        enumerate_combinations(via, cand, key, emit);
        key.pop();
    }
}

fn filter_by_predicate(
    pattern: &Pattern,
    graph: &Graph,
    u: PatternNodeId,
    nodes: &[NodeId],
    stats: &mut SeedStats,
) -> Vec<NodeId> {
    let kept: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&v| pattern.predicate(u).eval(graph.value(v)))
        .collect();
    stats.predicate_filtered += (nodes.len() - kept.len()) as u64;
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_access::{AccessConstraint, AccessSchema};
    use bgpq_graph::{GraphBuilder, Value};
    use bgpq_pattern::{PatternBuilder, Predicate};

    /// 2 years, 1 award, 4 movies (year alternating), 2 actors per movie.
    fn imdb_toy() -> Graph {
        let mut b = GraphBuilder::new();
        let y1 = b.add_node("year", Value::Int(2011));
        let y2 = b.add_node("year", Value::Int(2012));
        let aw = b.add_node("award", Value::str("Oscar"));
        for i in 0..4 {
            let m = b.add_node("movie", Value::Int(i));
            b.add_edge(if i % 2 == 0 { y1 } else { y2 }, m).unwrap();
            b.add_edge(aw, m).unwrap();
            for j in 0..2 {
                let a = b.add_node("actor", Value::Int(10 * i + j));
                b.add_edge(m, a).unwrap();
            }
        }
        b.build()
    }

    fn schema(graph: &Graph) -> AccessSchema {
        let year = graph.interner().get("year").unwrap();
        let award = graph.interner().get("award").unwrap();
        let movie = graph.interner().get("movie").unwrap();
        let actor = graph.interner().get("actor").unwrap();
        AccessSchema::from_constraints([
            AccessConstraint::global(year, 2),
            AccessConstraint::global(award, 1),
            AccessConstraint::new([year, award], movie, 2),
            AccessConstraint::unary(movie, actor, 2),
        ])
    }

    #[test]
    fn globals_seed_directly() {
        let g = imdb_toy();
        let indices = AccessIndexSet::build(&g, &schema(&g));
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        pb.node("year", Predicate::single(bgpq_pattern::Op::Ge, 2012));
        let q = pb.build();
        let cand = seeded_candidates(&q, &g, &indices, SeedSemantics::Isomorphism);
        // Global year constraint plus the predicate keeps only year 2012.
        assert_eq!(cand[0], vec![NodeId(1)]);
    }

    #[test]
    fn propagation_narrows_through_pair_constraint() {
        let g = imdb_toy();
        let indices = AccessIndexSet::build(&g, &schema(&g));
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let y = pb.node("year", Predicate::single(bgpq_pattern::Op::Eq, 2011));
        let a = pb.node("award", Predicate::always());
        let act = pb.node("actor", Predicate::always());
        pb.edge(y, m);
        pb.edge(a, m);
        pb.edge(m, act);
        let q = pb.build();
        let cand = seeded_candidates(&q, &g, &indices, SeedSemantics::Isomorphism);
        // year narrowed to 2011 → movies narrowed to the two 2011 movies
        // via (year, award) → movie, then actors to those movies' actors.
        assert_eq!(cand[1].len(), 1, "year candidates");
        assert_eq!(cand[0].len(), 2, "movie candidates");
        assert_eq!(cand[3].len(), 4, "actor candidates");
        // All real matches are covered.
        let movie_l = g.interner().get("movie").unwrap();
        for &mv in &cand[0] {
            assert_eq!(g.label(mv), movie_l);
        }
    }

    #[test]
    fn simulation_semantics_ignores_parent_side_constraints() {
        let g = imdb_toy();
        let indices = AccessIndexSet::build(&g, &schema(&g));
        // Pattern movie -> actor: for simulation, `actor` may not be narrowed
        // via its parent `movie` (a data actor node could simulate `actor`
        // without any movie parent), so it falls back to the label scan.
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        let m = pb.node("movie", Predicate::always());
        let act = pb.node("actor", Predicate::always());
        pb.edge(m, act);
        let q = pb.build();
        let iso = seeded_candidates(&q, &g, &indices, SeedSemantics::Isomorphism);
        let sim = seeded_candidates(&q, &g, &indices, SeedSemantics::Simulation);
        let actor_l = g.interner().get("actor").unwrap();
        assert_eq!(sim[1].len(), g.label_count(actor_l));
        // Isomorphism seeding cannot do better here either (movie itself is
        // unseeded: no global movie constraint and year/award are absent from
        // the pattern), so both fall back for the movie node.
        let movie_l = g.interner().get("movie").unwrap();
        assert_eq!(iso[0].len(), g.label_count(movie_l));
    }

    #[test]
    fn unseeded_nodes_fall_back_to_label_scan() {
        let g = imdb_toy();
        let indices = AccessIndexSet::build(&g, &AccessSchema::new());
        let mut pb = PatternBuilder::with_interner(g.interner().clone());
        pb.node("movie", Predicate::always());
        let q = pb.build();
        let cand = seeded_candidates(&q, &g, &indices, SeedSemantics::Isomorphism);
        let movie_l = g.interner().get("movie").unwrap();
        assert_eq!(cand[0], g.nodes_with_label(movie_l).to_vec());
    }

    #[test]
    fn empty_pattern_yields_no_sets() {
        let g = imdb_toy();
        let indices = AccessIndexSet::build(&g, &AccessSchema::new());
        let q = PatternBuilder::with_interner(g.interner().clone()).build();
        assert!(seeded_candidates(&q, &g, &indices, SeedSemantics::Simulation).is_empty());
    }
}
