//! `optVF2`: subgraph-isomorphism matching seeded by access-constraint
//! indices.
//!
//! The paper's optimized baseline runs the same backtracking search as `VF2`
//! but first narrows each pattern node's candidate set with the indices of an
//! access schema (see [`crate::seed`]). Because the candidate sets are sound
//! supersets of every match image, the answer is identical to
//! [`crate::vf2`] — only faster. The bounded executor `bVF2`
//! (`bgpq_core::exec::bounded_subgraph_match`) goes one step further and
//! runs the search on the fetched fragment `G_Q` instead of `G`.

use crate::result::MatchSet;
use crate::seed::{seeded_candidates_with_stats, SeedSemantics, SeedStats};
use crate::vf2::{SubgraphMatcher, Vf2Config};
use bgpq_access::AccessIndexSet;
use bgpq_graph::Graph;
use bgpq_pattern::Pattern;

/// Enumerates all subgraph-isomorphism matches of `pattern` in `graph`,
/// seeding the search with candidate sets narrowed by `indices`.
///
/// Equivalent to `SubgraphMatcher::new(pattern, graph).find_all()` whenever
/// `graph` satisfies the schema behind `indices`.
pub fn opt_subgraph_match(pattern: &Pattern, graph: &Graph, indices: &AccessIndexSet) -> MatchSet {
    opt_subgraph_match_with_config(pattern, graph, indices, Vf2Config::default()).0
}

/// [`opt_subgraph_match`] with explicit [`Vf2Config`] knobs, also returning
/// the search statistics.
pub fn opt_subgraph_match_with_config(
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
    config: Vf2Config,
) -> (MatchSet, crate::vf2::Vf2Stats) {
    let (matches, vf2, _) = opt_subgraph_match_stats(pattern, graph, indices, config);
    (matches, vf2)
}

/// [`opt_subgraph_match_with_config`] that additionally reports the
/// candidate-seeding counters ([`SeedStats`]), so session layers can surface
/// `predicate_filtered` uniformly across strategies.
pub fn opt_subgraph_match_stats(
    pattern: &Pattern,
    graph: &Graph,
    indices: &AccessIndexSet,
    config: Vf2Config,
) -> (MatchSet, crate::vf2::Vf2Stats, SeedStats) {
    let (candidates, seed) =
        seeded_candidates_with_stats(pattern, graph, indices, SeedSemantics::Isomorphism);
    let (matches, vf2) = SubgraphMatcher::new(pattern, graph)
        .with_candidates(candidates)
        .with_config(config)
        .run();
    (matches, vf2, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_access::{AccessConstraint, AccessSchema};
    use bgpq_graph::{GraphBuilder, Value};
    use bgpq_pattern::{PatternBuilder, Predicate};

    fn movie_graph(k: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..k as i64 {
            let m = b.add_node("movie", Value::Int(2000 + i));
            let a = b.add_node("actor", Value::Int(i));
            let s = b.add_node("actress", Value::Int(i));
            b.add_edge(m, a).unwrap();
            b.add_edge(m, s).unwrap();
        }
        b.build()
    }

    fn star_pattern(graph: &Graph) -> Pattern {
        let mut b = PatternBuilder::with_interner(graph.interner().clone());
        let m = b.node("movie", Predicate::always());
        let a = b.node("actor", Predicate::always());
        let s = b.node("actress", Predicate::always());
        b.edge(m, a);
        b.edge(m, s);
        b.build()
    }

    fn full_schema(graph: &Graph) -> AccessSchema {
        let movie = graph.interner().get("movie").unwrap();
        let actor = graph.interner().get("actor").unwrap();
        let actress = graph.interner().get("actress").unwrap();
        AccessSchema::from_constraints([
            AccessConstraint::global(movie, 100),
            AccessConstraint::unary(movie, actor, 1),
            AccessConstraint::unary(movie, actress, 1),
        ])
    }

    #[test]
    fn matches_equal_plain_vf2() {
        let g = movie_graph(5);
        let q = star_pattern(&g);
        let indices = AccessIndexSet::build(&g, &full_schema(&g));
        let plain = SubgraphMatcher::new(&q, &g).find_all();
        let opt = opt_subgraph_match(&q, &g, &indices);
        assert_eq!(plain, opt);
        assert_eq!(opt.len(), 5);
    }

    #[test]
    fn seeding_prunes_the_search() {
        let g = movie_graph(20);
        let q = star_pattern(&g);
        let indices = AccessIndexSet::build(&g, &full_schema(&g));
        let (_, plain_stats) = SubgraphMatcher::new(&q, &g).run();
        let (opt_set, opt_stats) =
            opt_subgraph_match_with_config(&q, &g, &indices, Vf2Config::default());
        assert_eq!(opt_set.len(), 20);
        assert!(
            opt_stats.steps <= plain_stats.steps,
            "seeded search must not expand more nodes ({} vs {})",
            opt_stats.steps,
            plain_stats.steps
        );
    }

    #[test]
    fn empty_schema_degenerates_to_plain_vf2() {
        let g = movie_graph(3);
        let q = star_pattern(&g);
        let indices = AccessIndexSet::build(&g, &AccessSchema::new());
        let plain = SubgraphMatcher::new(&q, &g).find_all();
        assert_eq!(plain, opt_subgraph_match(&q, &g, &indices));
    }
}
