//! Verification that a graph satisfies an access schema (`G |= A`).
//!
//! Only the cardinality side needs checking — the index side is provided by
//! [`crate::AccessIndexSet`] itself. A constraint `S → (l, N)` is violated
//! when some `S`-labeled node set has more than `N` common neighbors labeled
//! `l`; it suffices to inspect the sets that have at least one common
//! neighbor, which is exactly what building the index enumerates.

use crate::constraint::{AccessConstraint, ConstraintId};
use crate::index::ConstraintIndex;
use crate::schema::AccessSchema;
use bgpq_graph::Graph;
use std::fmt;

/// A violated constraint together with the observed cardinality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Position of the violated constraint in the schema.
    pub constraint: ConstraintId,
    /// The violated constraint itself.
    pub access_constraint: AccessConstraint,
    /// The largest common-neighbor set observed (exceeds the bound).
    pub observed: usize,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint {} ({}) violated: observed cardinality {} > bound {}",
            self.constraint,
            self.access_constraint,
            self.observed,
            self.access_constraint.bound()
        )
    }
}

/// Checks whether `graph |= schema`, returning every violation found.
///
/// An empty result means the graph satisfies the (cardinality part of the)
/// schema.
pub fn check_schema(graph: &Graph, schema: &AccessSchema) -> Vec<Violation> {
    schema
        .iter_with_ids()
        .filter_map(|(id, c)| {
            let index = ConstraintIndex::build(graph, c.clone());
            let observed = index.max_cardinality();
            (observed > c.bound()).then(|| Violation {
                constraint: id,
                access_constraint: c.clone(),
                observed,
            })
        })
        .collect()
}

/// Convenience wrapper: true when `graph |= schema`.
pub fn satisfies(graph: &Graph, schema: &AccessSchema) -> bool {
    check_schema(graph, schema).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_graph::{GraphBuilder, Value};

    fn star(actors_per_movie: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for m in 0..3i64 {
            let movie = b.add_node("movie", Value::Int(m));
            for a in 0..actors_per_movie as i64 {
                let actor = b.add_node("actor", Value::Int(m * 100 + a));
                b.add_edge(movie, actor).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn satisfied_schema_has_no_violations() {
        let g = star(3);
        let movie = g.interner().get("movie").unwrap();
        let actor = g.interner().get("actor").unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::unary(movie, actor, 3),
            AccessConstraint::global(movie, 3),
        ]);
        assert!(check_schema(&g, &schema).is_empty());
        assert!(satisfies(&g, &schema));
    }

    #[test]
    fn violations_report_observed_cardinality() {
        let g = star(5);
        let movie = g.interner().get("movie").unwrap();
        let actor = g.interner().get("actor").unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::unary(movie, actor, 2), // violated: 5 actors
            AccessConstraint::global(movie, 2),       // violated: 3 movies
            AccessConstraint::global(actor, 1000),    // satisfied
        ]);
        let violations = check_schema(&g, &schema);
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].constraint, ConstraintId(0));
        assert_eq!(violations[0].observed, 5);
        assert_eq!(violations[1].observed, 3);
        assert!(violations[0].to_string().contains("violated"));
        assert!(!satisfies(&g, &schema));
    }

    #[test]
    fn empty_schema_is_always_satisfied() {
        let g = star(1);
        assert!(satisfies(&g, &AccessSchema::new()));
        assert!(satisfies(&Graph::empty(), &AccessSchema::new()));
    }

    #[test]
    fn unused_labels_satisfy_any_bound() {
        let g = star(2);
        let ghost = bgpq_graph::Label(99);
        let schema = AccessSchema::from_constraints([AccessConstraint::global(ghost, 0)]);
        assert!(satisfies(&g, &schema));
    }
}
