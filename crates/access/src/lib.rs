//! # bgpq-access
//!
//! Access constraints, access schemas and their indices on data graphs —
//! the substrate that makes graph pattern queries *effectively bounded*
//! (Section II of *Making Pattern Queries Bounded in Big Graphs*, ICDE 2015).
//!
//! An **access constraint** has the form `S → (l, N)` where `S ⊆ Σ` is a set
//! of labels, `l` a label and `N` a natural number. A graph `G` satisfies it
//! when
//!
//! 1. every `S`-labeled set `V_S` of nodes of `G` has at most `N` common
//!    neighbors labeled `l` (the *cardinality* part), and
//! 2. there is an index that, given any `S`-labeled set `V_S`, returns those
//!    common neighbors in `O(N)` time, independent of `|G|` (the *index*
//!    part).
//!
//! An **access schema** `A` is a set of such constraints. This crate
//! provides:
//!
//! * [`AccessConstraint`] / [`AccessSchema`] — the constraint language,
//!   including the special type (1) (`∅ → (l, N)`, a global label count) and
//!   type (2) (`l → (l', N)`, a per-node fanout bound) forms used by
//!   instance-bounded extensions;
//! * [`ConstraintIndex`] / [`AccessIndexSet`] — in-memory indices backing the
//!   constraints, with `O(answer)` lookups and size accounting;
//! * [`discovery`] — extraction of constraints from a data graph (degree
//!   bounds, label counts, FD-like constraints and grouped constraints);
//! * [`satisfy`] — verification that `G |= A`;
//! * [`maintenance`] — incremental index maintenance under edge insertions
//!   and deletions, touching only `ΔG ∪ Nb(ΔG)`;
//! * [`serialize`] — a line-oriented text format for schemas, so a
//!   discovered schema can be shipped next to its dataset and reloaded
//!   without another discovery pass;
//! * [`snapshot`] — binary persistence of schema **and** built indices
//!   inside the `.bgpq` container, so discovery and index construction are
//!   genuinely one-time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod discovery;
pub mod index;
pub mod maintenance;
pub mod satisfy;
pub mod schema;
pub mod serialize;
pub mod snapshot;

pub use constraint::{AccessConstraint, ConstraintId, ConstraintKind};
pub use discovery::{discover_schema, DiscoveryConfig};
pub use index::DEFAULT_MAX_COMBINATIONS_PER_NODE;
pub use index::{AccessIndexSet, ConstraintIndex};
pub use maintenance::{
    apply_delta, apply_deltas, apply_deltas_filtered, GraphDelta, MaintenanceStats, TouchedNodes,
};
pub use satisfy::{check_schema, Violation};
pub use schema::AccessSchema;
pub use serialize::{load_schema, read_schema, save_schema, write_schema};
pub use snapshot::{
    decode_bundle, decode_index_set, encode_index_set, load_snapshot, read_snapshot, save_snapshot,
    write_snapshot, write_snapshot_with_sections, SnapshotBundle,
};
