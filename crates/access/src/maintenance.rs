//! Incremental maintenance of access-constraint indices.
//!
//! Section II of the paper notes that the indices of an access schema can be
//! maintained incrementally and locally: after a change `ΔG` it suffices to
//! inspect `ΔG ∪ Nb(ΔG)` — the changed nodes/edges and their neighbors —
//! regardless of how big `G` is.
//!
//! Our [`crate::ConstraintIndex`] stores, for a constraint `S → (l, N)`, the
//! contribution of every `l`-labeled node `u`: the set of `S`-labeled
//! neighbor combinations of `u`. That contribution depends only on `u`'s
//! neighborhood, so an edge insertion or deletion `(a, b)` can only change
//! the contributions of `a` and `b` (when they carry the target label), and
//! a node insertion only adds a (possibly empty) contribution for the new
//! node. [`apply_delta`] refreshes exactly those contributions against the
//! *new* graph.

use crate::index::AccessIndexSet;
use bgpq_graph::{Graph, NodeId};

/// A single change applied to the underlying data graph.
///
/// The delta refers to the **new** graph: for insertions the edge/node is
/// present in the new graph, for deletions it is absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphDelta {
    /// A directed edge was inserted.
    InsertEdge(NodeId, NodeId),
    /// A directed edge was deleted.
    DeleteEdge(NodeId, NodeId),
    /// A node was inserted (possibly followed by `InsertEdge` deltas).
    InsertNode(NodeId),
    /// A node was deleted. A node deletion implies the deletion of its
    /// incident edges, whose endpoints' contributions also change, so a
    /// `DeleteNode` must travel in the same batch as one `DeleteEdge` per
    /// incident edge of the *old* graph —
    /// [`Graph::delete_node`](bgpq_graph::Graph::delete_node) returns exactly
    /// that edge list.
    DeleteNode(NodeId),
}

/// The nodes directly touched by one delta (`ΔG`): at most two, returned
/// without heap allocation — the maintenance hot loop flattens one of these
/// per delta, so a `Vec` per delta would dominate small-batch costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchedNodes {
    nodes: [NodeId; 2],
    len: u8,
}

impl TouchedNodes {
    fn one(a: NodeId) -> Self {
        TouchedNodes {
            nodes: [a, a],
            len: 1,
        }
    }

    fn two(a: NodeId, b: NodeId) -> Self {
        TouchedNodes {
            nodes: [a, b],
            len: 2,
        }
    }

    /// The touched nodes as a slice.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes[..self.len as usize]
    }
}

impl std::ops::Deref for TouchedNodes {
    type Target = [NodeId];

    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

impl IntoIterator for TouchedNodes {
    type Item = NodeId;
    type IntoIter = std::iter::Take<std::array::IntoIter<NodeId, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.into_iter().take(self.len as usize)
    }
}

impl GraphDelta {
    /// The nodes directly touched by this delta (`ΔG`), heap-free.
    pub fn touched_nodes(&self) -> TouchedNodes {
        match *self {
            GraphDelta::InsertEdge(a, b) | GraphDelta::DeleteEdge(a, b) => TouchedNodes::two(a, b),
            GraphDelta::InsertNode(v) | GraphDelta::DeleteNode(v) => TouchedNodes::one(v),
        }
    }
}

/// What one maintenance call recomputed — the serving layer's observability
/// into the paper's `O(|ΔG ∪ Nb(ΔG)|)` claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Distinct nodes in `ΔG` (after deduplicating the batch).
    pub touched_nodes: usize,
    /// `(constraint, node)` contributions actually recomputed; each refresh
    /// inspects only that node's neighborhood in the new graph.
    pub refreshed_contributions: usize,
}

/// Updates every index of `indices` to reflect `delta`, using `new_graph`
/// (the graph *after* the change) as ground truth. Only the contributions of
/// nodes in `ΔG` are recomputed.
pub fn apply_delta(
    indices: &mut AccessIndexSet,
    new_graph: &Graph,
    delta: &GraphDelta,
) -> MaintenanceStats {
    apply_deltas(indices, new_graph, std::slice::from_ref(delta))
}

/// Applies a batch of deltas at once; contributions of each affected node are
/// refreshed a single time per index.
///
/// A node is refreshed when it currently carries an index's target label
/// **or** when it previously contributed to that index — the latter covers
/// deleted and relabeled nodes, whose stale contributions must be removed
/// even though their new label no longer matches. Refreshes run under the
/// combination cap each index was built with, so a maintained index stays
/// byte-for-byte equivalent to a fresh rebuild even at the cap.
pub fn apply_deltas(
    indices: &mut AccessIndexSet,
    new_graph: &Graph,
    deltas: &[GraphDelta],
) -> MaintenanceStats {
    apply_deltas_filtered(indices, new_graph, deltas, |_| true)
}

/// [`apply_deltas`] restricted to the target nodes `owns` accepts — the
/// maintenance path for one shard's slice of a partitioned index set (built
/// with [`AccessIndexSet::build_filtered_with_cap`]). A shard only ever
/// holds contributions of the targets it owns, so refreshing foreign nodes
/// would be wasted work at best and, for `InsertNode`, would smuggle a
/// foreign contribution into the wrong shard. Ownership must be the same
/// pure `node → shard` function the shard was built with.
pub fn apply_deltas_filtered(
    indices: &mut AccessIndexSet,
    new_graph: &Graph,
    deltas: &[GraphDelta],
    owns: impl Fn(NodeId) -> bool,
) -> MaintenanceStats {
    let mut touched: Vec<NodeId> = deltas
        .iter()
        .flat_map(GraphDelta::touched_nodes)
        .filter(|&v| owns(v))
        .collect();
    touched.sort_unstable();
    touched.dedup();

    let mut stats = MaintenanceStats {
        touched_nodes: touched.len(),
        refreshed_contributions: 0,
    };
    let ids: Vec<_> = indices.iter().map(|(id, _)| id).collect();
    for id in ids {
        let Some(index) = indices.get_mut(id) else {
            continue;
        };
        let target_label = index.constraint().target();
        for &node in &touched {
            let is_target = new_graph
                .try_label(node)
                .map(|l| l == target_label)
                .unwrap_or(false);
            if is_target || index.has_contribution(node) {
                index.refresh_target(new_graph, node);
                stats.refreshed_contributions += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{AccessConstraint, ConstraintId};
    use crate::schema::AccessSchema;
    use bgpq_graph::{GraphBuilder, Value};

    struct Fixture {
        nodes: Vec<NodeId>,
        edges: Vec<(NodeId, NodeId)>,
    }

    /// year/award/movie/actor fixture with an explicit edge list so tests can
    /// rebuild graphs with edges added or removed.
    fn fixture() -> Fixture {
        // Node ids assigned in order below.
        let year1 = NodeId(0);
        let year2 = NodeId(1);
        let award = NodeId(2);
        let movie1 = NodeId(3);
        let movie2 = NodeId(4);
        let actor1 = NodeId(5);
        let actor2 = NodeId(6);
        let edges = vec![
            (year1, movie1),
            (award, movie1),
            (year2, movie2),
            (award, movie2),
            (movie1, actor1),
            (movie2, actor2),
        ];
        Fixture {
            nodes: vec![year1, year2, award, movie1, movie2, actor1, actor2],
            edges,
        }
    }

    fn build_graph(edges: &[(NodeId, NodeId)], extra_nodes: usize) -> Graph {
        let labels = ["year", "year", "award", "movie", "movie", "actor", "actor"];
        let mut b = GraphBuilder::new();
        for (i, l) in labels.iter().enumerate() {
            b.add_node(l, Value::Int(i as i64));
        }
        for _ in 0..extra_nodes {
            b.add_node("movie", Value::Int(99));
        }
        for &(s, d) in edges {
            b.add_edge(s, d).unwrap();
        }
        b.build()
    }

    fn schema_for(graph: &Graph) -> AccessSchema {
        let year = graph.interner().get("year").unwrap();
        let award = graph.interner().get("award").unwrap();
        let movie = graph.interner().get("movie").unwrap();
        let actor = graph.interner().get("actor").unwrap();
        AccessSchema::from_constraints([
            AccessConstraint::new([year, award], movie, 4),
            AccessConstraint::unary(movie, actor, 5),
            AccessConstraint::global(movie, 10),
        ])
    }

    /// Asserts that `maintained` answers every lookup exactly like an index
    /// rebuilt from scratch on `graph`.
    fn assert_equivalent_to_rebuild(maintained: &AccessIndexSet, graph: &Graph) {
        let rebuilt = AccessIndexSet::build(graph, maintained.schema());
        for (id, fresh) in rebuilt.iter() {
            let kept = maintained.get(id).unwrap();
            assert_eq!(
                kept.key_count(),
                fresh.key_count(),
                "key count mismatch for {id}"
            );
            assert_eq!(kept.size(), fresh.size(), "size mismatch for {id}");
            for (key, answers) in fresh.entries() {
                assert_eq!(
                    kept.common_neighbors(key),
                    answers,
                    "answers mismatch for {id} key {key:?}"
                );
            }
            assert_eq!(kept.max_cardinality(), fresh.max_cardinality());
            assert_eq!(kept.is_truncated(), fresh.is_truncated());
        }
    }

    #[test]
    fn edge_insertion_matches_full_rebuild() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);

        // Connect year1 to movie2: movie2 now has two (year, award) keys.
        let mut new_edges = f.edges.clone();
        new_edges.push((f.nodes[0], f.nodes[4]));
        let new = build_graph(&new_edges, 0);
        apply_delta(
            &mut indices,
            &new,
            &GraphDelta::InsertEdge(f.nodes[0], f.nodes[4]),
        );
        assert_equivalent_to_rebuild(&indices, &new);
    }

    #[test]
    fn edge_deletion_matches_full_rebuild() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);

        // Delete award -> movie1: movie1 no longer has a (year, award) key.
        let new_edges: Vec<_> = f
            .edges
            .iter()
            .copied()
            .filter(|&e| e != (f.nodes[2], f.nodes[3]))
            .collect();
        let new = build_graph(&new_edges, 0);
        apply_delta(
            &mut indices,
            &new,
            &GraphDelta::DeleteEdge(f.nodes[2], f.nodes[3]),
        );
        assert_equivalent_to_rebuild(&indices, &new);
    }

    #[test]
    fn batched_deltas_match_full_rebuild() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);

        // Apply two changes at once: remove (movie1, actor1), add (movie1, actor2).
        let mut new_edges: Vec<_> = f
            .edges
            .iter()
            .copied()
            .filter(|&e| e != (f.nodes[3], f.nodes[5]))
            .collect();
        new_edges.push((f.nodes[3], f.nodes[6]));
        let new = build_graph(&new_edges, 0);
        apply_deltas(
            &mut indices,
            &new,
            &[
                GraphDelta::DeleteEdge(f.nodes[3], f.nodes[5]),
                GraphDelta::InsertEdge(f.nodes[3], f.nodes[6]),
            ],
        );
        assert_equivalent_to_rebuild(&indices, &new);
    }

    #[test]
    fn node_insertion_updates_global_indices() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);

        // New graph has one extra movie node (id 7) with no edges yet.
        let new = build_graph(&f.edges, 1);
        apply_delta(&mut indices, &new, &GraphDelta::InsertNode(NodeId(7)));
        assert_equivalent_to_rebuild(&indices, &new);
        // The global movie index must now list 3 movies.
        let global = indices.get(ConstraintId(2)).unwrap();
        assert_eq!(global.global_nodes().len(), 3);
    }

    #[test]
    fn unrelated_deltas_do_not_change_indices() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);
        let before_size = indices.total_size();

        // Add an actor-to-actor edge: no constraint targets year/actor pairs
        // in a way this affects (actor is a target only of movie→actor whose
        // endpoints didn't change labels... but actor1 is a target of
        // constraint 1? No: constraint 1 targets actor with source movie, and
        // actor1's neighborhood changed, so its contribution is refreshed —
        // the result must still equal a rebuild).
        let mut new_edges = f.edges.clone();
        new_edges.push((f.nodes[5], f.nodes[6]));
        let new = build_graph(&new_edges, 0);
        apply_delta(
            &mut indices,
            &new,
            &GraphDelta::InsertEdge(f.nodes[5], f.nodes[6]),
        );
        assert_equivalent_to_rebuild(&indices, &new);
        // Sizes did not change: the actor-actor edge creates no new
        // (movie → actor) combination.
        assert_eq!(indices.total_size(), before_size);
    }

    #[test]
    fn touched_nodes_reports_delta_support() {
        assert_eq!(
            GraphDelta::InsertEdge(NodeId(1), NodeId(2))
                .touched_nodes()
                .as_slice(),
            &[NodeId(1), NodeId(2)]
        );
        assert_eq!(
            GraphDelta::DeleteEdge(NodeId(3), NodeId(4))
                .touched_nodes()
                .as_slice(),
            &[NodeId(3), NodeId(4)]
        );
        assert_eq!(
            GraphDelta::InsertNode(NodeId(5)).touched_nodes().as_slice(),
            &[NodeId(5)]
        );
        assert_eq!(
            GraphDelta::DeleteNode(NodeId(6)).touched_nodes().as_slice(),
            &[NodeId(6)]
        );
        // The iterator form matches the slice form and allocates nothing.
        let collected: Vec<NodeId> = GraphDelta::InsertEdge(NodeId(1), NodeId(2))
            .touched_nodes()
            .into_iter()
            .collect();
        assert_eq!(collected, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn node_deletion_matches_full_rebuild() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);

        // Delete movie1 through the mutation API: its (year, award) key and
        // its movie→actor contribution must disappear, and the global movie
        // index must drop it.
        let mut new = old.clone();
        let removed = new.delete_node(f.nodes[3]).unwrap();
        let mut deltas: Vec<GraphDelta> = removed
            .iter()
            .map(|e| GraphDelta::DeleteEdge(e.src, e.dst))
            .collect();
        deltas.push(GraphDelta::DeleteNode(f.nodes[3]));
        let stats = apply_deltas(&mut indices, &new, &deltas);
        // movie1 plus its 3 neighbors (year1, award, actor1).
        assert_eq!(stats.touched_nodes, 4);
        assert!(stats.refreshed_contributions > 0);
        assert_equivalent_to_rebuild(&indices, &new);
        let global = indices.get(ConstraintId(2)).unwrap();
        assert_eq!(global.global_nodes().len(), 1);
        assert!(!global.has_contribution(f.nodes[3]));
    }

    #[test]
    fn maintenance_respects_the_build_cap() {
        // A hub with x/y source pairs exceeding a tiny cap: refreshing the
        // hub must re-enumerate under the *build* cap, exactly like a fresh
        // build with that cap would.
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", Value::Null);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..8 {
            let x = b.add_node("x", Value::Int(i));
            let y = b.add_node("y", Value::Int(i));
            b.add_edge(x, hub).unwrap();
            b.add_edge(y, hub).unwrap();
            xs.push(x);
            ys.push(y);
        }
        let mut g = b.build();
        let x_l = g.interner().get("x").unwrap();
        let y_l = g.interner().get("y").unwrap();
        let hub_l = g.interner().get("hub").unwrap();
        let schema =
            AccessSchema::from_constraints([AccessConstraint::new([x_l, y_l], hub_l, 100)]);
        let cap = 10;
        let mut indices = AccessIndexSet::build_with_cap(&g, &schema, cap);
        assert!(indices.get(ConstraintId(0)).unwrap().is_truncated());
        assert_eq!(indices.get(ConstraintId(0)).unwrap().cap(), cap);

        // Mutate the hub's neighborhood and maintain incrementally.
        let x_new = g.insert_node("x", Value::Int(99));
        g.insert_edge(x_new, hub).unwrap();
        g.delete_edge(xs[0], hub).unwrap();
        let stats = apply_deltas(
            &mut indices,
            &g,
            &[
                GraphDelta::InsertNode(x_new),
                GraphDelta::InsertEdge(x_new, hub),
                GraphDelta::DeleteEdge(xs[0], hub),
            ],
        );
        assert!(stats.refreshed_contributions > 0);

        // The maintained index equals a fresh build under the same cap.
        let rebuilt = AccessIndexSet::build_with_cap(&g, &schema, cap);
        let kept = indices.get(ConstraintId(0)).unwrap();
        let fresh = rebuilt.get(ConstraintId(0)).unwrap();
        assert_eq!(kept.key_count(), fresh.key_count());
        assert_eq!(kept.size(), fresh.size());
        for (key, answers) in fresh.entries() {
            assert_eq!(kept.common_neighbors(key), answers);
        }
        assert_eq!(kept.max_cardinality(), fresh.max_cardinality());
        assert_eq!(kept.is_truncated(), fresh.is_truncated());
    }

    #[test]
    fn truncation_verdict_tracks_the_offending_node() {
        // One hub over the cap; deleting the hub must clear the truncation
        // verdict exactly like a rebuild on the new graph would.
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", Value::Null);
        for i in 0..6 {
            let x = b.add_node("x", Value::Int(i));
            let y = b.add_node("y", Value::Int(i));
            b.add_edge(x, hub).unwrap();
            b.add_edge(y, hub).unwrap();
        }
        let mut g = b.build();
        let x_l = g.interner().get("x").unwrap();
        let y_l = g.interner().get("y").unwrap();
        let hub_l = g.interner().get("hub").unwrap();
        let schema = AccessSchema::from_constraints([AccessConstraint::new([x_l, y_l], hub_l, 1)]);
        let mut indices = AccessIndexSet::build_with_cap(&g, &schema, 8);
        assert!(indices.get(ConstraintId(0)).unwrap().is_truncated());

        let mut deltas: Vec<GraphDelta> = g
            .delete_node(hub)
            .unwrap()
            .iter()
            .map(|e| GraphDelta::DeleteEdge(e.src, e.dst))
            .collect();
        deltas.push(GraphDelta::DeleteNode(hub));
        apply_deltas(&mut indices, &g, &deltas);

        assert!(
            !indices.get(ConstraintId(0)).unwrap().is_truncated(),
            "removing the capped node must clear the truncation verdict"
        );
        let rebuilt = AccessIndexSet::build_with_cap(&g, &schema, 8);
        assert!(!rebuilt.get(ConstraintId(0)).unwrap().is_truncated());
    }
}
