//! Incremental maintenance of access-constraint indices.
//!
//! Section II of the paper notes that the indices of an access schema can be
//! maintained incrementally and locally: after a change `ΔG` it suffices to
//! inspect `ΔG ∪ Nb(ΔG)` — the changed nodes/edges and their neighbors —
//! regardless of how big `G` is.
//!
//! Our [`crate::ConstraintIndex`] stores, for a constraint `S → (l, N)`, the
//! contribution of every `l`-labeled node `u`: the set of `S`-labeled
//! neighbor combinations of `u`. That contribution depends only on `u`'s
//! neighborhood, so an edge insertion or deletion `(a, b)` can only change
//! the contributions of `a` and `b` (when they carry the target label), and
//! a node insertion only adds a (possibly empty) contribution for the new
//! node. [`apply_delta`] refreshes exactly those contributions against the
//! *new* graph.

use crate::index::{AccessIndexSet, DEFAULT_MAX_COMBINATIONS_PER_NODE};
use bgpq_graph::{Graph, NodeId};

/// A single change applied to the underlying data graph.
///
/// The delta refers to the **new** graph: for insertions the edge/node is
/// present in the new graph, for deletions it is absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphDelta {
    /// A directed edge was inserted.
    InsertEdge(NodeId, NodeId),
    /// A directed edge was deleted.
    DeleteEdge(NodeId, NodeId),
    /// A node was inserted (possibly followed by `InsertEdge` deltas).
    InsertNode(NodeId),
}

impl GraphDelta {
    /// The nodes directly touched by this delta (`ΔG`).
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        match *self {
            GraphDelta::InsertEdge(a, b) | GraphDelta::DeleteEdge(a, b) => vec![a, b],
            GraphDelta::InsertNode(v) => vec![v],
        }
    }
}

/// Updates every index of `indices` to reflect `delta`, using `new_graph`
/// (the graph *after* the change) as ground truth. Only the contributions of
/// nodes in `ΔG` are recomputed.
pub fn apply_delta(indices: &mut AccessIndexSet, new_graph: &Graph, delta: &GraphDelta) {
    apply_deltas(indices, new_graph, std::slice::from_ref(delta));
}

/// Applies a batch of deltas at once; contributions of each affected node are
/// refreshed a single time.
pub fn apply_deltas(indices: &mut AccessIndexSet, new_graph: &Graph, deltas: &[GraphDelta]) {
    let mut touched: Vec<NodeId> = deltas.iter().flat_map(GraphDelta::touched_nodes).collect();
    touched.sort_unstable();
    touched.dedup();

    let ids: Vec<_> = indices.iter().map(|(id, _)| id).collect();
    for id in ids {
        let Some(index) = indices.get_mut(id) else {
            continue;
        };
        let target_label = index.constraint().target();
        for &node in &touched {
            let is_target = new_graph
                .try_label(node)
                .map(|l| l == target_label)
                .unwrap_or(false);
            // Refresh when the node currently carries the target label, or
            // when it previously contributed to the index (covers deletions
            // and label-irrelevant nodes cheaply: refresh is a no-op if it
            // never contributed).
            if is_target {
                index.refresh_target(new_graph, node, DEFAULT_MAX_COMBINATIONS_PER_NODE);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{AccessConstraint, ConstraintId};
    use crate::schema::AccessSchema;
    use bgpq_graph::{GraphBuilder, Value};

    struct Fixture {
        nodes: Vec<NodeId>,
        edges: Vec<(NodeId, NodeId)>,
    }

    /// year/award/movie/actor fixture with an explicit edge list so tests can
    /// rebuild graphs with edges added or removed.
    fn fixture() -> Fixture {
        // Node ids assigned in order below.
        let year1 = NodeId(0);
        let year2 = NodeId(1);
        let award = NodeId(2);
        let movie1 = NodeId(3);
        let movie2 = NodeId(4);
        let actor1 = NodeId(5);
        let actor2 = NodeId(6);
        let edges = vec![
            (year1, movie1),
            (award, movie1),
            (year2, movie2),
            (award, movie2),
            (movie1, actor1),
            (movie2, actor2),
        ];
        Fixture {
            nodes: vec![year1, year2, award, movie1, movie2, actor1, actor2],
            edges,
        }
    }

    fn build_graph(edges: &[(NodeId, NodeId)], extra_nodes: usize) -> Graph {
        let labels = ["year", "year", "award", "movie", "movie", "actor", "actor"];
        let mut b = GraphBuilder::new();
        for (i, l) in labels.iter().enumerate() {
            b.add_node(l, Value::Int(i as i64));
        }
        for _ in 0..extra_nodes {
            b.add_node("movie", Value::Int(99));
        }
        for &(s, d) in edges {
            b.add_edge(s, d).unwrap();
        }
        b.build()
    }

    fn schema_for(graph: &Graph) -> AccessSchema {
        let year = graph.interner().get("year").unwrap();
        let award = graph.interner().get("award").unwrap();
        let movie = graph.interner().get("movie").unwrap();
        let actor = graph.interner().get("actor").unwrap();
        AccessSchema::from_constraints([
            AccessConstraint::new([year, award], movie, 4),
            AccessConstraint::unary(movie, actor, 5),
            AccessConstraint::global(movie, 10),
        ])
    }

    /// Asserts that `maintained` answers every lookup exactly like an index
    /// rebuilt from scratch on `graph`.
    fn assert_equivalent_to_rebuild(maintained: &AccessIndexSet, graph: &Graph) {
        let rebuilt = AccessIndexSet::build(graph, maintained.schema());
        for (id, fresh) in rebuilt.iter() {
            let kept = maintained.get(id).unwrap();
            assert_eq!(
                kept.key_count(),
                fresh.key_count(),
                "key count mismatch for {id}"
            );
            assert_eq!(kept.size(), fresh.size(), "size mismatch for {id}");
            for (key, answers) in fresh.entries() {
                assert_eq!(
                    kept.common_neighbors(key),
                    answers,
                    "answers mismatch for {id} key {key:?}"
                );
            }
            assert_eq!(kept.max_cardinality(), fresh.max_cardinality());
        }
    }

    #[test]
    fn edge_insertion_matches_full_rebuild() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);

        // Connect year1 to movie2: movie2 now has two (year, award) keys.
        let mut new_edges = f.edges.clone();
        new_edges.push((f.nodes[0], f.nodes[4]));
        let new = build_graph(&new_edges, 0);
        apply_delta(
            &mut indices,
            &new,
            &GraphDelta::InsertEdge(f.nodes[0], f.nodes[4]),
        );
        assert_equivalent_to_rebuild(&indices, &new);
    }

    #[test]
    fn edge_deletion_matches_full_rebuild() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);

        // Delete award -> movie1: movie1 no longer has a (year, award) key.
        let new_edges: Vec<_> = f
            .edges
            .iter()
            .copied()
            .filter(|&e| e != (f.nodes[2], f.nodes[3]))
            .collect();
        let new = build_graph(&new_edges, 0);
        apply_delta(
            &mut indices,
            &new,
            &GraphDelta::DeleteEdge(f.nodes[2], f.nodes[3]),
        );
        assert_equivalent_to_rebuild(&indices, &new);
    }

    #[test]
    fn batched_deltas_match_full_rebuild() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);

        // Apply two changes at once: remove (movie1, actor1), add (movie1, actor2).
        let mut new_edges: Vec<_> = f
            .edges
            .iter()
            .copied()
            .filter(|&e| e != (f.nodes[3], f.nodes[5]))
            .collect();
        new_edges.push((f.nodes[3], f.nodes[6]));
        let new = build_graph(&new_edges, 0);
        apply_deltas(
            &mut indices,
            &new,
            &[
                GraphDelta::DeleteEdge(f.nodes[3], f.nodes[5]),
                GraphDelta::InsertEdge(f.nodes[3], f.nodes[6]),
            ],
        );
        assert_equivalent_to_rebuild(&indices, &new);
    }

    #[test]
    fn node_insertion_updates_global_indices() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);

        // New graph has one extra movie node (id 7) with no edges yet.
        let new = build_graph(&f.edges, 1);
        apply_delta(&mut indices, &new, &GraphDelta::InsertNode(NodeId(7)));
        assert_equivalent_to_rebuild(&indices, &new);
        // The global movie index must now list 3 movies.
        let global = indices.get(ConstraintId(2)).unwrap();
        assert_eq!(global.global_nodes().len(), 3);
    }

    #[test]
    fn unrelated_deltas_do_not_change_indices() {
        let f = fixture();
        let old = build_graph(&f.edges, 0);
        let schema = schema_for(&old);
        let mut indices = AccessIndexSet::build(&old, &schema);
        let before_size = indices.total_size();

        // Add an actor-to-actor edge: no constraint targets year/actor pairs
        // in a way this affects (actor is a target only of movie→actor whose
        // endpoints didn't change labels... but actor1 is a target of
        // constraint 1? No: constraint 1 targets actor with source movie, and
        // actor1's neighborhood changed, so its contribution is refreshed —
        // the result must still equal a rebuild).
        let mut new_edges = f.edges.clone();
        new_edges.push((f.nodes[5], f.nodes[6]));
        let new = build_graph(&new_edges, 0);
        apply_delta(
            &mut indices,
            &new,
            &GraphDelta::InsertEdge(f.nodes[5], f.nodes[6]),
        );
        assert_equivalent_to_rebuild(&indices, &new);
        // Sizes did not change: the actor-actor edge creates no new
        // (movie → actor) combination.
        assert_eq!(indices.total_size(), before_size);
    }

    #[test]
    fn touched_nodes_reports_delta_support() {
        assert_eq!(
            GraphDelta::InsertEdge(NodeId(1), NodeId(2)).touched_nodes(),
            vec![NodeId(1), NodeId(2)]
        );
        assert_eq!(
            GraphDelta::DeleteEdge(NodeId(3), NodeId(4)).touched_nodes(),
            vec![NodeId(3), NodeId(4)]
        );
        assert_eq!(
            GraphDelta::InsertNode(NodeId(5)).touched_nodes(),
            vec![NodeId(5)]
        );
    }
}
