//! The access constraint `S → (l, N)`.

use bgpq_graph::{Label, LabelInterner};
use std::fmt;

/// Identifier of a constraint inside an [`crate::AccessSchema`]
/// (its position in the schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ConstraintId(pub u32);

impl ConstraintId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phi{}", self.0)
    }
}

/// Structural classification of an access constraint (Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// Type (1): `∅ → (l, N)` — at most `N` nodes labeled `l` in the graph.
    Global,
    /// Type (2): `l → (l', N)` — every `l`-labeled node has at most `N`
    /// neighbors labeled `l'`.
    Unary,
    /// The general form with `|S| ≥ 2`.
    General,
}

/// An access constraint `S → (l, N)`.
///
/// The source `S` is kept as a **sorted, deduplicated** list of labels so
/// that constraints can be compared and used as keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessConstraint {
    source: Vec<Label>,
    target: Label,
    bound: usize,
}

impl AccessConstraint {
    /// Creates a constraint `S → (l, N)`. The source is sorted and
    /// deduplicated.
    pub fn new(source: impl IntoIterator<Item = Label>, target: Label, bound: usize) -> Self {
        let mut source: Vec<Label> = source.into_iter().collect();
        source.sort_unstable();
        source.dedup();
        AccessConstraint {
            source,
            target,
            bound,
        }
    }

    /// A type (1) constraint `∅ → (l, N)`.
    pub fn global(target: Label, bound: usize) -> Self {
        AccessConstraint::new([], target, bound)
    }

    /// A type (2) constraint `l → (l', N)`.
    pub fn unary(source: Label, target: Label, bound: usize) -> Self {
        AccessConstraint::new([source], target, bound)
    }

    /// The source label set `S` (sorted).
    pub fn source(&self) -> &[Label] {
        &self.source
    }

    /// The target label `l`.
    pub fn target(&self) -> Label {
        self.target
    }

    /// The cardinality bound `N`.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// `|S|`.
    pub fn source_len(&self) -> usize {
        self.source.len()
    }

    /// The "length" of the constraint used when measuring `|A|`, the total
    /// length of a schema: `|S| + 2` (source labels, target label, bound).
    pub fn len(&self) -> usize {
        self.source.len() + 2
    }

    /// Always false: a constraint has at least a target and a bound.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Structural kind of the constraint.
    pub fn kind(&self) -> ConstraintKind {
        match self.source.len() {
            0 => ConstraintKind::Global,
            1 => ConstraintKind::Unary,
            _ => ConstraintKind::General,
        }
    }

    /// True when this is a type (1) constraint.
    pub fn is_global(&self) -> bool {
        self.source.is_empty()
    }

    /// True when this is a type (1) or type (2) constraint — the only forms
    /// an `M`-bounded extension may add (Section V).
    pub fn is_extension_form(&self) -> bool {
        self.source.len() <= 1
    }

    /// True when `label` appears in the source set `S`.
    pub fn source_contains(&self, label: Label) -> bool {
        self.source.binary_search(&label).is_ok()
    }

    /// Renders the constraint with label names from `interner`.
    pub fn display_with(&self, interner: &LabelInterner) -> String {
        let src = if self.source.is_empty() {
            "∅".to_string()
        } else {
            let names: Vec<String> = self
                .source
                .iter()
                .map(|&l| interner.name_or_placeholder(l))
                .collect();
            format!("({})", names.join(", "))
        };
        format!(
            "{} -> ({}, {})",
            src,
            interner.name_or_placeholder(self.target),
            self.bound
        )
    }
}

impl fmt::Display for AccessConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let src: Vec<String> = self.source.iter().map(|l| l.to_string()).collect();
        write!(
            f,
            "{{{}}} -> ({}, {})",
            src.join(","),
            self.target,
            self.bound
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_is_sorted_and_deduplicated() {
        let c = AccessConstraint::new([Label(3), Label(1), Label(3)], Label(0), 5);
        assert_eq!(c.source(), &[Label(1), Label(3)]);
        assert_eq!(c.target(), Label(0));
        assert_eq!(c.bound(), 5);
        assert_eq!(c.source_len(), 2);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn kinds_are_classified() {
        assert_eq!(
            AccessConstraint::global(Label(0), 10).kind(),
            ConstraintKind::Global
        );
        assert_eq!(
            AccessConstraint::unary(Label(1), Label(0), 10).kind(),
            ConstraintKind::Unary
        );
        assert_eq!(
            AccessConstraint::new([Label(1), Label(2)], Label(0), 10).kind(),
            ConstraintKind::General
        );
    }

    #[test]
    fn extension_form_is_type_one_or_two() {
        assert!(AccessConstraint::global(Label(0), 1).is_extension_form());
        assert!(AccessConstraint::unary(Label(1), Label(0), 1).is_extension_form());
        assert!(!AccessConstraint::new([Label(1), Label(2)], Label(0), 1).is_extension_form());
        assert!(AccessConstraint::global(Label(0), 1).is_global());
        assert!(!AccessConstraint::unary(Label(1), Label(0), 1).is_global());
    }

    #[test]
    fn source_contains_uses_binary_search() {
        let c = AccessConstraint::new([Label(5), Label(2)], Label(9), 1);
        assert!(c.source_contains(Label(2)));
        assert!(c.source_contains(Label(5)));
        assert!(!c.source_contains(Label(9)));
    }

    #[test]
    fn display_with_interner_uses_names() {
        let mut interner = LabelInterner::new();
        let year = interner.intern("year");
        let award = interner.intern("award");
        let movie = interner.intern("movie");
        let c = AccessConstraint::new([year, award], movie, 4);
        assert_eq!(c.display_with(&interner), "(year, award) -> (movie, 4)");
        let g = AccessConstraint::global(movie, 100);
        assert_eq!(g.display_with(&interner), "∅ -> (movie, 100)");
        assert!(c.to_string().contains("-> (L2, 4)"));
        assert_eq!(ConstraintId(3).to_string(), "phi3");
        assert_eq!(ConstraintId(3).index(), 3);
    }
}
