//! Discovery of access constraints from a data graph.
//!
//! Section II of the paper lists four practical sources of access
//! constraints, all of which reduce to simple statistics:
//!
//! 1. **degree bounds** — if every `l`-labeled node has at most `N`
//!    neighbors labeled `l'`, then `l → (l', N)` holds (type 2);
//! 2. **global label counts** — `∅ → (l, N)` when at most `N` nodes carry
//!    `l` (type 1);
//! 3. **functional dependencies** — `X → A` becomes `X → (A, 1)`, a special
//!    case of the fanout bound with `N = 1`;
//! 4. **aggregate queries** — grouped counts such as
//!    `(year, award) → (movie, 4)`, the general form with `|S| ≥ 2`.
//!
//! [`discover_schema`] implements all four, bounded by a [`DiscoveryConfig`]
//! so the resulting schema only keeps constraints whose bounds are small
//! enough to be useful for bounded evaluation.

use crate::constraint::AccessConstraint;
use crate::index::ConstraintIndex;
use crate::schema::AccessSchema;
use bgpq_graph::{Graph, GraphStats, Label};
use std::collections::BTreeSet;

/// Thresholds controlling which discovered constraints are kept.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Keep `∅ → (l, N)` only when `N ≤ max_global_bound`.
    pub max_global_bound: usize,
    /// Keep `l → (l', N)` only when `N ≤ max_unary_bound`.
    pub max_unary_bound: usize,
    /// Also look for general constraints `(l1, l2) → (l, N)` over label
    /// pairs that co-occur in some node's neighborhood.
    pub discover_pairs: bool,
    /// Keep pair constraints only when `N ≤ max_pair_bound`.
    pub max_pair_bound: usize,
    /// Upper bound on the number of `(l1, l2, l)` pair candidates examined
    /// (pair discovery builds an index per candidate, so it is the expensive
    /// step).
    pub max_pair_candidates: usize,
    /// Upper bound on the total number of constraints returned.
    pub max_constraints: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            max_global_bound: 1_000,
            max_unary_bound: 200,
            discover_pairs: true,
            max_pair_bound: 200,
            max_pair_candidates: 200,
            max_constraints: 512,
        }
    }
}

impl DiscoveryConfig {
    /// A configuration that only discovers type (1) and type (2) constraints
    /// (cheap; no per-candidate index builds).
    pub fn simple() -> Self {
        DiscoveryConfig {
            discover_pairs: false,
            ..Default::default()
        }
    }
}

/// Discovers an access schema satisfied by `graph`, following the four
/// recipes of Section II.
///
/// Every returned constraint is tight (its bound is the observed maximum) and
/// therefore satisfied by `graph` by construction.
pub fn discover_schema(graph: &Graph, config: &DiscoveryConfig) -> AccessSchema {
    let stats = GraphStats::compute(graph);
    let mut schema = AccessSchema::new();

    // Type (1): global label counts, rarest labels first so that truncation
    // by `max_constraints` keeps the most selective constraints.
    for (label, count) in stats.labels_by_frequency() {
        if count <= config.max_global_bound {
            schema.add(AccessConstraint::global(label, count));
        }
    }

    // Type (2): neighbor fanout bounds per ordered label pair (includes
    // FD-like constraints when the bound is 1).
    let mut fanouts: Vec<((Label, Label), usize)> = stats
        .max_label_fanout
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect();
    fanouts.sort_by_key(|&((l1, l2), n)| (n, l1, l2));
    for ((source, target), bound) in fanouts {
        if bound <= config.max_unary_bound {
            schema.add(AccessConstraint::unary(source, target, bound));
        }
    }

    // General pairs: for label pairs co-occurring in some neighborhood,
    // measure the exact max cardinality by building the index.
    if config.discover_pairs {
        let candidates = pair_candidates(graph, config.max_pair_candidates);
        for (l1, l2, target) in candidates {
            let constraint = AccessConstraint::new([l1, l2], target, usize::MAX);
            let index = ConstraintIndex::build(graph, constraint);
            let observed = index.max_cardinality();
            if observed > 0 && observed <= config.max_pair_bound && !index.is_truncated() {
                schema.add(AccessConstraint::new([l1, l2], target, observed));
            }
            if schema.len() >= config.max_constraints {
                break;
            }
        }
    }

    schema.minimized().truncated(config.max_constraints)
}

/// Collects `(l1, l2, target)` triples such that some `target`-labeled node
/// has at least one neighbor labeled `l1` and one labeled `l2`.
fn pair_candidates(graph: &Graph, cap: usize) -> Vec<(Label, Label, Label)> {
    let mut seen: BTreeSet<(Label, Label, Label)> = BTreeSet::new();
    for v in graph.nodes() {
        let target = graph.label(v);
        let mut neighbor_labels: Vec<Label> =
            graph.neighbors(v).iter().map(|&n| graph.label(n)).collect();
        neighbor_labels.sort_unstable();
        neighbor_labels.dedup();
        for (i, &l1) in neighbor_labels.iter().enumerate() {
            for &l2 in &neighbor_labels[i + 1..] {
                seen.insert((l1, l2, target));
                if seen.len() >= cap {
                    return seen.into_iter().collect();
                }
            }
        }
    }
    seen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfy::satisfies;
    use bgpq_graph::{GraphBuilder, Value};

    /// Small IMDb-shaped graph: 2 years, 1 award, 4 movies, 2 actors per
    /// movie, 1 country.
    fn imdb_toy() -> Graph {
        let mut b = GraphBuilder::new();
        let y1 = b.add_node("year", Value::Int(2011));
        let y2 = b.add_node("year", Value::Int(2012));
        let aw = b.add_node("award", Value::str("Oscar"));
        let us = b.add_node("country", Value::str("US"));
        for i in 0..4 {
            let m = b.add_node("movie", Value::Int(i));
            b.add_edge(if i % 2 == 0 { y1 } else { y2 }, m).unwrap();
            b.add_edge(aw, m).unwrap();
            for j in 0..2 {
                let a = b.add_node("actor", Value::Int(10 * i + j));
                b.add_edge(m, a).unwrap();
                b.add_edge(a, us).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn discovered_schema_is_satisfied_by_construction() {
        let g = imdb_toy();
        let schema = discover_schema(&g, &DiscoveryConfig::default());
        assert!(!schema.is_empty());
        assert!(satisfies(&g, &schema));
    }

    #[test]
    fn global_constraints_reflect_label_counts() {
        let g = imdb_toy();
        let schema = discover_schema(&g, &DiscoveryConfig::simple());
        let year = g.interner().get("year").unwrap();
        let movie = g.interner().get("movie").unwrap();
        assert_eq!(schema.global_bound(year), Some(2));
        assert_eq!(schema.global_bound(movie), Some(4));
    }

    #[test]
    fn unary_constraints_reflect_fanouts() {
        let g = imdb_toy();
        let schema = discover_schema(&g, &DiscoveryConfig::simple());
        let movie = g.interner().get("movie").unwrap();
        let actor = g.interner().get("actor").unwrap();
        let country = g.interner().get("country").unwrap();
        // Each movie has exactly 2 actors; each actor 1 country (an FD).
        assert_eq!(schema.unary_bound(movie, actor), Some(2));
        assert_eq!(schema.unary_bound(actor, country), Some(1));
    }

    #[test]
    fn pair_discovery_finds_year_award_movie() {
        let g = imdb_toy();
        let schema = discover_schema(&g, &DiscoveryConfig::default());
        let year = g.interner().get("year").unwrap();
        let award = g.interner().get("award").unwrap();
        let movie = g.interner().get("movie").unwrap();
        // Each (year, award) pair has exactly 2 co-nominated movies here.
        let found = schema.iter().any(|c| {
            c.source() == [year.min(award), year.max(award)]
                && c.target() == movie
                && c.bound() == 2
        });
        assert!(
            found,
            "expected (year, award) -> (movie, 2) to be discovered"
        );
    }

    #[test]
    fn thresholds_filter_out_loose_constraints() {
        let g = imdb_toy();
        let config = DiscoveryConfig {
            max_global_bound: 3, // movies (4) and actors (8) are excluded
            max_unary_bound: 1,
            discover_pairs: false,
            ..Default::default()
        };
        let schema = discover_schema(&g, &config);
        let movie = g.interner().get("movie").unwrap();
        let actor = g.interner().get("actor").unwrap();
        assert_eq!(schema.global_bound(movie), None);
        assert_eq!(schema.unary_bound(movie, actor), None);
        // But the FD actor -> country (bound 1) survives.
        let country = g.interner().get("country").unwrap();
        assert_eq!(schema.unary_bound(actor, country), Some(1));
    }

    #[test]
    fn max_constraints_caps_the_schema() {
        let g = imdb_toy();
        let config = DiscoveryConfig {
            max_constraints: 3,
            ..Default::default()
        };
        let schema = discover_schema(&g, &config);
        assert!(schema.len() <= 3);
    }

    #[test]
    fn empty_graph_discovers_empty_schema() {
        let schema = discover_schema(&Graph::empty(), &DiscoveryConfig::default());
        assert!(schema.is_empty());
    }
}
