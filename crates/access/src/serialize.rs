//! A text format for access schemas.
//!
//! Discovery ([`crate::discover_schema`]) is a whole-graph pass; production
//! deployments run it once and ship the result next to the dataset. This
//! module gives schemas a line-oriented interchange format mirroring the
//! constraint classification of Section II:
//!
//! ```text
//! # comment
//! global  <target> <N>                  # ∅ → (target, N)
//! unary   <source> <target> <N>         # source → (target, N)
//! general <l1>,<l2>[,...] <target> <N>  # {l1, l2, ...} → (target, N)
//! ```
//!
//! Labels are written by name (tokens without whitespace or commas — the
//! writer rejects names that would not re-tokenize). Malformed input is
//! reported with 1-based line numbers via [`GraphError::Parse`], the same
//! diagnostic shape the dataset loaders use.

use crate::constraint::{AccessConstraint, ConstraintKind};
use crate::schema::AccessSchema;
use bgpq_graph::{GraphError, Label, LabelInterner};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Serializes `schema` into the text format, rendering labels through
/// `interner`.
///
/// # Examples
///
/// ```
/// use bgpq_access::{AccessConstraint, AccessSchema};
/// use bgpq_access::serialize::{read_schema, write_schema};
/// use bgpq_graph::LabelInterner;
///
/// let mut interner = LabelInterner::new();
/// let year = interner.intern("year");
/// let movie = interner.intern("movie");
/// let schema = AccessSchema::from_constraints([
///     AccessConstraint::global(year, 10),
///     AccessConstraint::unary(year, movie, 5),
/// ]);
///
/// let mut buf = Vec::new();
/// write_schema(&schema, &interner, &mut buf).unwrap();
/// let reloaded = read_schema(std::io::Cursor::new(buf), &mut interner).unwrap();
/// assert_eq!(reloaded, schema);
/// ```
pub fn write_schema<W: Write>(
    schema: &AccessSchema,
    interner: &LabelInterner,
    writer: W,
) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# bgpq access schema: {} constraints", schema.len())?;
    for constraint in schema.iter() {
        let target = label_token(constraint.target(), interner)?;
        match constraint.kind() {
            ConstraintKind::Global => {
                writeln!(w, "global {} {}", target, constraint.bound())?;
            }
            ConstraintKind::Unary => {
                let source = label_token(constraint.source()[0], interner)?;
                writeln!(w, "unary {} {} {}", source, target, constraint.bound())?;
            }
            ConstraintKind::General => {
                let sources: Result<Vec<String>, GraphError> = constraint
                    .source()
                    .iter()
                    .map(|&l| label_token(l, interner))
                    .collect();
                writeln!(
                    w,
                    "general {} {} {}",
                    sources?.join(","),
                    target,
                    constraint.bound()
                )?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Saves a schema to a file in the text format.
pub fn save_schema(
    schema: &AccessSchema,
    interner: &LabelInterner,
    path: impl AsRef<Path>,
) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_schema(schema, interner, file)
}

/// Parses a schema from the text format, interning label names into
/// `interner`.
///
/// Pass a clone of the data graph's interner so label ids line up with the
/// graph; names the graph never interned get fresh ids, making their
/// constraints vacuous (they can only ever index empty node sets) rather
/// than wrong.
pub fn read_schema<R: BufRead>(
    reader: R,
    interner: &mut LabelInterner,
) -> Result<AccessSchema, GraphError> {
    let mut schema = AccessSchema::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line_num = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        let constraint = match tokens.as_slice() {
            ["global", target, bound] => {
                AccessConstraint::global(interner.intern(target), parse_bound(bound, line_num)?)
            }
            ["unary", source, target, bound] => AccessConstraint::unary(
                interner.intern(source),
                interner.intern(target),
                parse_bound(bound, line_num)?,
            ),
            ["general", sources, target, bound] => {
                let labels: Vec<Label> = sources
                    .split(',')
                    .map(|name| {
                        let name = name.trim();
                        if name.is_empty() {
                            Err(parse_error(
                                line_num,
                                format!("empty label in source list {sources:?}"),
                            ))
                        } else {
                            Ok(interner.intern(name))
                        }
                    })
                    .collect::<Result<_, _>>()?;
                if labels.len() < 2 {
                    return Err(parse_error(
                        line_num,
                        "general constraints need at least two source labels \
                         (use `unary` or `global`)"
                            .into(),
                    ));
                }
                AccessConstraint::new(
                    labels,
                    interner.intern(target),
                    parse_bound(bound, line_num)?,
                )
            }
            [kind, ..] if matches!(*kind, "global" | "unary" | "general") => {
                return Err(parse_error(
                    line_num,
                    format!("wrong number of fields for a {kind:?} constraint"),
                ));
            }
            [kind, ..] => {
                return Err(parse_error(
                    line_num,
                    format!(
                        "unknown constraint kind {kind:?} \
                         (expected `global`, `unary` or `general`)"
                    ),
                ));
            }
            [] => unreachable!("blank lines are skipped"),
        };
        schema.add(constraint);
    }
    Ok(schema)
}

/// Loads a schema from a file in the text format.
pub fn load_schema(
    path: impl AsRef<Path>,
    interner: &mut LabelInterner,
) -> Result<AccessSchema, GraphError> {
    let file = std::fs::File::open(path)?;
    read_schema(std::io::BufReader::new(file), interner)
}

fn label_token(label: Label, interner: &LabelInterner) -> Result<String, GraphError> {
    let Some(name) = interner.name(label) else {
        return Err(GraphError::UnknownLabel(label.0));
    };
    if name.is_empty() || name.contains(char::is_whitespace) || name.contains(',') {
        // A writer-side failure, not a parse error — no line number exists.
        return Err(GraphError::Io(format!(
            "label name {name:?} cannot be serialized \
             (must be non-empty, without whitespace or commas)"
        )));
    }
    Ok(name.to_string())
}

fn parse_bound(token: &str, line: usize) -> Result<usize, GraphError> {
    token.parse().map_err(|_| {
        parse_error(
            line,
            format!("invalid bound {token:?} (expected an unsigned integer)"),
        )
    })
}

fn parse_error(line: usize, message: String) -> GraphError {
    GraphError::Parse { line, message }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_schema() -> (AccessSchema, LabelInterner) {
        let mut interner = LabelInterner::new();
        let year = interner.intern("year");
        let award = interner.intern("award");
        let movie = interner.intern("movie");
        let actor = interner.intern("actor");
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(year, 135),
            AccessConstraint::unary(movie, actor, 30),
            AccessConstraint::new([year, award], movie, 4),
        ]);
        (schema, interner)
    }

    #[test]
    fn round_trip_preserves_constraints_and_ids() {
        let (schema, interner) = toy_schema();
        let mut buf = Vec::new();
        write_schema(&schema, &interner, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("global year 135"));
        assert!(text.contains("unary movie actor 30"));
        // Source labels serialize in interning order (year got id 0).
        assert!(text.contains("general year,award movie 4"));

        let mut reload_interner = interner.clone();
        let reloaded = read_schema(std::io::Cursor::new(buf), &mut reload_interner).unwrap();
        assert_eq!(reloaded, schema);
        // No new labels were interned: every name already existed.
        assert_eq!(reload_interner.len(), interner.len());
    }

    #[test]
    fn unknown_labels_intern_fresh_ids() {
        let mut interner = LabelInterner::new();
        interner.intern("movie");
        let text = "unary spaceship movie 2\n";
        let schema = read_schema(std::io::Cursor::new(text), &mut interner).unwrap();
        assert_eq!(schema.len(), 1);
        assert!(interner.get("spaceship").is_some());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\n  \nglobal movie 10\n";
        let mut interner = LabelInterner::new();
        let schema = read_schema(std::io::Cursor::new(text), &mut interner).unwrap();
        assert_eq!(schema.len(), 1);
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("global movie ten\n", 1, "invalid bound"),
            ("global movie\n", 1, "wrong number of fields"),
            ("unary a b c d\n", 1, "wrong number of fields"),
            ("# ok\nfanout a b 3\n", 2, "unknown constraint kind"),
            ("general year movie 4\n", 1, "at least two"),
            ("general year,,award movie 4\n", 1, "empty label"),
        ];
        for (text, line, needle) in cases {
            let mut interner = LabelInterner::new();
            let err = read_schema(std::io::Cursor::new(text), &mut interner).unwrap_err();
            match err {
                GraphError::Parse {
                    line: l,
                    ref message,
                } => {
                    assert_eq!(l, *line, "wrong line for {text:?}");
                    assert!(
                        message.contains(needle),
                        "expected {needle:?} in {message:?}"
                    );
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn unserializable_label_names_are_rejected() {
        let mut interner = LabelInterner::new();
        let spacey = interner.intern("two words");
        let schema = AccessSchema::from_constraints([AccessConstraint::global(spacey, 1)]);
        let err = write_schema(&schema, &interner, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("cannot be serialized"));

        let foreign = AccessSchema::from_constraints([AccessConstraint::global(Label(99), 1)]);
        let err = write_schema(&foreign, &LabelInterner::new(), &mut Vec::new()).unwrap_err();
        assert!(matches!(err, GraphError::UnknownLabel(99)));
    }

    #[test]
    fn file_round_trip() {
        let (schema, interner) = toy_schema();
        let dir = std::env::temp_dir().join("bgpq_schema_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.schema");
        save_schema(&schema, &interner, &path).unwrap();
        let mut reload_interner = interner.clone();
        let reloaded = load_schema(&path, &mut reload_interner).unwrap();
        assert_eq!(reloaded, schema);
        std::fs::remove_file(path).ok();
    }
}
