//! Access schemas: sets of access constraints.

use crate::constraint::{AccessConstraint, ConstraintId};
use bgpq_graph::{Label, LabelInterner};
use std::collections::HashMap;

/// A set `A` of access constraints, with positional [`ConstraintId`]s.
///
/// The paper uses two size measures which we expose directly:
/// `||A||` — the number of constraints ([`AccessSchema::len`]) — and
/// `|A|` — the total length of all constraints
/// ([`AccessSchema::total_length`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessSchema {
    constraints: Vec<AccessConstraint>,
}

impl AccessSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a schema from a list of constraints (duplicates are kept; use
    /// [`AccessSchema::minimized`] to collapse them).
    pub fn from_constraints(constraints: impl IntoIterator<Item = AccessConstraint>) -> Self {
        AccessSchema {
            constraints: constraints.into_iter().collect(),
        }
    }

    /// Adds a constraint, returning its id.
    pub fn add(&mut self, constraint: AccessConstraint) -> ConstraintId {
        let id = ConstraintId(self.constraints.len() as u32);
        self.constraints.push(constraint);
        id
    }

    /// Adds every constraint of `other` to this schema.
    pub fn extend_from(&mut self, other: &AccessSchema) {
        for c in other.iter() {
            self.add(c.clone());
        }
    }

    /// Number of constraints, `||A||`.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when the schema has no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Total length of all constraints, `|A|`.
    pub fn total_length(&self) -> usize {
        self.constraints.iter().map(AccessConstraint::len).sum()
    }

    /// The constraint with the given id.
    pub fn get(&self, id: ConstraintId) -> Option<&AccessConstraint> {
        self.constraints.get(id.index())
    }

    /// Iterates over the constraints in id order.
    pub fn iter(&self) -> impl Iterator<Item = &AccessConstraint> {
        self.constraints.iter()
    }

    /// Iterates over `(id, constraint)` pairs.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (ConstraintId, &AccessConstraint)> {
        self.constraints
            .iter()
            .enumerate()
            .map(|(i, c)| (ConstraintId(i as u32), c))
    }

    /// All constraints whose target label is `label`.
    pub fn constraints_targeting(
        &self,
        label: Label,
    ) -> impl Iterator<Item = (ConstraintId, &AccessConstraint)> {
        self.iter_with_ids()
            .filter(move |(_, c)| c.target() == label)
    }

    /// The tightest type (1) bound on `label`, if any global constraint
    /// covers it.
    pub fn global_bound(&self, label: Label) -> Option<usize> {
        self.constraints
            .iter()
            .filter(|c| c.is_global() && c.target() == label)
            .map(AccessConstraint::bound)
            .min()
    }

    /// The tightest type (2) bound `source → (target, N)`, if any.
    pub fn unary_bound(&self, source: Label, target: Label) -> Option<usize> {
        self.constraints
            .iter()
            .filter(|c| c.source() == [source] && c.target() == target)
            .map(AccessConstraint::bound)
            .min()
    }

    /// True when an identical constraint (same source and target) exists
    /// with a bound at most `constraint.bound()`.
    pub fn implies(&self, constraint: &AccessConstraint) -> bool {
        self.constraints.iter().any(|c| {
            c.source() == constraint.source()
                && c.target() == constraint.target()
                && c.bound() <= constraint.bound()
        })
    }

    /// Returns a schema where duplicate `(S, l)` pairs are collapsed to the
    /// tightest bound, preserving first-occurrence order.
    pub fn minimized(&self) -> AccessSchema {
        let mut best: HashMap<(Vec<Label>, Label), usize> = HashMap::new();
        let mut order: Vec<(Vec<Label>, Label)> = Vec::new();
        for c in &self.constraints {
            let key = (c.source().to_vec(), c.target());
            match best.get_mut(&key) {
                Some(bound) => *bound = (*bound).min(c.bound()),
                None => {
                    best.insert(key.clone(), c.bound());
                    order.push(key);
                }
            }
        }
        AccessSchema {
            constraints: order
                .into_iter()
                .map(|key| {
                    let bound = best[&key];
                    AccessConstraint::new(key.0.clone(), key.1, bound)
                })
                .collect(),
        }
    }

    /// Keeps only the first `n` constraints (used by the `||A||`-sweep
    /// experiment, Fig. 5(c,g,k)).
    pub fn truncated(&self, n: usize) -> AccessSchema {
        AccessSchema {
            constraints: self.constraints.iter().take(n).cloned().collect(),
        }
    }

    /// Renders the schema with label names.
    pub fn display_with(&self, interner: &LabelInterner) -> String {
        self.constraints
            .iter()
            .map(|c| c.display_with(interner))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl FromIterator<AccessConstraint> for AccessSchema {
    fn from_iter<T: IntoIterator<Item = AccessConstraint>>(iter: T) -> Self {
        AccessSchema::from_constraints(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> (Label, Label, Label, Label) {
        (Label(0), Label(1), Label(2), Label(3))
    }

    /// The paper's schema A0 (Example 3) over abstract labels:
    /// year=0, award=1, movie=2, person=3, country=4.
    fn a0() -> AccessSchema {
        let (year, award, movie, person) = labels();
        let country = Label(4);
        AccessSchema::from_constraints([
            AccessConstraint::new([year, award], movie, 4),
            AccessConstraint::unary(movie, person, 30),
            AccessConstraint::unary(person, country, 1),
            AccessConstraint::global(year, 135),
            AccessConstraint::global(award, 24),
            AccessConstraint::global(country, 196),
        ])
    }

    #[test]
    fn sizes_match_paper_measures() {
        let schema = a0();
        assert_eq!(schema.len(), 6); // ||A||
                                     // |A| = (2+2) + (1+2)*2 + (0+2)*3 = 4 + 6 + 6 = 16
        assert_eq!(schema.total_length(), 16);
        assert!(!schema.is_empty());
        assert!(AccessSchema::new().is_empty());
    }

    #[test]
    fn lookup_by_id_and_target() {
        let schema = a0();
        let (_, _, movie, person) = labels();
        assert_eq!(schema.get(ConstraintId(0)).unwrap().target(), movie);
        assert!(schema.get(ConstraintId(99)).is_none());
        let targeting_person: Vec<_> = schema.constraints_targeting(person).collect();
        assert_eq!(targeting_person.len(), 1);
        assert_eq!(targeting_person[0].1.bound(), 30);
    }

    #[test]
    fn global_and_unary_bounds() {
        let schema = a0();
        let (year, _, movie, person) = labels();
        assert_eq!(schema.global_bound(year), Some(135));
        assert_eq!(schema.global_bound(movie), None);
        assert_eq!(schema.unary_bound(movie, person), Some(30));
        assert_eq!(schema.unary_bound(person, movie), None);
    }

    #[test]
    fn implies_checks_source_target_and_bound() {
        let schema = a0();
        let (year, award, movie, _) = labels();
        assert!(schema.implies(&AccessConstraint::new([award, year], movie, 4)));
        assert!(schema.implies(&AccessConstraint::new([year, award], movie, 10)));
        assert!(!schema.implies(&AccessConstraint::new([year, award], movie, 3)));
        assert!(!schema.implies(&AccessConstraint::global(movie, 1000)));
    }

    #[test]
    fn minimized_keeps_tightest_bound() {
        let (year, _, movie, _) = labels();
        let mut schema = AccessSchema::new();
        schema.add(AccessConstraint::unary(year, movie, 10));
        schema.add(AccessConstraint::unary(year, movie, 3));
        schema.add(AccessConstraint::unary(year, movie, 7));
        let min = schema.minimized();
        assert_eq!(min.len(), 1);
        assert_eq!(min.get(ConstraintId(0)).unwrap().bound(), 3);
    }

    #[test]
    fn truncated_takes_a_prefix() {
        let schema = a0();
        let t = schema.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.get(ConstraintId(1)).unwrap(),
            schema.get(ConstraintId(1)).unwrap()
        );
        assert_eq!(schema.truncated(100).len(), 6);
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut a = AccessSchema::new();
        a.add(AccessConstraint::global(Label(0), 1));
        let b: AccessSchema = [AccessConstraint::global(Label(1), 2)]
            .into_iter()
            .collect();
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        let ids: Vec<_> = a.iter_with_ids().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn display_with_interner() {
        let mut interner = LabelInterner::new();
        interner.intern_all(["year", "award", "movie"]);
        let schema = AccessSchema::from_constraints([AccessConstraint::new(
            [Label(0), Label(1)],
            Label(2),
            4,
        )]);
        assert_eq!(
            schema.display_with(&interner),
            "(year, award) -> (movie, 4)"
        );
    }
}
