//! Snapshot persistence for access schemas and their indices.
//!
//! The paper's cost model charges schema discovery and index construction
//! to a **one-time preprocessing phase**; queries then run in time that
//! depends only on the schema's bounds. [`crate::discovery`] and
//! [`crate::AccessIndexSet::build`] implement that phase, and this module
//! makes it genuinely one-time by persisting both results inside the
//! `.bgpq` container defined in [`bgpq_graph::io::snapshot`]:
//!
//! * the `Schema` section stores each constraint `S → (l, N)` as label ids
//!   against the graph's own interner;
//! * the `Indices` section stores, per constraint, the full key → answer
//!   map plus the per-node combination cap and the set of capped target
//!   nodes — enough to reproduce the exact [`ConstraintIndex`] a fresh
//!   build would produce, including its `is_truncated` verdict.
//!
//! Loading re-validates everything against the graph decoded from the same
//! container (label ids interned, node ids live and carrying the labels the
//! constraint requires, keys and answers sorted), so a corrupt or
//! hand-edited snapshot surfaces as a typed [`SnapshotError`] naming the
//! section instead of a wrong query answer.

use crate::constraint::AccessConstraint;
use crate::index::{AccessIndexSet, ConstraintIndex};
use crate::schema::AccessSchema;
use bgpq_graph::io::snapshot::{
    decode_graph, encode_graph, Section, SectionReader, SectionWriter, SnapshotArchive,
    SnapshotError, SnapshotWriter,
};
use bgpq_graph::{Graph, Label, NodeId};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::path::Path;

/// Everything a snapshot holds: the graph, the access schema discovered for
/// it, and the indices built over it. Loading one is the binary equivalent
/// of `load → discover → index` with all three steps already done.
#[derive(Debug, Clone)]
pub struct SnapshotBundle {
    /// The data graph.
    pub graph: Graph,
    /// The access schema the indices were built for.
    pub schema: AccessSchema,
    /// The per-constraint indices, caps and truncation verdicts included.
    pub indices: AccessIndexSet,
}

/// Serializes `graph` and `indices` (whose schema is embedded) into the
/// snapshot container on `w`.
pub fn write_snapshot<W: Write>(
    graph: &Graph,
    indices: &AccessIndexSet,
    w: W,
) -> Result<(), SnapshotError> {
    write_snapshot_with_sections(graph, indices, [], w)
}

/// [`write_snapshot`] with caller-supplied extra sections appended after the
/// core graph/schema/indices — the hook higher layers use to persist state
/// this crate does not know about (e.g. the per-shard index blobs of
/// `Section::Shards`). Readers that do not understand an extra section skip
/// it, so snapshots with extras still open everywhere.
pub fn write_snapshot_with_sections<W: Write>(
    graph: &Graph,
    indices: &AccessIndexSet,
    extra: impl IntoIterator<Item = (Section, Vec<u8>)>,
    w: W,
) -> Result<(), SnapshotError> {
    let mut writer = SnapshotWriter::new();
    encode_graph(graph, &mut writer);
    writer.add_section(
        Section::Schema,
        encode_schema(indices.schema()).into_bytes(),
    );
    writer.add_section(Section::Indices, encode_indices(indices).into_bytes());
    for (section, payload) in extra {
        writer.add_section(section, payload);
    }
    writer.write_to(w)
}

/// Saves a full snapshot to `path`.
pub fn save_snapshot(
    graph: &Graph,
    indices: &AccessIndexSet,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    let file = std::fs::File::create(path)?;
    write_snapshot(graph, indices, file)
}

/// Reads a full snapshot — graph, schema and indices — from `r`.
pub fn read_snapshot<R: Read>(r: R) -> Result<SnapshotBundle, SnapshotError> {
    decode_bundle(&SnapshotArchive::read_from(r)?)
}

/// Loads a full snapshot from a file.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<SnapshotBundle, SnapshotError> {
    decode_bundle(&SnapshotArchive::open(path)?)
}

/// Decodes graph, schema and indices from an already-verified archive.
pub fn decode_bundle(archive: &SnapshotArchive) -> Result<SnapshotBundle, SnapshotError> {
    let graph = decode_graph(archive)?;
    let schema = decode_schema(archive, &graph)?;
    let indices = decode_indices(archive, &graph, &schema)?;
    Ok(SnapshotBundle {
        graph,
        schema,
        indices,
    })
}

fn encode_schema(schema: &AccessSchema) -> SectionWriter {
    let mut w = SectionWriter::new();
    w.put_u32(schema.len() as u32);
    for constraint in schema.iter() {
        w.put_u32(constraint.source_len() as u32);
        for &label in constraint.source() {
            w.put_u32(label.0);
        }
        w.put_u32(constraint.target().0);
        w.put_u64(constraint.bound() as u64);
    }
    w
}

/// Decodes the `Schema` section, validating every label id against the
/// graph's interner.
pub fn decode_schema(
    archive: &SnapshotArchive,
    graph: &Graph,
) -> Result<AccessSchema, SnapshotError> {
    let mut r = SectionReader::new(Section::Schema, archive.require(Section::Schema)?);
    let count = r.read_u32()? as usize;
    let mut constraints = Vec::with_capacity(count.min(1 << 16));
    for i in 0..count {
        let source_len = r.read_u32()? as usize;
        let source = r.read_u32_vec(source_len)?;
        let target = r.read_u32()?;
        let bound = r.read_count()?;
        for &id in source.iter().chain([&target]) {
            if !graph.interner().contains(Label(id)) {
                return Err(r.corrupt(format!("constraint {i} uses unknown label id {id}")));
            }
        }
        constraints.push(AccessConstraint::new(
            source.into_iter().map(Label),
            Label(target),
            bound,
        ));
    }
    r.expect_end()?;
    Ok(AccessSchema::from_constraints(constraints))
}

/// Encodes `indices` as a standalone byte payload — the section-body format
/// of [`Section::Indices`], reusable by containers that embed index sets
/// inside other sections (the per-shard blobs of `Section::Shards`).
/// Deterministic: identical sets serialize identically.
pub fn encode_index_set(indices: &AccessIndexSet) -> Vec<u8> {
    encode_indices(indices).into_bytes()
}

/// Decodes a payload produced by [`encode_index_set`], validating node ids
/// and labels against `graph` exactly like the `Indices` section reader.
/// Errors are attributed to `section` (the section the payload was embedded
/// in).
pub fn decode_index_set(
    section: Section,
    bytes: &[u8],
    graph: &Graph,
    schema: &AccessSchema,
) -> Result<AccessIndexSet, SnapshotError> {
    decode_indices_payload(section, bytes, graph, schema)
}

fn encode_indices(indices: &AccessIndexSet) -> SectionWriter {
    let mut w = SectionWriter::new();
    w.put_u32(indices.len() as u32);
    for (_, index) in indices.iter() {
        w.put_u64(index.cap() as u64);
        let mut capped: Vec<NodeId> = index.capped_targets.iter().copied().collect();
        capped.sort_unstable();
        w.put_u32(capped.len() as u32);
        for v in capped {
            w.put_u32(v.0);
        }
        // Entries sorted by key so identical indices serialize identically.
        let mut entries: Vec<(&[NodeId], &[NodeId])> = index.entries().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        w.put_u32(entries.len() as u32);
        for (key, answers) in entries {
            w.put_u32(key.len() as u32);
            for v in key {
                w.put_u32(v.0);
            }
            w.put_u32(answers.len() as u32);
            for v in answers {
                w.put_u32(v.0);
            }
        }
    }
    w
}

/// Reads a sorted node-id list, checking bounds and strict order.
fn read_sorted_ids(
    r: &mut SectionReader<'_>,
    len: usize,
    node_count: usize,
    what: &str,
) -> Result<Vec<NodeId>, SnapshotError> {
    let ids = r.read_u32_vec(len)?;
    for pair in ids.windows(2) {
        if pair[0] >= pair[1] {
            return Err(r.corrupt(format!("{what} is not sorted strictly")));
        }
    }
    for &id in &ids {
        if id as usize >= node_count {
            return Err(r.corrupt(format!("{what} references out-of-bounds node {id}")));
        }
    }
    Ok(ids.into_iter().map(NodeId).collect())
}

/// Decodes the `Indices` section against the graph and schema decoded from
/// the same archive, rebuilding the reverse maps and cached cardinalities
/// that are derivable from the persisted entries.
pub fn decode_indices(
    archive: &SnapshotArchive,
    graph: &Graph,
    schema: &AccessSchema,
) -> Result<AccessIndexSet, SnapshotError> {
    decode_indices_payload(
        Section::Indices,
        archive.require(Section::Indices)?,
        graph,
        schema,
    )
}

fn decode_indices_payload(
    section: Section,
    bytes: &[u8],
    graph: &Graph,
    schema: &AccessSchema,
) -> Result<AccessIndexSet, SnapshotError> {
    let mut r = SectionReader::new(section, bytes);
    let count = r.read_u32()? as usize;
    if count != schema.len() {
        return Err(r.corrupt(format!(
            "{count} indices for a schema of {} constraints",
            schema.len()
        )));
    }
    let node_count = graph.node_count();
    let mut indices = Vec::with_capacity(count);
    for constraint in schema.iter() {
        let cap = r.read_count()?;
        let capped_len = r.read_u32()? as usize;
        let capped = read_sorted_ids(&mut r, capped_len, node_count, "capped-target list")?;
        let capped_targets: HashSet<NodeId> = capped.into_iter().collect();

        let entry_count = r.read_u32()? as usize;
        let mut map: HashMap<Vec<NodeId>, Vec<NodeId>> = HashMap::with_capacity(entry_count);
        let mut reverse: HashMap<NodeId, Vec<Vec<NodeId>>> = HashMap::new();
        let mut max_cardinality = 0usize;
        for _ in 0..entry_count {
            let key_len = r.read_u32()? as usize;
            let key = read_sorted_ids(&mut r, key_len, node_count, "index key")?;
            for &v in &key {
                if constraint.source().binary_search(&graph.label(v)).is_err() {
                    return Err(r.corrupt(format!(
                        "key node {v} does not carry a source label of {constraint}"
                    )));
                }
            }
            let ans_len = r.read_u32()? as usize;
            let answers = read_sorted_ids(&mut r, ans_len, node_count, "index answer")?;
            for &v in &answers {
                if graph.label(v) != constraint.target() {
                    return Err(r.corrupt(format!(
                        "answer node {v} does not carry the target label of {constraint}"
                    )));
                }
            }
            max_cardinality = max_cardinality.max(answers.len());
            for &target in &answers {
                reverse.entry(target).or_default().push(key.clone());
            }
            if map.insert(key, answers).is_some() {
                return Err(r.corrupt("duplicate index key"));
            }
        }
        indices.push(ConstraintIndex {
            constraint: constraint.clone(),
            map,
            reverse,
            max_cardinality,
            capped_targets,
            cap,
        });
    }
    r.expect_end()?;
    Ok(AccessIndexSet {
        schema: schema.clone(),
        indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_graph::{GraphBuilder, Value};

    fn toy() -> (Graph, AccessSchema) {
        let mut b = GraphBuilder::new();
        let y = b.add_node("year", Value::Int(2012));
        let a = b.add_node("award", Value::str("Oscar"));
        let us = b.add_node("country", Value::str("US"));
        for i in 0..3 {
            let m = b.add_node("movie", Value::Int(i));
            b.add_edge(y, m).unwrap();
            b.add_edge(a, m).unwrap();
            let act = b.add_node("actor", Value::Int(i));
            b.add_edge(m, act).unwrap();
            b.add_edge(act, us).unwrap();
        }
        let g = b.build();
        let get = |n: &str| g.interner().get(n).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(get("year"), 135),
            AccessConstraint::unary(get("movie"), get("actor"), 30),
            AccessConstraint::new([get("year"), get("award")], get("movie"), 4),
        ]);
        (g, schema)
    }

    #[test]
    fn bundle_round_trips() {
        let (g, schema) = toy();
        let indices = AccessIndexSet::build(&g, &schema);
        let mut buf = Vec::new();
        write_snapshot(&g, &indices, &mut buf).unwrap();
        let bundle = read_snapshot(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(bundle.schema, schema);
        assert_eq!(bundle.graph.node_count(), g.node_count());
        assert_eq!(bundle.indices.len(), indices.len());
        for ((_, fresh), (_, loaded)) in indices.iter().zip(bundle.indices.iter()) {
            assert_eq!(loaded.constraint(), fresh.constraint());
            assert_eq!(loaded.key_count(), fresh.key_count());
            assert_eq!(loaded.size(), fresh.size());
            assert_eq!(loaded.max_cardinality(), fresh.max_cardinality());
            assert_eq!(loaded.cap(), fresh.cap());
            assert_eq!(loaded.is_truncated(), fresh.is_truncated());
        }
        assert_eq!(bundle.indices.total_size(), indices.total_size());
    }

    #[test]
    fn graph_only_snapshot_has_no_schema() {
        let (g, _) = toy();
        let mut buf = Vec::new();
        bgpq_graph::io::snapshot::write_graph_snapshot(&g, &mut buf).unwrap();
        let err = read_snapshot(std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::MissingSection {
                section: Section::Schema
            }
        );
    }

    #[test]
    fn answer_label_mismatch_is_rejected() {
        let (g, schema) = toy();
        let indices = AccessIndexSet::build(&g, &schema);
        let mut buf = Vec::new();
        write_snapshot(&g, &indices, &mut buf).unwrap();
        // Locate the indices payload and flip an id inside it, then fix the
        // checksum so the structural validation (not the checksum) trips.
        let archive = SnapshotArchive::from_bytes(buf.clone()).unwrap();
        let (_, range) = archive
            .sections()
            .find(|(s, _)| *s == Section::Indices)
            .unwrap();
        let mut damaged = buf.clone();
        // Byte 12 sits in the first index's capped/entry header region; a
        // wild edit may hit several fields, so only assert typed failure.
        damaged[range.start + 12] ^= 0x40;
        let entry_at = (0..)
            .map(|i| 16 + i * 28)
            .find(|&at| {
                u32::from_le_bytes(damaged[at..at + 4].try_into().unwrap()) == Section::Indices.id()
            })
            .unwrap();
        let fixed = bgpq_graph::io::snapshot::checksum(&damaged[range.clone()]);
        damaged[entry_at + 20..entry_at + 28].copy_from_slice(&fixed.to_le_bytes());
        let err = read_snapshot(std::io::Cursor::new(damaged)).unwrap_err();
        match err {
            SnapshotError::Corrupt { section, .. } => assert_eq!(section, Section::Indices),
            other => panic!("expected a corrupt-indices error, got {other}"),
        }
    }
}
