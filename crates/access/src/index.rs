//! Indices backing access constraints.
//!
//! For a constraint `S → (l, N)` the paper requires an index that, given any
//! `S`-labeled node set `V_S`, returns all common neighbors of `V_S` labeled
//! `l` in `O(N)` time. [`ConstraintIndex`] realizes that contract with a hash
//! map keyed by the (sorted) node-id tuple of `V_S`; [`AccessIndexSet`] packs
//! one index per constraint of a schema.
//!
//! The experiments of the paper build these indices as MySQL tables; here
//! they are in-memory structures with the same asymptotic access contract,
//! plus size accounting used to reproduce the `|index_Q|/|G|` measurements of
//! Fig. 5(d,h,l).

use crate::constraint::{AccessConstraint, ConstraintId};
use crate::schema::AccessSchema;
use bgpq_graph::{Graph, Label, NodeId};
use std::collections::{HashMap, HashSet};

/// Upper bound on the number of `S`-labeled combinations materialized per
/// target node. Real access constraints have small source fanouts (a movie
/// has one year and one award), so this cap exists only as a safety valve
/// against degenerate schemas; hitting it marks the index as truncated.
pub const DEFAULT_MAX_COMBINATIONS_PER_NODE: usize = 4096;

/// The index of a single access constraint.
#[derive(Debug, Clone)]
pub struct ConstraintIndex {
    pub(crate) constraint: AccessConstraint,
    /// Sorted `S`-labeled node tuple → common neighbors labeled `l`.
    /// Global constraints use the empty key.
    pub(crate) map: HashMap<Vec<NodeId>, Vec<NodeId>>,
    /// Target node → keys it appears under (for incremental maintenance).
    pub(crate) reverse: HashMap<NodeId, Vec<Vec<NodeId>>>,
    /// Largest answer set over all keys.
    pub(crate) max_cardinality: usize,
    /// Target nodes whose combination enumeration hit the cap. Tracked per
    /// node (not as a sticky flag) so that maintenance removing or repairing
    /// a capped node's contribution leaves the truncation verdict exactly
    /// where a fresh rebuild would put it.
    pub(crate) capped_targets: HashSet<NodeId>,
    /// The per-node combination cap this index was built with. Incremental
    /// maintenance reuses it so refreshed contributions are enumerated
    /// exactly like a fresh build's.
    pub(crate) cap: usize,
}

impl ConstraintIndex {
    /// Builds the index for `constraint` over `graph`.
    pub fn build(graph: &Graph, constraint: AccessConstraint) -> Self {
        Self::build_with_cap(graph, constraint, DEFAULT_MAX_COMBINATIONS_PER_NODE)
    }

    /// Builds the index with an explicit combination cap per target node.
    pub fn build_with_cap(graph: &Graph, constraint: AccessConstraint, cap: usize) -> Self {
        Self::build_filtered_with_cap(graph, constraint, cap, |_| true)
    }

    /// Builds the index restricted to the target nodes `owns` accepts — the
    /// per-partition build of the sharded path. Partitioning by *target*
    /// ownership keeps every `(key → target)` entry whole inside one shard,
    /// so the union of the filtered indices over a disjoint-complete
    /// ownership family equals the unfiltered build exactly
    /// (see [`AccessIndexSet::merge_shards`]).
    pub fn build_filtered_with_cap(
        graph: &Graph,
        constraint: AccessConstraint,
        cap: usize,
        owns: impl Fn(NodeId) -> bool,
    ) -> Self {
        let mut index = ConstraintIndex {
            constraint,
            map: HashMap::new(),
            reverse: HashMap::new(),
            max_cardinality: 0,
            capped_targets: HashSet::new(),
            cap,
        };
        if index.constraint.is_global() {
            let nodes: Vec<NodeId> = graph
                .nodes_with_label(index.constraint.target())
                .iter()
                .copied()
                .filter(|&v| owns(v))
                .collect();
            index.max_cardinality = nodes.len();
            if !nodes.is_empty() {
                for &v in &nodes {
                    index.reverse.entry(v).or_default().push(Vec::new());
                }
                index.map.insert(Vec::new(), nodes);
            } else {
                index.map.insert(Vec::new(), Vec::new());
            }
            return index;
        }
        for v in graph.nodes_with_label(index.constraint.target()) {
            if owns(*v) {
                index.add_target_contribution(graph, *v, cap);
            }
        }
        index.recompute_max_cardinality();
        index
    }

    /// The constraint this index backs.
    pub fn constraint(&self) -> &AccessConstraint {
        &self.constraint
    }

    /// Common neighbors labeled `l` of the `S`-labeled set `vs`
    /// (order of `vs` does not matter). Returns an empty slice when the set
    /// is not indexed, which for a graph satisfying the constraint means the
    /// answer is empty.
    pub fn common_neighbors(&self, vs: &[NodeId]) -> &[NodeId] {
        let key = Self::canonical_key(vs);
        self.map.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True when `target` is a common neighbor (labeled `l`) of `vs`.
    pub fn contains(&self, vs: &[NodeId], target: NodeId) -> bool {
        self.common_neighbors(vs).contains(&target)
    }

    /// All nodes labeled `l` for a global (`S = ∅`) constraint.
    pub fn global_nodes(&self) -> &[NodeId] {
        debug_assert!(self.constraint.is_global());
        self.common_neighbors(&[])
    }

    /// The largest answer set across all indexed keys — the graph satisfies
    /// the cardinality part of the constraint iff this is `≤ N`.
    pub fn max_cardinality(&self) -> usize {
        self.max_cardinality
    }

    /// True when every indexed key respects the bound `N`.
    pub fn within_bound(&self) -> bool {
        self.max_cardinality <= self.constraint.bound()
    }

    /// True when some target node's combination enumeration hit the cap —
    /// at build time or during an incremental refresh. Maintenance keeps
    /// this exact: deleting or repairing the offending node clears it, just
    /// as a fresh rebuild would.
    pub fn is_truncated(&self) -> bool {
        !self.capped_targets.is_empty()
    }

    /// The per-node combination cap the index was built with (and that
    /// incremental maintenance keeps honoring).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// True when `target` currently contributes at least one indexed entry —
    /// the probe incremental maintenance uses to decide whether a node that
    /// no longer carries the target label (relabeled or deleted) still needs
    /// its stale contribution removed.
    pub fn has_contribution(&self, target: NodeId) -> bool {
        self.reverse.contains_key(&target)
    }

    /// Number of distinct keys indexed.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of node ids stored (keys plus answers) — the paper's
    /// `|index|` measure for one constraint.
    pub fn size(&self) -> usize {
        self.map
            .iter()
            .map(|(k, v)| k.len() + v.len())
            .sum::<usize>()
    }

    /// Iterates over `(key, answers)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (&[NodeId], &[NodeId])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    fn canonical_key(vs: &[NodeId]) -> Vec<NodeId> {
        let mut key = vs.to_vec();
        key.sort_unstable();
        key.dedup();
        key
    }

    fn recompute_max_cardinality(&mut self) {
        self.max_cardinality = self.map.values().map(Vec::len).max().unwrap_or(0);
    }

    /// Removes every occurrence of `target` from the index (used by
    /// incremental maintenance before re-adding its contribution).
    pub(crate) fn remove_target_contribution(&mut self, target: NodeId) {
        self.capped_targets.remove(&target);
        if let Some(keys) = self.reverse.remove(&target) {
            for key in keys {
                if let Some(values) = self.map.get_mut(&key) {
                    values.retain(|&v| v != target);
                    if values.is_empty() && !key.is_empty() {
                        self.map.remove(&key);
                    }
                }
            }
        }
    }

    /// Adds the contribution of `target` (a node labeled `l`) by enumerating
    /// every `S`-labeled combination of its neighbors in `graph`.
    pub(crate) fn add_target_contribution(&mut self, graph: &Graph, target: NodeId, cap: usize) {
        debug_assert_eq!(graph.label(target), self.constraint.target());
        if self.constraint.is_global() {
            let entry = self.map.entry(Vec::new()).or_default();
            if !entry.contains(&target) {
                entry.push(target);
                entry.sort_unstable();
            }
            self.reverse.entry(target).or_default().push(Vec::new());
            return;
        }
        // Group the target's neighbors by the source labels of the constraint.
        let neighbors = graph.neighbors(target);
        let mut per_label: Vec<Vec<NodeId>> = vec![Vec::new(); self.constraint.source_len()];
        for &n in &neighbors {
            let ln = graph.label(n);
            if let Ok(pos) = self.constraint.source().binary_search(&ln) {
                per_label[pos].push(n);
            }
        }
        if per_label.iter().any(Vec::is_empty) {
            return; // `target` has no S-labeled neighbor set.
        }
        let mut combos: Vec<Vec<NodeId>> = vec![Vec::new()];
        for bucket in &per_label {
            let mut next = Vec::with_capacity(combos.len() * bucket.len());
            'outer: for combo in &combos {
                for &candidate in bucket {
                    if combo.contains(&candidate) {
                        // A node cannot play two roles in the same S-labeled
                        // set (|V_S| = |S| requires distinct nodes).
                        continue;
                    }
                    let mut extended = combo.clone();
                    extended.push(candidate);
                    next.push(extended);
                    if next.len() >= cap {
                        self.capped_targets.insert(target);
                        break 'outer;
                    }
                }
            }
            combos = next;
            if combos.is_empty() {
                return;
            }
        }
        for mut key in combos {
            key.sort_unstable();
            let entry = self.map.entry(key.clone()).or_default();
            if !entry.contains(&target) {
                entry.push(target);
                entry.sort_unstable();
                self.reverse.entry(target).or_default().push(key);
            }
        }
    }

    /// Recomputes the contribution of `target` against `graph` (remove then
    /// re-add, under the index's own combination cap) and refreshes the
    /// cached maximum cardinality. Deleted or relabeled nodes end with no
    /// contribution: a tombstoned slot's label matches no constraint target.
    pub(crate) fn refresh_target(&mut self, graph: &Graph, target: NodeId) {
        self.remove_target_contribution(target);
        if graph.contains_node(target) && graph.label(target) == self.constraint.target() {
            self.add_target_contribution(graph, target, self.cap);
        }
        self.recompute_max_cardinality();
    }
}

/// One [`ConstraintIndex`] per constraint of an [`AccessSchema`].
#[derive(Debug, Clone)]
pub struct AccessIndexSet {
    pub(crate) schema: AccessSchema,
    pub(crate) indices: Vec<ConstraintIndex>,
}

impl AccessIndexSet {
    /// Builds all indices for `schema` over `graph`.
    pub fn build(graph: &Graph, schema: &AccessSchema) -> Self {
        Self::build_with_cap(graph, schema, DEFAULT_MAX_COMBINATIONS_PER_NODE)
    }

    /// Builds all indices with an explicit per-node combination cap. The cap
    /// is remembered by every index, so incremental maintenance refreshes
    /// contributions under the same cap as a fresh build.
    pub fn build_with_cap(graph: &Graph, schema: &AccessSchema, cap: usize) -> Self {
        let indices = schema
            .iter()
            .map(|c| ConstraintIndex::build_with_cap(graph, c.clone(), cap))
            .collect();
        AccessIndexSet {
            schema: schema.clone(),
            indices,
        }
    }

    /// Builds all indices restricted to the target nodes `owns` accepts —
    /// one shard's slice of the full index set. Over a disjoint-complete
    /// family of ownership predicates the slices merge back
    /// ([`AccessIndexSet::merge_shards`]) into exactly the set
    /// [`AccessIndexSet::build_with_cap`] would produce.
    pub fn build_filtered_with_cap(
        graph: &Graph,
        schema: &AccessSchema,
        cap: usize,
        owns: impl Fn(NodeId) -> bool,
    ) -> Self {
        let indices = schema
            .iter()
            .map(|c| ConstraintIndex::build_filtered_with_cap(graph, c.clone(), cap, &owns))
            .collect();
        AccessIndexSet {
            schema: schema.clone(),
            indices,
        }
    }

    /// Merges per-shard index sets (built with
    /// [`AccessIndexSet::build_filtered_with_cap`] over disjoint ownership
    /// predicates) back into one set. Because every `(key → target)` entry
    /// lives whole in its target's shard, the merge is a disjoint union:
    /// answer lists are concatenated and re-sorted, reverse maps and capped
    /// sets are unioned, and the result is structurally identical to a
    /// single unfiltered build over the whole graph.
    ///
    /// # Panics
    /// Panics if the shards disagree on schema, count or caps.
    pub fn merge_shards<'a>(shards: impl IntoIterator<Item = &'a AccessIndexSet>) -> Self {
        let mut shards = shards.into_iter();
        let first = shards
            .next()
            .expect("merge_shards needs at least one shard");
        let mut merged = first.clone();
        for shard in shards {
            assert_eq!(shard.schema, merged.schema, "shards must share one schema");
            for (into, from) in merged.indices.iter_mut().zip(&shard.indices) {
                assert_eq!(into.cap, from.cap, "shards must share one cap");
                for (key, answers) in &from.map {
                    let entry = into.map.entry(key.clone()).or_default();
                    entry.extend_from_slice(answers);
                    entry.sort_unstable();
                }
                for (&target, keys) in &from.reverse {
                    into.reverse
                        .entry(target)
                        .or_default()
                        .extend(keys.iter().cloned());
                }
                into.capped_targets
                    .extend(from.capped_targets.iter().copied());
            }
        }
        for index in &mut merged.indices {
            index.recompute_max_cardinality();
        }
        merged
    }

    /// The schema these indices back.
    pub fn schema(&self) -> &AccessSchema {
        &self.schema
    }

    /// The index for constraint `id`.
    pub fn get(&self, id: ConstraintId) -> Option<&ConstraintIndex> {
        self.indices.get(id.index())
    }

    /// Mutable access used by incremental maintenance.
    pub(crate) fn get_mut(&mut self, id: ConstraintId) -> Option<&mut ConstraintIndex> {
        self.indices.get_mut(id.index())
    }

    /// Iterates over `(id, index)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ConstraintId, &ConstraintIndex)> {
        self.indices
            .iter()
            .enumerate()
            .map(|(i, idx)| (ConstraintId(i as u32), idx))
    }

    /// Number of indices (equals `||A||`).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Sum of the sizes of all indices — the `|index|` of the whole schema.
    pub fn total_size(&self) -> usize {
        self.indices.iter().map(ConstraintIndex::size).sum()
    }

    /// Sum of the sizes of the indices identified by `ids` — the paper's
    /// `|index_Q|`: only the indices a query plan actually uses.
    pub fn size_of(&self, ids: impl IntoIterator<Item = ConstraintId>) -> usize {
        ids.into_iter()
            .filter_map(|id| self.get(id))
            .map(ConstraintIndex::size)
            .sum()
    }

    /// Finds a constraint with exactly the given source label set and target
    /// label, preferring the tightest bound.
    pub fn find_exact(&self, source: &[Label], target: Label) -> Option<ConstraintId> {
        let mut key: Vec<Label> = source.to_vec();
        key.sort_unstable();
        key.dedup();
        self.schema
            .iter_with_ids()
            .filter(|(_, c)| c.source() == key.as_slice() && c.target() == target)
            .min_by_key(|(_, c)| c.bound())
            .map(|(id, _)| id)
    }

    /// Finds the tightest global constraint on `target`.
    pub fn find_global(&self, target: Label) -> Option<ConstraintId> {
        self.schema
            .iter_with_ids()
            .filter(|(_, c)| c.is_global() && c.target() == target)
            .min_by_key(|(_, c)| c.bound())
            .map(|(id, _)| id)
    }

    /// True when every index respects its cardinality bound, i.e. the
    /// indexed graph satisfies the cardinality part of the schema.
    pub fn within_bounds(&self) -> bool {
        self.indices.iter().all(ConstraintIndex::within_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_graph::{GraphBuilder, Value};

    /// Two (year, award) pairs each pointing at movies, movies pointing at
    /// actors, actors at one country.
    fn imdb_toy() -> (Graph, Label, Label, Label, Label, Label) {
        let mut b = GraphBuilder::new();
        let year_l = b.intern_label("year");
        let award_l = b.intern_label("award");
        let movie_l = b.intern_label("movie");
        let actor_l = b.intern_label("actor");
        let country_l = b.intern_label("country");

        let y1 = b.add_node("year", Value::Int(2011));
        let y2 = b.add_node("year", Value::Int(2012));
        let a1 = b.add_node("award", Value::str("Oscar"));
        let us = b.add_node("country", Value::str("US"));
        for i in 0..3 {
            let m = b.add_node("movie", Value::Int(i));
            let y = if i % 2 == 0 { y1 } else { y2 };
            b.add_edge(y, m).unwrap();
            b.add_edge(a1, m).unwrap();
            for j in 0..2 {
                let act = b.add_node("actor", Value::Int(10 * i + j));
                b.add_edge(m, act).unwrap();
                b.add_edge(act, us).unwrap();
            }
        }
        (b.build(), year_l, award_l, movie_l, actor_l, country_l)
    }

    #[test]
    fn global_index_lists_all_labeled_nodes() {
        let (g, year_l, ..) = imdb_toy();
        let idx = ConstraintIndex::build(&g, AccessConstraint::global(year_l, 135));
        assert_eq!(idx.global_nodes().len(), 2);
        assert_eq!(idx.max_cardinality(), 2);
        assert!(idx.within_bound());
        assert_eq!(idx.key_count(), 1);
        assert!(!idx.is_truncated());
    }

    #[test]
    fn unary_index_maps_each_source_node() {
        let (g, _, _, movie_l, actor_l, _) = imdb_toy();
        let idx = ConstraintIndex::build(&g, AccessConstraint::unary(movie_l, actor_l, 30));
        // Every movie has exactly 2 actors.
        for &m in g.nodes_with_label(movie_l) {
            let actors = idx.common_neighbors(&[m]);
            assert_eq!(actors.len(), 2);
            for &a in actors {
                assert!(g.are_neighbors(m, a));
                assert_eq!(g.label(a), actor_l);
            }
        }
        assert_eq!(idx.max_cardinality(), 2);
        assert!(idx.within_bound());
    }

    #[test]
    fn general_index_on_pairs() {
        let (g, year_l, award_l, movie_l, ..) = imdb_toy();
        let idx = ConstraintIndex::build(&g, AccessConstraint::new([year_l, award_l], movie_l, 4));
        let years = g.nodes_with_label(year_l);
        let awards = g.nodes_with_label(award_l);
        // (y1, a1) has movies 0 and 2; (y2, a1) has movie 1.
        let m_y1 = idx.common_neighbors(&[years[0], awards[0]]);
        let m_y2 = idx.common_neighbors(&[years[1], awards[0]]);
        assert_eq!(m_y1.len(), 2);
        assert_eq!(m_y2.len(), 1);
        // Order of the lookup key must not matter.
        assert_eq!(
            idx.common_neighbors(&[awards[0], years[0]]),
            idx.common_neighbors(&[years[0], awards[0]])
        );
        assert!(idx.contains(&[years[0], awards[0]], m_y1[0]));
        assert!(!idx.contains(&[years[1], awards[0]], m_y1[0]));
        assert_eq!(idx.max_cardinality(), 2);
        assert!(idx.within_bound());
    }

    #[test]
    fn lookup_of_unindexed_set_is_empty() {
        let (g, year_l, _, movie_l, actor_l, _) = imdb_toy();
        let idx = ConstraintIndex::build(&g, AccessConstraint::unary(year_l, movie_l, 10));
        // An actor node is not a valid S-labeled set for this constraint.
        let actor = g.nodes_with_label(actor_l)[0];
        assert!(idx.common_neighbors(&[actor]).is_empty());
    }

    #[test]
    fn index_size_accounts_keys_and_answers() {
        let (g, _, _, movie_l, actor_l, _) = imdb_toy();
        let idx = ConstraintIndex::build(&g, AccessConstraint::unary(movie_l, actor_l, 30));
        // 3 movie keys (1 node each) + 6 actor answers = 9.
        assert_eq!(idx.size(), 9);
        assert_eq!(idx.entries().count(), 3);
    }

    #[test]
    fn duplicate_labels_in_key_are_deduplicated() {
        let (g, _, _, movie_l, actor_l, country_l) = imdb_toy();
        // Constraint (actor, actor) collapses to {actor}: the index behaves
        // like a unary constraint.
        let idx =
            ConstraintIndex::build(&g, AccessConstraint::new([actor_l, actor_l], country_l, 10));
        let a = g.nodes_with_label(actor_l)[0];
        assert_eq!(idx.common_neighbors(&[a, a]).len(), 1);
        assert_eq!(idx.constraint().source_len(), 1);
        let _ = movie_l;
    }

    #[test]
    fn index_set_builds_one_index_per_constraint() {
        let (g, year_l, award_l, movie_l, actor_l, country_l) = imdb_toy();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::new([year_l, award_l], movie_l, 4),
            AccessConstraint::unary(movie_l, actor_l, 30),
            AccessConstraint::unary(actor_l, country_l, 1),
            AccessConstraint::global(year_l, 135),
        ]);
        let set = AccessIndexSet::build(&g, &schema);
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
        assert!(set.within_bounds());
        assert!(set.total_size() > 0);
        assert_eq!(
            set.size_of([ConstraintId(3)]),
            set.get(ConstraintId(3)).unwrap().size()
        );
        assert_eq!(set.schema().len(), 4);

        // find_exact and find_global locate constraints irrespective of order.
        assert_eq!(
            set.find_exact(&[award_l, year_l], movie_l),
            Some(ConstraintId(0))
        );
        assert_eq!(set.find_exact(&[movie_l], actor_l), Some(ConstraintId(1)));
        assert_eq!(set.find_exact(&[movie_l], country_l), None);
        assert_eq!(set.find_global(year_l), Some(ConstraintId(3)));
        assert_eq!(set.find_global(movie_l), None);
    }

    #[test]
    fn find_exact_prefers_tightest_bound() {
        let (g, year_l, _, movie_l, ..) = imdb_toy();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::unary(year_l, movie_l, 100),
            AccessConstraint::unary(year_l, movie_l, 5),
        ]);
        let set = AccessIndexSet::build(&g, &schema);
        assert_eq!(set.find_exact(&[year_l], movie_l), Some(ConstraintId(1)));
    }

    #[test]
    fn violated_bound_is_detected() {
        let (g, _, _, movie_l, actor_l, _) = imdb_toy();
        // Claim every movie has at most 1 actor — false (they have 2).
        let idx = ConstraintIndex::build(&g, AccessConstraint::unary(movie_l, actor_l, 1));
        assert!(!idx.within_bound());
        assert_eq!(idx.max_cardinality(), 2);
    }

    #[test]
    fn combination_cap_marks_truncation() {
        // A hub with many neighbors of two source labels explodes the
        // cartesian product; the cap must kick in.
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", Value::Null);
        for i in 0..20 {
            let x = b.add_node("x", Value::Int(i));
            let y = b.add_node("y", Value::Int(i));
            b.add_edge(x, hub).unwrap();
            b.add_edge(y, hub).unwrap();
        }
        let g = b.build();
        let x_l = g.interner().get("x").unwrap();
        let y_l = g.interner().get("y").unwrap();
        let hub_l = g.interner().get("hub").unwrap();
        let idx =
            ConstraintIndex::build_with_cap(&g, AccessConstraint::new([x_l, y_l], hub_l, 1), 50);
        assert!(idx.is_truncated());
        assert!(idx.key_count() <= 50);
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use crate::schema::AccessSchema;
    use bgpq_graph::{GraphBuilder, Value};

    /// A graph with enough structure that every constraint kind (global,
    /// unary, binary) gets multi-shard answers.
    fn dense_toy() -> (Graph, AccessSchema) {
        let mut b = GraphBuilder::new();
        let years: Vec<_> = (0..3)
            .map(|i| b.add_node("year", Value::Int(2010 + i)))
            .collect();
        let awards: Vec<_> = (0..2).map(|i| b.add_node("award", Value::Int(i))).collect();
        for i in 0..10i64 {
            let m = b.add_node("movie", Value::Int(i));
            b.add_edge(years[(i % 3) as usize], m).unwrap();
            b.add_edge(awards[(i % 2) as usize], m).unwrap();
            for j in 0..3 {
                let a = b.add_node("actor", Value::Int(10 * i + j));
                b.add_edge(m, a).unwrap();
            }
        }
        let g = b.build();
        let l = |n: &str| g.interner().get(n).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::global(l("year"), 3),
            AccessConstraint::global(l("movie"), 10),
            AccessConstraint::new([l("year"), l("award")], l("movie"), 4),
            AccessConstraint::unary(l("movie"), l("actor"), 3),
        ]);
        (g, schema)
    }

    fn assert_sets_equal(a: &AccessIndexSet, b: &AccessIndexSet) {
        assert_eq!(a.len(), b.len());
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.constraint(), y.constraint());
            assert_eq!(x.cap(), y.cap());
            assert_eq!(x.key_count(), y.key_count());
            assert_eq!(x.size(), y.size());
            assert_eq!(x.max_cardinality(), y.max_cardinality());
            assert_eq!(x.is_truncated(), y.is_truncated());
            for (key, answers) in x.entries() {
                assert_eq!(y.common_neighbors(key), answers, "key {key:?}");
            }
        }
    }

    #[test]
    fn filtered_shards_merge_to_the_full_build() {
        let (g, schema) = dense_toy();
        let full = AccessIndexSet::build(&g, &schema);
        for parts in [1usize, 2, 4] {
            let shards: Vec<AccessIndexSet> = (0..parts)
                .map(|p| {
                    AccessIndexSet::build_filtered_with_cap(
                        &g,
                        &schema,
                        DEFAULT_MAX_COMBINATIONS_PER_NODE,
                        |v: NodeId| v.index() % parts == p,
                    )
                })
                .collect();
            // Shards partition the entries: sizes sum to the full build's.
            let sum: usize = shards.iter().map(AccessIndexSet::total_size).sum();
            assert!(sum >= full.total_size(), "{parts} shards lost entries");
            let merged = AccessIndexSet::merge_shards(&shards);
            assert_sets_equal(&merged, &full);
        }
    }

    #[test]
    fn filtered_truncation_verdicts_survive_the_merge() {
        // A hub over the cap lands in exactly one shard; the merged verdict
        // must match the unfiltered build's.
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", Value::Null);
        for i in 0..20 {
            let x = b.add_node("x", Value::Int(i));
            let y = b.add_node("y", Value::Int(i));
            b.add_edge(x, hub).unwrap();
            b.add_edge(y, hub).unwrap();
        }
        let g = b.build();
        let l = |n: &str| g.interner().get(n).unwrap();
        let schema =
            AccessSchema::from_constraints([AccessConstraint::new([l("x"), l("y")], l("hub"), 1)]);
        let full = AccessIndexSet::build_with_cap(&g, &schema, 50);
        assert!(full.get(ConstraintId(0)).unwrap().is_truncated());
        let shards: Vec<AccessIndexSet> = (0..2)
            .map(|p| {
                AccessIndexSet::build_filtered_with_cap(&g, &schema, 50, |v: NodeId| {
                    v.index() % 2 == p
                })
            })
            .collect();
        // Exactly one shard owns the hub and carries the verdict.
        let truncated = shards
            .iter()
            .filter(|s| s.get(ConstraintId(0)).unwrap().is_truncated())
            .count();
        assert_eq!(truncated, 1);
        let merged = AccessIndexSet::merge_shards(&shards);
        assert_sets_equal(&merged, &full);
    }
}
