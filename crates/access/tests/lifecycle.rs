//! The full access-schema lifecycle:
//! `discover_schema` → `check_schema` → incremental `maintenance`, with the
//! maintained indices answering identically to a freshly rebuilt
//! [`AccessIndexSet`] after every change.

use bgpq_access::maintenance::{apply_delta, apply_deltas, GraphDelta};
use bgpq_access::{check_schema, discover_schema, AccessIndexSet, DiscoveryConfig};
use bgpq_graph::{Graph, GraphBuilder, NodeId, Value};

/// Node labels of the fixture, in id order. Rebuilding the graph from an
/// edge list keeps node ids stable across deltas.
const LABELS: [&str; 10] = [
    "year", "year", "award", "movie", "movie", "movie", "actor", "actor", "actor", "country",
];

fn base_edges() -> Vec<(NodeId, NodeId)> {
    let n = |i: u32| NodeId(i);
    vec![
        (n(0), n(3)), // year1 -> movie1
        (n(2), n(3)), // award -> movie1
        (n(1), n(4)), // year2 -> movie2
        (n(2), n(4)), // award -> movie2
        (n(0), n(5)), // year1 -> movie3
        (n(3), n(6)), // movie1 -> actor1
        (n(3), n(7)), // movie1 -> actor2
        (n(4), n(8)), // movie2 -> actor3
        (n(6), n(9)), // actor1 -> country
        (n(7), n(9)), // actor2 -> country
        (n(8), n(9)), // actor3 -> country
    ]
}

fn build(edges: &[(NodeId, NodeId)], extra_nodes: usize) -> Graph {
    let mut b = GraphBuilder::new();
    for l in LABELS {
        b.add_node(l, Value::Int(0));
    }
    for _ in 0..extra_nodes {
        b.add_node("movie", Value::Int(99));
    }
    for &(s, d) in edges {
        b.add_edge(s, d).unwrap();
    }
    b.build()
}

/// Every lookup of the maintained index set must equal a from-scratch
/// rebuild on the current graph — both directions (no missing and no stale
/// entries).
fn assert_identical_to_rebuild(maintained: &AccessIndexSet, graph: &Graph) {
    let rebuilt = AccessIndexSet::build(graph, maintained.schema());
    assert_eq!(maintained.len(), rebuilt.len());
    for (id, fresh) in rebuilt.iter() {
        let kept = maintained.get(id).unwrap();
        assert_eq!(kept.key_count(), fresh.key_count(), "key count for {id}");
        assert_eq!(kept.size(), fresh.size(), "size for {id}");
        assert_eq!(
            kept.max_cardinality(),
            fresh.max_cardinality(),
            "max cardinality for {id}"
        );
        for (key, answers) in fresh.entries() {
            assert_eq!(kept.common_neighbors(key), answers, "{id} key {key:?}");
        }
        for (key, answers) in kept.entries() {
            assert_eq!(
                fresh.common_neighbors(key),
                answers,
                "stale {id} key {key:?}"
            );
        }
    }
    assert_eq!(maintained.total_size(), rebuilt.total_size());
}

#[test]
fn discover_check_maintain_round_trip() {
    let edges = base_edges();
    let g0 = build(&edges, 0);

    // 1. Discover a schema and verify G |= A.
    let schema = discover_schema(&g0, &DiscoveryConfig::default());
    assert!(!schema.is_empty());
    assert!(check_schema(&g0, &schema).is_empty());

    // 2. Build the indices once.
    let mut indices = AccessIndexSet::build(&g0, &schema);
    assert!(indices.within_bounds());

    // 3. Insert an edge (year2 -> movie3: movie3 gains a (year, award)... no
    //    award yet, but year fanouts change), maintain, compare to rebuild.
    let mut e1 = edges.clone();
    e1.push((NodeId(1), NodeId(5)));
    let g1 = build(&e1, 0);
    apply_delta(
        &mut indices,
        &g1,
        &GraphDelta::InsertEdge(NodeId(1), NodeId(5)),
    );
    assert_identical_to_rebuild(&indices, &g1);

    // 4. Delete an edge (award -> movie1), maintain, compare.
    let e2: Vec<_> = e1
        .iter()
        .copied()
        .filter(|&e| e != (NodeId(2), NodeId(3)))
        .collect();
    let g2 = build(&e2, 0);
    apply_delta(
        &mut indices,
        &g2,
        &GraphDelta::DeleteEdge(NodeId(2), NodeId(3)),
    );
    assert_identical_to_rebuild(&indices, &g2);

    // 5. Insert a fresh movie node and wire it up in one batch.
    let new_movie = NodeId(LABELS.len() as u32);
    let mut e3 = e2.clone();
    e3.push((NodeId(2), new_movie));
    e3.push((new_movie, NodeId(6)));
    let g3 = build(&e3, 1);
    apply_deltas(
        &mut indices,
        &g3,
        &[
            GraphDelta::InsertNode(new_movie),
            GraphDelta::InsertEdge(NodeId(2), new_movie),
            GraphDelta::InsertEdge(new_movie, NodeId(6)),
        ],
    );
    assert_identical_to_rebuild(&indices, &g3);
}

#[test]
fn maintained_indices_survive_a_delta_storm() {
    // Apply a long alternating sequence of insertions and deletions and
    // check equivalence after every step.
    let mut edges = base_edges();
    let g = build(&edges, 0);
    let schema = discover_schema(&g, &DiscoveryConfig::simple());
    assert!(check_schema(&g, &schema).is_empty());
    let mut indices = AccessIndexSet::build(&g, &schema);

    let candidates = [
        (NodeId(1), NodeId(3)), // year2 -> movie1
        (NodeId(0), NodeId(4)), // year1 -> movie2
        (NodeId(4), NodeId(6)), // movie2 -> actor1
        (NodeId(5), NodeId(8)), // movie3 -> actor3
        (NodeId(2), NodeId(5)), // award -> movie3
    ];
    for &(s, d) in &candidates {
        // Insert.
        edges.push((s, d));
        let g_ins = build(&edges, 0);
        apply_delta(&mut indices, &g_ins, &GraphDelta::InsertEdge(s, d));
        assert_identical_to_rebuild(&indices, &g_ins);
    }
    for &(s, d) in candidates.iter().rev() {
        // Delete again.
        let pos = edges.iter().rposition(|&e| e == (s, d)).unwrap();
        edges.remove(pos);
        let g_del = build(&edges, 0);
        apply_delta(&mut indices, &g_del, &GraphDelta::DeleteEdge(s, d));
        assert_identical_to_rebuild(&indices, &g_del);
    }
    // After inserting and deleting the same edges, we are back at the base
    // graph: the maintained indices must equal the original build.
    let fresh = AccessIndexSet::build(&build(&base_edges(), 0), &schema);
    assert_eq!(indices.total_size(), fresh.total_size());
}

#[test]
fn maintenance_preserves_schema_violation_detection() {
    // Discovered bounds are tight; adding edges can push a fanout past its
    // bound, and the maintained indices must expose that via within_bounds.
    let edges = base_edges();
    let g = build(&edges, 0);
    let schema = discover_schema(&g, &DiscoveryConfig::simple());
    let mut indices = AccessIndexSet::build(&g, &schema);
    assert!(indices.within_bounds());

    // movie1 already has 2 actors (the discovered movie → actor bound);
    // give it a third.
    let mut e1 = edges.clone();
    e1.push((NodeId(3), NodeId(8)));
    let g1 = build(&e1, 0);
    apply_delta(
        &mut indices,
        &g1,
        &GraphDelta::InsertEdge(NodeId(3), NodeId(8)),
    );
    assert_identical_to_rebuild(&indices, &g1);
    assert!(!indices.within_bounds());
    assert!(!check_schema(&g1, indices.schema()).is_empty());
}
