//! Persisted-index differential suite: an [`AccessIndexSet`] deserialized
//! from a snapshot must be indistinguishable from one freshly built over the
//! same graph and schema — same entries, same caps, same truncation
//! verdicts — across schema shapes, caps and graph mutations.

use bgpq_access::{
    discover_schema, read_snapshot, write_snapshot, AccessIndexSet, DiscoveryConfig, SnapshotBundle,
};
use bgpq_graph::{Graph, GraphBuilder, NodeId, Value};
use std::io::Cursor;

/// Full observable equality of two index sets over the same schema.
fn assert_index_sets_identical(fresh: &AccessIndexSet, loaded: &AccessIndexSet) {
    assert_eq!(fresh.len(), loaded.len(), "index count");
    assert_eq!(fresh.total_size(), loaded.total_size(), "total size");
    assert_eq!(
        fresh.within_bounds(),
        loaded.within_bounds(),
        "within_bounds"
    );
    for (id, a) in fresh.iter() {
        let b = loaded.get(id).unwrap_or_else(|| panic!("{id} missing"));
        assert_eq!(a.constraint(), b.constraint(), "constraint of {id}");
        assert_eq!(a.cap(), b.cap(), "cap of {id}");
        assert_eq!(a.is_truncated(), b.is_truncated(), "truncation of {id}");
        assert_eq!(a.within_bound(), b.within_bound(), "bound of {id}");
        assert_eq!(
            a.max_cardinality(),
            b.max_cardinality(),
            "max cardinality of {id}"
        );
        assert_eq!(a.key_count(), b.key_count(), "key count of {id}");
        assert_eq!(a.size(), b.size(), "size of {id}");
        if a.constraint().is_global() {
            assert_eq!(a.global_nodes(), b.global_nodes(), "global nodes of {id}");
        }
        let entries_a: Vec<(Vec<NodeId>, Vec<NodeId>)> =
            a.entries().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        let mut entries_b: Vec<(Vec<NodeId>, Vec<NodeId>)> =
            b.entries().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        // Entry iteration order is a HashMap artifact; compare as sets.
        let mut entries_a = entries_a;
        entries_a.sort();
        entries_b.sort();
        assert_eq!(entries_a, entries_b, "entries of {id}");
        // Reverse map parity via point lookups.
        for (key, answers) in &entries_a {
            assert_eq!(
                a.common_neighbors(key),
                b.common_neighbors(key),
                "lookup {key:?} in {id}"
            );
            for &t in answers {
                assert_eq!(
                    a.has_contribution(t),
                    b.has_contribution(t),
                    "contribution {t} in {id}"
                );
            }
        }
    }
}

fn round_trip(graph: &Graph, indices: &AccessIndexSet) -> SnapshotBundle {
    let mut buf = Vec::new();
    write_snapshot(graph, indices, &mut buf).unwrap();
    read_snapshot(Cursor::new(buf)).unwrap()
}

/// The movie/actor fixture with enough structure for discovery to find
/// grouped (multi-source) constraints.
fn fixture() -> Graph {
    let mut b = GraphBuilder::new();
    let years: Vec<NodeId> = (0..3)
        .map(|i| b.add_node("year", Value::Int(2000 + i)))
        .collect();
    let awards: Vec<NodeId> = (0..2)
        .map(|i| b.add_node("award", Value::str(format!("a{i}"))))
        .collect();
    let movies: Vec<NodeId> = (0..12)
        .map(|i| b.add_node("movie", Value::str(format!("m{i}"))))
        .collect();
    let actors: Vec<NodeId> = (0..8)
        .map(|i| b.add_node("actor", Value::str(format!("p{i}"))))
        .collect();
    for (i, &m) in movies.iter().enumerate() {
        b.add_edge(years[i % years.len()], m).unwrap();
        b.add_edge(awards[i % awards.len()], m).unwrap();
        b.add_edge(m, actors[i % actors.len()]).unwrap();
        b.add_edge(m, actors[(i + 3) % actors.len()]).unwrap();
    }
    b.build()
}

/// A star graph whose hub has more neighbor combinations than a small cap
/// allows, forcing `is_truncated` on the grouped constraint.
fn hub_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let spokes: Vec<NodeId> = (0..24)
        .map(|i| b.add_node("spoke", Value::Int(i)))
        .collect();
    let hubs: Vec<NodeId> = (0..3).map(|i| b.add_node("hub", Value::Int(i))).collect();
    for &h in &hubs {
        for &s in &spokes {
            b.add_edge(s, h).unwrap();
        }
    }
    b.build()
}

#[test]
fn discovered_schema_round_trips_identically() {
    let graph = fixture();
    let schema = discover_schema(&graph, &DiscoveryConfig::default());
    assert!(!schema.is_empty(), "discovery found constraints");
    let fresh = AccessIndexSet::build(&graph, &schema);
    let bundle = round_trip(&graph, &fresh);
    assert_eq!(bundle.schema.len(), schema.len(), "schema survived");
    assert_index_sets_identical(&fresh, &bundle.indices);
}

#[test]
fn truncated_indices_round_trip_with_their_verdicts() {
    let graph = hub_graph();
    let schema = discover_schema(&graph, &DiscoveryConfig::default());
    // A tiny cap guarantees at least one index truncates on the hub graph.
    let fresh = AccessIndexSet::build_with_cap(&graph, &schema, 4);
    assert!(
        fresh.iter().any(|(_, idx)| idx.is_truncated()),
        "fixture must force truncation (caps: {:?})",
        fresh.iter().map(|(_, i)| i.cap()).collect::<Vec<_>>()
    );
    let bundle = round_trip(&graph, &fresh);
    assert_index_sets_identical(&fresh, &bundle.indices);
}

#[test]
fn several_caps_round_trip() {
    let graph = hub_graph();
    let schema = discover_schema(&graph, &DiscoveryConfig::default());
    for cap in [1usize, 2, 8, 64, 100_000] {
        let fresh = AccessIndexSet::build_with_cap(&graph, &schema, cap);
        let bundle = round_trip(&graph, &fresh);
        assert_index_sets_identical(&fresh, &bundle.indices);
    }
}

#[test]
fn mutated_graph_round_trips_with_rebuilt_indices() {
    let mut graph = fixture();
    // Mutations leave tombstones behind; the snapshot must carry the graph
    // slot-exactly so the persisted indices keep referring to valid ids.
    let victim = graph
        .nodes()
        .find(|&v| graph.label_name(v) == "movie")
        .unwrap();
    graph.delete_node(victim).unwrap();
    let fresh_node = graph.insert_node("movie", Value::str("late arrival"));
    let year = graph
        .nodes()
        .find(|&v| graph.is_live(v) && graph.label_name(v) == "year")
        .unwrap();
    graph.insert_edge(year, fresh_node).unwrap();

    let schema = discover_schema(&graph, &DiscoveryConfig::default());
    let fresh = AccessIndexSet::build(&graph, &schema);
    let bundle = round_trip(&graph, &fresh);
    assert_eq!(
        bundle.graph.live_node_count(),
        graph.live_node_count(),
        "live nodes survived"
    );
    assert_eq!(
        bundle.graph.node_count(),
        graph.node_count(),
        "slots survived"
    );
    assert_index_sets_identical(&fresh, &bundle.indices);
    // And the loaded bundle's indices agree with a build over the *loaded*
    // graph — ids in the persisted entries still mean the same nodes.
    let rebuilt = AccessIndexSet::build(&bundle.graph, &bundle.schema);
    assert_index_sets_identical(&rebuilt, &bundle.indices);
}

#[test]
fn empty_schema_round_trips() {
    let graph = fixture();
    let schema = bgpq_access::AccessSchema::new();
    let fresh = AccessIndexSet::build(&graph, &schema);
    let bundle = round_trip(&graph, &fresh);
    assert_eq!(bundle.schema.len(), 0);
    assert_index_sets_identical(&fresh, &bundle.indices);
}
