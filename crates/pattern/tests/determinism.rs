//! Determinism of the workload generator: the same seed must produce the
//! same workload, structurally identical down to every predicate atom, so
//! that equivalence suites and experiments are reproducible.

use bgpq_graph::{Graph, GraphBuilder, Value};
use bgpq_pattern::{GeneratorConfig, Pattern, WorkloadGenerator};

fn data_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let mut movies = Vec::new();
    for i in 0..12 {
        movies.push(b.add_node("movie", Value::Int(2000 + i)));
    }
    for (i, &m) in movies.iter().enumerate() {
        let actor = b.add_node("actor", Value::Int(i as i64));
        let country = b.add_node("country", Value::str(format!("c{}", i % 3)));
        b.add_edge(m, actor).unwrap();
        b.add_edge(actor, country).unwrap();
        if i > 0 {
            b.add_edge(movies[i - 1], m).unwrap();
        }
    }
    b.build()
}

/// Structural equality of patterns: labels, edges, names and predicates.
fn assert_same_pattern(a: &Pattern, b: &Pattern, context: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{context}: node count");
    assert_eq!(a.edge_count(), b.edge_count(), "{context}: edge count");
    for u in a.nodes() {
        assert_eq!(a.label(u), b.label(u), "{context}: label of {u}");
        assert_eq!(a.label_name(u), b.label_name(u), "{context}: name of {u}");
        assert_eq!(
            a.predicate(u),
            b.predicate(u),
            "{context}: predicate of {u}"
        );
    }
    let ea: Vec<_> = a.edges().collect();
    let eb: Vec<_> = b.edges().collect();
    assert_eq!(ea, eb, "{context}: edges");
}

#[test]
fn same_seed_same_workload() {
    let g = data_graph();
    for seed in [0u64, 1, 7, 42, 0x1CDE_2015] {
        let wa = WorkloadGenerator::with_seed(seed).generate(&g, 10);
        let wb = WorkloadGenerator::with_seed(seed).generate(&g, 10);
        for (i, (a, b)) in wa.iter().zip(&wb).enumerate() {
            assert_same_pattern(a, b, &format!("seed {seed}, pattern {i}"));
        }
    }
}

#[test]
fn same_seed_same_anchored_workload() {
    let g = data_graph();
    for seed in [3u64, 11, 99] {
        let wa = WorkloadGenerator::with_seed(seed).generate_anchored(&g, 10);
        let wb = WorkloadGenerator::with_seed(seed).generate_anchored(&g, 10);
        for (i, (a, b)) in wa.iter().zip(&wb).enumerate() {
            assert_same_pattern(a, b, &format!("anchored seed {seed}, pattern {i}"));
        }
    }
}

#[test]
fn different_seeds_differ_somewhere() {
    let g = data_graph();
    let wa = WorkloadGenerator::with_seed(1).generate(&g, 10);
    let wb = WorkloadGenerator::with_seed(2).generate(&g, 10);
    let identical = wa.iter().zip(&wb).all(|(a, b)| {
        a.node_count() == b.node_count()
            && a.edges().collect::<Vec<_>>() == b.edges().collect::<Vec<_>>()
            && a.nodes().all(|u| a.label(u) == b.label(u))
    });
    assert!(!identical, "seeds 1 and 2 produced identical workloads");
}

#[test]
fn config_seed_round_trips_through_generator() {
    let g = data_graph();
    let config = GeneratorConfig::default().with_seed(123);
    let wa = WorkloadGenerator::new(config.clone()).generate(&g, 5);
    let wb = WorkloadGenerator::new(config).generate(&g, 5);
    for (i, (a, b)) in wa.iter().zip(&wb).enumerate() {
        assert_same_pattern(a, b, &format!("config seed, pattern {i}"));
    }
}
