//! A small deterministic pseudo-random number generator.
//!
//! The workload generator only needs reproducible sampling — pick a number in
//! a range, flip a biased coin, choose a slice element — and the workspace is
//! built without external dependencies, so this module provides a
//! self-contained [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! generator instead of pulling in the `rand` crate. Streams are fully
//! determined by the seed and stable across platforms, which the equivalence
//! test suites rely on.

use std::ops::{Range, RangeInclusive};

/// A usize range with inclusive bounds, accepted by [`DetRng::random_range`].
///
/// Implemented for `lo..hi` (half-open) and `lo..=hi` (inclusive) so call
/// sites read like the `rand` crate's API.
pub trait UsizeRange {
    /// The `(lo, hi)` inclusive bounds of the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn inclusive_bounds(self) -> (usize, usize);
}

impl UsizeRange for Range<usize> {
    fn inclusive_bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty range");
        (self.start, self.end - 1)
    }
}

impl UsizeRange for RangeInclusive<usize> {
    fn inclusive_bounds(self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty range");
        (*self.start(), *self.end())
    }
}

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// The next 64 raw pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform-ish draw from `range` (modulo reduction; the tiny bias is
    /// irrelevant for workload generation).
    pub fn random_range<R: UsizeRange>(&mut self, range: R) -> usize {
        let (lo, hi) = range.inclusive_bounds();
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// A uniform float in `[0, 1)` from 53 high-quality bits — the input to
    /// inverse-CDF sampling (e.g. the scenario generators' zipfian draws).
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A coin flip that is true with probability `p`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// A uniformly chosen element of `slice`, or `None` when it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(0..slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(99);
        let mut b = DetRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let z = rng.random_range(0..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = DetRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn floats_are_uniform_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.random_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = DetRng::seed_from_u64(5);
        let items = [10, 20, 30];
        let empty: [i32; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = rng.choose(&items).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
