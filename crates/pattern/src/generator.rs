//! Random pattern-query workloads.
//!
//! Section VII of the paper generates, for every dataset, 100 random pattern
//! queries over the dataset's label alphabet, controlled by the number of
//! nodes `#n ∈ [3, 7]`, the number of edges `#e ∈ [#n − 1, 1.5·#n]` and the
//! number of match predicates `#p ∈ [2, 8]`. [`WorkloadGenerator`] reproduces
//! that generator with two sampling modes:
//!
//! * [`WorkloadGenerator::generate`] — label-random patterns: labels are
//!   drawn from the graph's alphabet and a random weakly connected pattern is
//!   assembled (a spanning tree plus extra random edges). This is the paper's
//!   generator; such patterns may or may not have matches.
//! * [`WorkloadGenerator::generate_anchored`] — patterns extracted from an
//!   actual connected fragment of the data graph, so that at least one
//!   subgraph-isomorphism match is guaranteed (predicates are chosen to hold
//!   on the sampled fragment). These are used when measuring evaluation cost,
//!   where empty answers would make baselines look artificially fast.

use crate::builder::PatternBuilder;
use crate::pattern::{Pattern, PatternNodeId};
use crate::predicate::{Atom, Op, Predicate};
use crate::rng::DetRng;
use bgpq_graph::{Graph, NodeId, Value};

/// Parameters of the workload generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Inclusive range for the number of pattern nodes `#n`.
    pub min_nodes: usize,
    /// Inclusive upper bound for `#n`.
    pub max_nodes: usize,
    /// Multiplier on `#n` giving the upper bound for `#e`
    /// (the lower bound is always `#n − 1`, a spanning tree).
    pub edge_factor: f64,
    /// Inclusive range for the total number of predicate atoms `#p`.
    pub min_predicates: usize,
    /// Inclusive upper bound for `#p`.
    pub max_predicates: usize,
    /// RNG seed; workloads are fully deterministic given the seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    /// The paper's ranges: `#n ∈ [3,7]`, `#e ∈ [#n−1, 1.5·#n]`, `#p ∈ [2,8]`.
    fn default() -> Self {
        GeneratorConfig {
            min_nodes: 3,
            max_nodes: 7,
            edge_factor: 1.5,
            min_predicates: 2,
            max_predicates: 8,
            seed: 0x1CDE_2015,
        }
    }
}

impl GeneratorConfig {
    /// A config that generates patterns with exactly `n` nodes.
    pub fn with_exact_nodes(n: usize) -> Self {
        GeneratorConfig {
            min_nodes: n,
            max_nodes: n,
            ..Default::default()
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Deterministic random workload generator over a data graph.
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: GeneratorConfig,
    rng: DetRng,
}

impl WorkloadGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        let rng = DetRng::seed_from_u64(config.seed);
        WorkloadGenerator { config, rng }
    }

    /// Creates a generator with the paper's default parameters and `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(GeneratorConfig::default().with_seed(seed))
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates `count` label-random patterns over `graph`'s label alphabet.
    pub fn generate(&mut self, graph: &Graph, count: usize) -> Vec<Pattern> {
        (0..count).map(|_| self.generate_one(graph)).collect()
    }

    /// Generates `count` patterns anchored on actual fragments of `graph`,
    /// guaranteeing at least one subgraph-isomorphism match each.
    pub fn generate_anchored(&mut self, graph: &Graph, count: usize) -> Vec<Pattern> {
        (0..count)
            .map(|_| self.generate_one_anchored(graph))
            .collect()
    }

    /// Generates one label-random pattern.
    pub fn generate_one(&mut self, graph: &Graph) -> Pattern {
        let n = self.pick_node_count();
        let labels: Vec<_> = graph
            .interner()
            .labels()
            .filter(|&l| graph.label_count(l) > 0)
            .collect();
        let mut builder = PatternBuilder::with_interner(graph.interner().clone());
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            let label = if labels.is_empty() {
                builder.interner().get("node").unwrap_or_default()
            } else {
                *self.rng.choose(&labels).expect("non-empty")
            };
            ids.push(builder.node_labeled(label, Predicate::always()));
        }
        self.wire_random_edges(&mut builder, &ids);
        let pattern = builder.build();
        self.attach_predicates(graph, pattern, None)
    }

    /// Generates one pattern anchored on a random connected fragment.
    pub fn generate_one_anchored(&mut self, graph: &Graph) -> Pattern {
        if graph.is_empty() {
            return PatternBuilder::with_interner(graph.interner().clone()).build();
        }
        let n = self.pick_node_count();
        let fragment = self.sample_connected_fragment(graph, n);
        let mut builder = PatternBuilder::with_interner(graph.interner().clone());
        let ids: Vec<PatternNodeId> = fragment
            .iter()
            .map(|&v| builder.node_labeled(graph.label(v), Predicate::always()))
            .collect();
        // Mirror every data edge between sampled nodes as a pattern edge.
        for (i, &v) in fragment.iter().enumerate() {
            for (j, &w) in fragment.iter().enumerate() {
                if i != j && graph.has_edge(v, w) {
                    builder.edge(ids[i], ids[j]);
                }
            }
        }
        let pattern = builder.build();
        self.attach_predicates(graph, pattern, Some(&fragment))
    }

    fn pick_node_count(&mut self) -> usize {
        if self.config.min_nodes >= self.config.max_nodes {
            self.config.min_nodes.max(1)
        } else {
            self.rng
                .random_range(self.config.min_nodes..=self.config.max_nodes)
                .max(1)
        }
    }

    fn pick_predicate_count(&mut self) -> usize {
        if self.config.min_predicates >= self.config.max_predicates {
            self.config.min_predicates
        } else {
            self.rng
                .random_range(self.config.min_predicates..=self.config.max_predicates)
        }
    }

    /// Wires a random weakly connected edge set: a random spanning tree plus
    /// extra edges up to `#e ≤ edge_factor · #n`.
    fn wire_random_edges(&mut self, builder: &mut PatternBuilder, ids: &[PatternNodeId]) {
        let n = ids.len();
        if n <= 1 {
            return;
        }
        // Spanning tree: connect node i to a random previous node.
        for i in 1..n {
            let j = self.rng.random_range(0..i);
            if self.rng.random_bool(0.5) {
                builder.edge(ids[j], ids[i]);
            } else {
                builder.edge(ids[i], ids[j]);
            }
        }
        let max_edges = ((n as f64) * self.config.edge_factor).floor() as usize;
        let target = if max_edges > n - 1 {
            self.rng.random_range((n - 1)..=max_edges)
        } else {
            n - 1
        };
        let mut attempts = 0;
        while builder.edge_count() < target && attempts < 10 * target {
            attempts += 1;
            let a = ids[self.rng.random_range(0..n)];
            let b = ids[self.rng.random_range(0..n)];
            if a != b {
                builder.edge(a, b);
            }
        }
    }

    /// Random-walk / BFS hybrid sampling of a weakly connected fragment of
    /// `graph` with up to `n` nodes.
    fn sample_connected_fragment(&mut self, graph: &Graph, n: usize) -> Vec<NodeId> {
        let start = NodeId(self.rng.random_range(0..graph.node_count()) as u32);
        let mut fragment = vec![start];
        let mut frontier = graph.neighbors(start);
        while fragment.len() < n && !frontier.is_empty() {
            let idx = self.rng.random_range(0..frontier.len());
            let next = frontier.swap_remove(idx);
            if fragment.contains(&next) {
                continue;
            }
            fragment.push(next);
            for nb in graph.neighbors(next) {
                if !fragment.contains(&nb) && !frontier.contains(&nb) {
                    frontier.push(nb);
                }
            }
        }
        fragment
    }

    /// Distributes `#p` predicate atoms over the nodes of `pattern`.
    ///
    /// When `anchor` is given, node `i` of the pattern corresponds to data
    /// node `anchor[i]` and the atoms are chosen to hold on that node's
    /// value; otherwise constants are sampled from data nodes with the same
    /// label (which keeps predicates satisfiable in the graph at large).
    fn attach_predicates(
        &mut self,
        graph: &Graph,
        pattern: Pattern,
        anchor: Option<&[NodeId]>,
    ) -> Pattern {
        let total = self.pick_predicate_count();
        let n = pattern.node_count();
        if n == 0 {
            return pattern;
        }
        let mut atoms_per_node = vec![Vec::new(); n];
        for _ in 0..total {
            let i = self.rng.random_range(0..n);
            let u = PatternNodeId(i as u32);
            let value = match anchor {
                Some(nodes) if i < nodes.len() => graph.value(nodes[i]).clone(),
                _ => {
                    let candidates = graph.nodes_with_label(pattern.label(u));
                    match self.rng.choose(candidates) {
                        Some(&v) => graph.value(v).clone(),
                        None => Value::Null,
                    }
                }
            };
            if value.is_null() {
                continue;
            }
            let satisfied = anchor.is_some();
            atoms_per_node[i].push(self.make_atom(value, satisfied));
        }

        // Rebuild the pattern with predicates attached.
        let mut builder = PatternBuilder::with_interner(pattern.interner().clone());
        for u in pattern.nodes() {
            let atoms = std::mem::take(&mut atoms_per_node[u.index()]);
            builder.node_labeled(pattern.label(u), Predicate::conjunction(atoms));
        }
        for (s, d) in pattern.edges() {
            builder.edge(s, d);
        }
        builder.build()
    }

    /// Builds a random atom around `value`. When `must_hold` is true the atom
    /// is guaranteed to evaluate to true on `value`.
    fn make_atom(&mut self, value: Value, must_hold: bool) -> Atom {
        let op = *self.rng.choose(&Op::ALL).expect("non-empty");
        if !must_hold {
            return Atom::new(op, value);
        }
        match value {
            Value::Int(i) => match op {
                Op::Eq | Op::Le | Op::Ge => Atom::new(op, i),
                Op::Lt => Atom::new(Op::Lt, i.saturating_add(1)),
                Op::Gt => Atom::new(Op::Gt, i.saturating_sub(1)),
                Op::Ne => Atom::new(Op::Ne, i.wrapping_add(1)),
            },
            Value::Float(x) => match op {
                Op::Eq | Op::Le | Op::Ge => Atom::new(op, x),
                Op::Lt => Atom::new(Op::Lt, x + 1.0),
                Op::Gt => Atom::new(Op::Gt, x - 1.0),
                Op::Ne => Atom::new(Op::Ne, x + 1.0),
            },
            other => Atom::new(Op::Eq, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_graph::GraphBuilder;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let mut movies = Vec::new();
        for i in 0..10 {
            movies.push(b.add_node("movie", Value::Int(2000 + i)));
        }
        for (i, &m) in movies.iter().enumerate() {
            let actor = b.add_node("actor", Value::Int(i as i64));
            let country = b.add_node("country", Value::str(format!("c{}", i % 3)));
            b.add_edge(m, actor).unwrap();
            b.add_edge(actor, country).unwrap();
            if i > 0 {
                b.add_edge(movies[i - 1], m).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn generated_patterns_respect_node_range() {
        let g = sample_graph();
        let mut generator = WorkloadGenerator::with_seed(7);
        let patterns = generator.generate(&g, 20);
        assert_eq!(patterns.len(), 20);
        for q in &patterns {
            assert!(q.node_count() >= 3 && q.node_count() <= 7);
            assert!(q.edge_count() >= q.node_count() - 1);
            assert!(q.edge_count() <= (1.5 * q.node_count() as f64) as usize + 1);
            assert!(q.is_connected(), "generated pattern must be connected");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = sample_graph();
        let a = WorkloadGenerator::with_seed(42).generate(&g, 5);
        let b = WorkloadGenerator::with_seed(42).generate(&g, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.node_count(), y.node_count());
            assert_eq!(x.edge_count(), y.edge_count());
            let xl: Vec<_> = x.nodes().map(|u| x.label(u)).collect();
            let yl: Vec<_> = y.nodes().map(|u| y.label(u)).collect();
            assert_eq!(xl, yl);
        }
        let c = WorkloadGenerator::with_seed(43).generate(&g, 5);
        let same = a.iter().zip(&c).all(|(x, y)| {
            x.node_count() == y.node_count()
                && x.edges().collect::<Vec<_>>() == y.edges().collect::<Vec<_>>()
        });
        assert!(!same, "different seeds should give different workloads");
    }

    #[test]
    fn anchored_patterns_use_real_labels_and_edges() {
        let g = sample_graph();
        let mut generator = WorkloadGenerator::with_seed(11);
        let patterns = generator.generate_anchored(&g, 10);
        for q in &patterns {
            assert!(q.node_count() >= 1);
            assert!(q.is_connected());
            // Every pattern label exists in the graph.
            for u in q.nodes() {
                assert!(g.label_count(q.label(u)) > 0);
            }
        }
    }

    #[test]
    fn predicates_are_attached_within_bounds() {
        let g = sample_graph();
        let mut generator = WorkloadGenerator::new(GeneratorConfig {
            min_predicates: 2,
            max_predicates: 8,
            ..Default::default()
        });
        let patterns = generator.generate(&g, 10);
        for q in &patterns {
            assert!(q.predicate_count() <= 8);
        }
    }

    #[test]
    fn exact_node_count_config() {
        let g = sample_graph();
        let mut generator = WorkloadGenerator::new(GeneratorConfig::with_exact_nodes(5));
        for q in generator.generate(&g, 5) {
            assert_eq!(q.node_count(), 5);
        }
    }

    #[test]
    fn empty_graph_yields_empty_anchored_pattern() {
        let g = Graph::empty();
        let mut generator = WorkloadGenerator::with_seed(1);
        let q = generator.generate_one_anchored(&g);
        assert!(q.is_empty());
    }

    #[test]
    fn anchored_predicates_hold_on_anchor() {
        // With anchoring, generated predicates must keep at least one match
        // alive: check the atoms hold on some graph node with that label.
        let g = sample_graph();
        let mut generator = WorkloadGenerator::with_seed(3);
        for q in generator.generate_anchored(&g, 10) {
            for u in q.nodes() {
                if q.predicate(u).is_empty() {
                    continue;
                }
                let holds_somewhere = g
                    .nodes_with_label(q.label(u))
                    .iter()
                    .any(|&v| q.predicate(u).eval(g.value(v)));
                assert!(
                    holds_somewhere,
                    "anchored predicate must hold on at least one data node"
                );
            }
        }
    }
}
