//! The pattern query representation.

use crate::predicate::Predicate;
use bgpq_graph::{Label, LabelInterner};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a pattern node, contiguous from `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PatternNodeId(pub u32);

impl PatternNodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PatternNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<u32> for PatternNodeId {
    fn from(v: u32) -> Self {
        PatternNodeId(v)
    }
}

/// A single pattern node: a label plus a predicate on the attribute value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PatternNodeData {
    pub(crate) label: Label,
    pub(crate) predicate: Predicate,
    pub(crate) name: Option<String>,
}

/// A pattern query `Q = (V_Q, E_Q, f_Q, g_Q)`.
///
/// Patterns are immutable once built (see [`crate::PatternBuilder`]) and
/// carry a copy of the label interner they were built against so that labels
/// can be rendered by name in diagnostics.
#[derive(Debug, Clone)]
pub struct Pattern {
    pub(crate) interner: LabelInterner,
    pub(crate) nodes: Vec<PatternNodeData>,
    pub(crate) out: Vec<Vec<PatternNodeId>>,
    pub(crate) inc: Vec<Vec<PatternNodeId>>,
    pub(crate) edges: Vec<(PatternNodeId, PatternNodeId)>,
}

impl Pattern {
    /// Number of pattern nodes `|V_Q|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of pattern edges `|E_Q|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `|Q| = |V_Q| + |E_Q|`.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// True when the pattern has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The interner the pattern was built against.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// All pattern node ids.
    pub fn nodes(&self) -> impl Iterator<Item = PatternNodeId> + '_ {
        (0..self.nodes.len() as u32).map(PatternNodeId)
    }

    /// All directed pattern edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (PatternNodeId, PatternNodeId)> + '_ {
        self.edges.iter().copied()
    }

    /// True when `u` is a node of this pattern.
    pub fn contains_node(&self, u: PatternNodeId) -> bool {
        u.index() < self.nodes.len()
    }

    /// The label `f_Q(u)`.
    pub fn label(&self, u: PatternNodeId) -> Label {
        self.nodes[u.index()].label
    }

    /// The predicate `g_Q(u)`.
    pub fn predicate(&self, u: PatternNodeId) -> &Predicate {
        &self.nodes[u.index()].predicate
    }

    /// Optional human-readable name given at build time.
    pub fn node_name(&self, u: PatternNodeId) -> Option<&str> {
        self.nodes[u.index()].name.as_deref()
    }

    /// The label name of `u` (falls back to a placeholder).
    pub fn label_name(&self, u: PatternNodeId) -> String {
        self.interner.name_or_placeholder(self.label(u))
    }

    /// Children of `u`: nodes `u'` with an edge `(u, u')`.
    pub fn children(&self, u: PatternNodeId) -> &[PatternNodeId] {
        &self.out[u.index()]
    }

    /// Parents of `u`: nodes `u'` with an edge `(u', u)`.
    pub fn parents(&self, u: PatternNodeId) -> &[PatternNodeId] {
        &self.inc[u.index()]
    }

    /// All neighbors of `u` in either direction, deduplicated and sorted.
    pub fn neighbors(&self, u: PatternNodeId) -> Vec<PatternNodeId> {
        let mut all: Vec<PatternNodeId> = self.out[u.index()]
            .iter()
            .chain(self.inc[u.index()].iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// True when the directed edge `(src, dst)` is in the pattern.
    pub fn has_edge(&self, src: PatternNodeId, dst: PatternNodeId) -> bool {
        self.out[src.index()].binary_search(&dst).is_ok()
    }

    /// Undirected degree of `u`.
    pub fn degree(&self, u: PatternNodeId) -> usize {
        self.neighbors(u).len()
    }

    /// The set of distinct labels used by the pattern.
    pub fn distinct_labels(&self) -> BTreeSet<Label> {
        self.nodes.iter().map(|n| n.label).collect()
    }

    /// The number of distinct labels, written `L_Q` in Section V.
    pub fn label_count(&self) -> usize {
        self.distinct_labels().len()
    }

    /// Total number of predicate atoms across all nodes (the `#p` of the
    /// experiment workload generator).
    pub fn predicate_count(&self) -> usize {
        self.nodes.iter().map(|n| n.predicate.len()).sum()
    }

    /// Pattern nodes carrying `label`.
    pub fn nodes_with_label(&self, label: Label) -> Vec<PatternNodeId> {
        self.nodes().filter(|&u| self.label(u) == label).collect()
    }

    /// True when the pattern is weakly connected (ignoring edge direction).
    /// The empty pattern is considered connected.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![PatternNodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for n in self.neighbors(u) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.nodes.len()
    }

    /// True when, for every node, its parents carry pairwise distinct labels
    /// (one of the special cases of Theorem 2 with a better complexity).
    pub fn parents_have_distinct_labels(&self) -> bool {
        self.nodes().all(|u| {
            let mut labels: Vec<Label> = self.parents(u).iter().map(|&p| self.label(p)).collect();
            let before = labels.len();
            labels.sort_unstable();
            labels.dedup();
            labels.len() == before
        })
    }
}

impl fmt::Display for Pattern {
    /// Renders a pattern in a compact multi-line form:
    ///
    /// ```text
    /// pattern (4 nodes, 3 edges)
    ///   u0: movie [true]
    ///   u1: year [x >= 2011 && x <= 2013]
    ///   u1 -> u0
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pattern ({} nodes, {} edges)",
            self.node_count(),
            self.edge_count()
        )?;
        for u in self.nodes() {
            writeln!(f, "  {}: {} [{}]", u, self.label_name(u), self.predicate(u))?;
        }
        for (s, d) in self.edges() {
            writeln!(f, "  {s} -> {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PatternBuilder;
    use crate::predicate::{Op, Predicate};

    /// The paper's running example Q0 (Fig. 1): actor/actress co-starring in
    /// an award-winning movie from 2011-2013, same country of origin.
    fn q0() -> Pattern {
        let mut b = PatternBuilder::new();
        let award = b.node("award", Predicate::always());
        let year = b.node("year", Predicate::range(2011, 2013));
        let movie = b.node("movie", Predicate::always());
        let actor = b.node("actor", Predicate::always());
        let actress = b.node("actress", Predicate::always());
        let country = b.node("country", Predicate::always());
        b.edge(movie, award);
        b.edge(movie, year);
        b.edge(movie, actor);
        b.edge(movie, actress);
        b.edge(actor, country);
        b.edge(actress, country);
        b.build()
    }

    #[test]
    fn q0_shape() {
        let q = q0();
        assert_eq!(q.node_count(), 6);
        assert_eq!(q.edge_count(), 6);
        assert_eq!(q.size(), 12);
        assert!(!q.is_empty());
        assert!(q.is_connected());
        assert_eq!(q.label_count(), 6);
        assert_eq!(q.distinct_labels().len(), 6);
    }

    #[test]
    fn adjacency_and_labels() {
        let q = q0();
        let movie = PatternNodeId(2);
        let award = PatternNodeId(0);
        let country = PatternNodeId(5);
        assert_eq!(q.label_name(movie), "movie");
        assert!(q.has_edge(movie, award));
        assert!(!q.has_edge(award, movie));
        assert_eq!(q.children(movie).len(), 4);
        assert_eq!(q.parents(movie).len(), 0);
        assert_eq!(q.parents(country).len(), 2);
        assert_eq!(q.degree(movie), 4);
        assert_eq!(q.neighbors(country).len(), 2);
        assert!(q.contains_node(movie));
        assert!(!q.contains_node(PatternNodeId(10)));
    }

    #[test]
    fn predicates_are_attached_to_the_right_node() {
        let q = q0();
        let year = PatternNodeId(1);
        assert_eq!(q.predicate(year).len(), 2);
        assert!(q.predicate(PatternNodeId(0)).is_empty());
        assert_eq!(q.predicate_count(), 2);
    }

    #[test]
    fn nodes_with_label_filters() {
        let q = q0();
        let actor_label = q.interner().get("actor").unwrap();
        assert_eq!(q.nodes_with_label(actor_label), vec![PatternNodeId(3)]);
        let missing = Label(999);
        assert!(q.nodes_with_label(missing).is_empty());
    }

    #[test]
    fn connectivity_detects_disconnected_patterns() {
        let mut b = PatternBuilder::new();
        let a = b.node("a", Predicate::always());
        let c = b.node("b", Predicate::always());
        b.node("c", Predicate::always());
        b.edge(a, c);
        let q = b.build();
        assert!(!q.is_connected());
    }

    #[test]
    fn parents_with_distinct_labels_special_case() {
        let q = q0();
        assert!(q.parents_have_distinct_labels());

        // Two parents with the same label ("person" twice) violate the case.
        let mut b = PatternBuilder::new();
        let p1 = b.node("person", Predicate::always());
        let p2 = b.node("person", Predicate::always());
        let city = b.node("city", Predicate::always());
        b.edge(p1, city);
        b.edge(p2, city);
        let q2 = b.build();
        assert!(!q2.parents_have_distinct_labels());
    }

    #[test]
    fn empty_pattern_is_connected_and_sized_zero() {
        let q = PatternBuilder::new().build();
        assert!(q.is_connected());
        assert_eq!(q.size(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn named_nodes_and_display() {
        let mut b = PatternBuilder::new();
        let u = b.named_node("m", "movie", Predicate::single(Op::Eq, "Argo"));
        let q = b.build();
        assert_eq!(q.node_name(u), Some("m"));
        let rendered = q.to_string();
        assert!(rendered.contains("movie"));
        assert!(rendered.contains("pattern (1 nodes, 0 edges)"));
        assert_eq!(u.to_string(), "u0");
    }
}
