//! # bgpq-pattern
//!
//! Graph pattern queries for the `bgpq` workspace.
//!
//! A pattern query `Q = (V_Q, E_Q, f_Q, g_Q)` is a directed graph whose nodes
//! carry a label `f_Q(u)` and a predicate `g_Q(u)` — a conjunction of atomic
//! comparisons `f_Q(u) op c` against constants (Section II of *Making Pattern
//! Queries Bounded in Big Graphs*, ICDE 2015). The same pattern object is
//! interpreted under two semantics by downstream crates:
//!
//! * **subgraph queries** — matches are subgraphs of `G` isomorphic to `Q`;
//! * **simulation queries** — the match is the maximum graph-simulation
//!   relation from `Q` to `G`.
//!
//! This crate provides the pattern representation ([`Pattern`],
//! [`PatternBuilder`], [`Predicate`]) and the random workload generator used
//! by the experiments ([`generator`]), which mirrors the paper's query
//! generator controlled by the number of nodes `#n`, edges `#e` and
//! predicates `#p`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod fingerprint;
pub mod generator;
pub mod parse;
pub mod pattern;
pub mod predicate;
pub mod rng;

pub use builder::PatternBuilder;
pub use fingerprint::PatternFingerprint;
pub use generator::{GeneratorConfig, WorkloadGenerator};
pub use parse::parse_pattern;
pub use pattern::{Pattern, PatternNodeId};
pub use predicate::{Atom, Op, Predicate};
pub use rng::DetRng;
