//! Canonical pattern fingerprints.
//!
//! A [`PatternFingerprint`] is a 128-bit digest of a pattern's canonical
//! form, used as a cache key by session-oriented evaluation layers (the plan
//! cache of `bgpq-engine`): two requests carrying structurally identical
//! patterns hash to the same fingerprint, so the second one can skip
//! re-planning entirely.
//!
//! The canonical form is deliberately *representation*-canonical, not
//! isomorphism-canonical (computing a graph-isomorphism-invariant code would
//! itself cost more than planning):
//!
//! * **label names**, not interned ids, are hashed — two patterns built
//!   against different [`LabelInterner`](bgpq_graph::LabelInterner)s agree as
//!   long as their nodes carry the same label strings;
//! * **edges are sorted** before hashing — insertion order never matters;
//! * node order, predicates (operator + constant, in conjunction order) and
//!   edge endpoints all contribute, since the query planner and matchers are
//!   sensitive to exactly these.
//!
//! Hashing is a hand-rolled 128-bit FNV-1a (the workspace is dependency
//! free), fully deterministic across runs, platforms and processes — unlike
//! `std`'s `DefaultHasher`, whose keys are randomized per process. With 128
//! bits, accidental collisions between distinct patterns are negligible for
//! any realistic cache population.

use crate::pattern::Pattern;
use crate::predicate::Op;
use bgpq_graph::Value;
use std::fmt;

/// The 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// The 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A deterministic 128-bit digest of a pattern's canonical form.
///
/// Obtained from [`Pattern::fingerprint`]; see the [module](self)
/// documentation for the exact invariance guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternFingerprint(pub u128);

impl fmt::Display for PatternFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming 128-bit FNV-1a hasher.
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Hashes a length-prefixed string so that adjacent fields cannot bleed
    /// into each other (`("ab", "c")` must differ from `("a", "bc")`).
    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Hashes a [`Value`] with a type tag. Floats hash by bit pattern, so
    /// `0.0` and `-0.0` are distinct — acceptable for a cache key (the worst
    /// case is one redundant planning run, never a wrong answer).
    fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.write(&[0]),
            Value::Bool(b) => self.write(&[1, *b as u8]),
            Value::Int(i) => {
                self.write(&[2]);
                self.write(&i.to_le_bytes());
            }
            Value::Float(x) => {
                self.write(&[3]);
                self.write(&x.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                self.write(&[4]);
                self.write_str(s);
            }
        }
    }
}

/// The operator's position in [`Op::ALL`], a stable discriminant.
fn op_tag(op: Op) -> u8 {
    Op::ALL.iter().position(|&o| o == op).unwrap_or(0) as u8
}

impl Pattern {
    /// Computes the canonical fingerprint of this pattern.
    ///
    /// The digest covers, in order: the node count; per node its label
    /// *name* and predicate atoms; the sorted edge list. It is deterministic
    /// across runs and independent of both edge insertion order and the
    /// interner's id assignment. Cost is `O(|Q| log |Q|)` — negligible next
    /// to planning, which is the work the fingerprint lets callers skip.
    ///
    /// ```
    /// use bgpq_pattern::{PatternBuilder, Predicate};
    ///
    /// let mut a = PatternBuilder::new();
    /// let m = a.node("movie", Predicate::always());
    /// let y = a.node("year", Predicate::range(2011, 2013));
    /// a.edge(y, m);
    /// let mut b = PatternBuilder::new();
    /// let m = b.node("movie", Predicate::always());
    /// let y = b.node("year", Predicate::range(2011, 2013));
    /// b.edge(y, m);
    /// assert_eq!(a.build().fingerprint(), b.build().fingerprint());
    /// ```
    pub fn fingerprint(&self) -> PatternFingerprint {
        let mut h = Fnv128::new();
        h.write_u64(self.node_count() as u64);
        for u in self.nodes() {
            h.write_str(&self.label_name(u));
            let atoms = self.predicate(u).atoms();
            h.write_u64(atoms.len() as u64);
            for atom in atoms {
                h.write(&[op_tag(atom.op)]);
                h.write_value(&atom.constant);
            }
        }
        let mut edges: Vec<_> = self.edges().collect();
        edges.sort_unstable();
        h.write_u64(edges.len() as u64);
        for (s, d) in edges {
            h.write_u32(s.0);
            h.write_u32(d.0);
        }
        PatternFingerprint(h.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PatternBuilder;
    use crate::predicate::Predicate;
    use bgpq_graph::LabelInterner;

    fn two_node(edge_first: bool) -> Pattern {
        let mut b = PatternBuilder::new();
        let m = b.node("movie", Predicate::always());
        let y = b.node("year", Predicate::range(2011, 2013));
        let a = b.node("award", Predicate::always());
        if edge_first {
            b.edge(y, m);
            b.edge(a, m);
        } else {
            b.edge(a, m);
            b.edge(y, m);
        }
        b.build()
    }

    #[test]
    fn identical_patterns_agree() {
        assert_eq!(two_node(true).fingerprint(), two_node(true).fingerprint());
    }

    #[test]
    fn edge_insertion_order_is_irrelevant() {
        assert_eq!(two_node(true).fingerprint(), two_node(false).fingerprint());
    }

    #[test]
    fn interner_id_assignment_is_irrelevant() {
        // Pre-populate an interner with unrelated labels so ids differ.
        let mut interner = LabelInterner::new();
        for name in ["zebra", "quark", "movie", "year", "award"] {
            interner.intern(name);
        }
        let mut b = PatternBuilder::with_interner(interner);
        let m = b.node("movie", Predicate::always());
        let y = b.node("year", Predicate::range(2011, 2013));
        let a = b.node("award", Predicate::always());
        b.edge(y, m);
        b.edge(a, m);
        assert_eq!(b.build().fingerprint(), two_node(true).fingerprint());
    }

    #[test]
    fn labels_predicates_and_edges_all_matter() {
        let base = two_node(true).fingerprint();

        let mut b = PatternBuilder::new();
        let m = b.node("movie", Predicate::always());
        let y = b.node("year", Predicate::range(2011, 2014)); // different range
        let a = b.node("award", Predicate::always());
        b.edge(y, m);
        b.edge(a, m);
        assert_ne!(b.build().fingerprint(), base);

        let mut b = PatternBuilder::new();
        let m = b.node("movie", Predicate::always());
        let y = b.node("year", Predicate::range(2011, 2013));
        let a = b.node("genre", Predicate::always()); // different label
        b.edge(y, m);
        b.edge(a, m);
        assert_ne!(b.build().fingerprint(), base);

        let mut b = PatternBuilder::new();
        let m = b.node("movie", Predicate::always());
        let y = b.node("year", Predicate::range(2011, 2013));
        let a = b.node("award", Predicate::always());
        b.edge(m, y); // reversed edge direction
        b.edge(a, m);
        assert_ne!(b.build().fingerprint(), base);
    }

    #[test]
    fn node_and_edge_boundaries_do_not_bleed() {
        // Same concatenated label bytes, different node split.
        let mut a = PatternBuilder::new();
        a.node("ab", Predicate::always());
        a.node("c", Predicate::always());
        let mut b = PatternBuilder::new();
        b.node("a", Predicate::always());
        b.node("bc", Predicate::always());
        assert_ne!(a.build().fingerprint(), b.build().fingerprint());
    }

    #[test]
    fn empty_pattern_is_stable() {
        let a = PatternBuilder::new().build().fingerprint();
        let b = PatternBuilder::new().build().fingerprint();
        assert_eq!(a, b);
        assert_eq!(a.to_string().len(), 32);
    }

    #[test]
    fn value_types_are_tagged() {
        let mut a = PatternBuilder::new();
        a.node("x", Predicate::single(Op::Eq, 1i64));
        let mut b = PatternBuilder::new();
        b.node("x", Predicate::single(Op::Eq, 1.0f64));
        assert_ne!(a.build().fingerprint(), b.build().fingerprint());
    }
}
