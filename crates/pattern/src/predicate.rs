//! Pattern node predicates.
//!
//! The predicate `g_Q(u)` of a pattern node is a conjunction of atomic
//! formulas `f_Q(u) op c` where `c` is a constant and `op` is one of
//! `=, ≠, <, ≤, >, ≥`. Evaluating `g_Q(ν(v))` substitutes the data node's
//! attribute value for `f_Q(u)` in every atom.

use bgpq_graph::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator of an atomic predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Equality `=`.
    Eq,
    /// Inequality `≠`.
    Ne,
    /// Strictly less `<`.
    Lt,
    /// Less or equal `≤`.
    Le,
    /// Strictly greater `>`.
    Gt,
    /// Greater or equal `≥`.
    Ge,
}

impl Op {
    /// All operators, in a stable order (useful for random generation).
    pub const ALL: [Op; 6] = [Op::Eq, Op::Ne, Op::Lt, Op::Le, Op::Gt, Op::Ge];

    /// Applies the operator to an already-computed ordering.
    fn holds(self, ord: Ordering) -> bool {
        match self {
            Op::Eq => ord == Ordering::Equal,
            Op::Ne => ord != Ordering::Equal,
            Op::Lt => ord == Ordering::Less,
            Op::Le => ord != Ordering::Greater,
            Op::Gt => ord == Ordering::Greater,
            Op::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A single comparison `value op constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// The comparison operator.
    pub op: Op,
    /// The constant on the right-hand side.
    pub constant: Value,
}

impl Atom {
    /// Creates an atom.
    pub fn new(op: Op, constant: impl Into<Value>) -> Self {
        Atom {
            op,
            constant: constant.into(),
        }
    }

    /// Evaluates the atom against a data node's attribute value.
    ///
    /// Comparisons across incomparable types evaluate to `false` — except for
    /// `≠`, which holds precisely when the values are not equal.
    pub fn eval(&self, value: &Value) -> bool {
        match value.partial_cmp_value(&self.constant) {
            Some(ord) => self.op.holds(ord),
            None => self.op == Op::Ne,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x {} {}", self.op, self.constant)
    }
}

/// A conjunction of [`Atom`]s; the empty conjunction is `true`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    atoms: Vec<Atom>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn always() -> Self {
        Predicate::default()
    }

    /// A predicate made of the given atoms.
    pub fn conjunction(atoms: impl IntoIterator<Item = Atom>) -> Self {
        Predicate {
            atoms: atoms.into_iter().collect(),
        }
    }

    /// Shortcut for a single-atom predicate.
    pub fn single(op: Op, constant: impl Into<Value>) -> Self {
        Predicate {
            atoms: vec![Atom::new(op, constant)],
        }
    }

    /// Shortcut for a closed range predicate `lo ≤ x ≤ hi`.
    pub fn range(lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Predicate {
            atoms: vec![Atom::new(Op::Ge, lo), Atom::new(Op::Le, hi)],
        }
    }

    /// Adds an atom to the conjunction.
    pub fn and(mut self, op: Op, constant: impl Into<Value>) -> Self {
        self.atoms.push(Atom::new(op, constant));
        self
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms (the `#p` contribution of this node).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when the predicate is the empty conjunction.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates the conjunction against a data node's attribute value.
    pub fn eval(&self, value: &Value) -> bool {
        self.atoms.iter().all(|atom| atom.eval(value))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        let parts: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join(" && "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_on_integers() {
        let v = Value::Int(2012);
        assert!(Atom::new(Op::Eq, 2012).eval(&v));
        assert!(Atom::new(Op::Ne, 2011).eval(&v));
        assert!(Atom::new(Op::Lt, 2013).eval(&v));
        assert!(Atom::new(Op::Le, 2012).eval(&v));
        assert!(Atom::new(Op::Gt, 2011).eval(&v));
        assert!(Atom::new(Op::Ge, 2012).eval(&v));
        assert!(!Atom::new(Op::Gt, 2012).eval(&v));
        assert!(!Atom::new(Op::Eq, 2011).eval(&v));
    }

    #[test]
    fn operators_on_strings_use_lexicographic_order() {
        let v = Value::str("canada");
        assert!(Atom::new(Op::Lt, "france").eval(&v));
        assert!(Atom::new(Op::Eq, "canada").eval(&v));
        assert!(!Atom::new(Op::Gt, "france").eval(&v));
    }

    #[test]
    fn incomparable_types_fail_except_not_equal() {
        let v = Value::str("x");
        assert!(!Atom::new(Op::Eq, 3).eval(&v));
        assert!(!Atom::new(Op::Lt, 3).eval(&v));
        assert!(Atom::new(Op::Ne, 3).eval(&v));
        let null = Value::Null;
        assert!(!Atom::new(Op::Ge, 0).eval(&null));
    }

    #[test]
    fn empty_conjunction_is_true() {
        assert!(Predicate::always().eval(&Value::Null));
        assert!(Predicate::always().eval(&Value::Int(5)));
        assert!(Predicate::always().is_empty());
        assert_eq!(Predicate::always().to_string(), "true");
    }

    #[test]
    fn range_predicate_mirrors_paper_example() {
        // g_Q(year) = year >= 2011 && year <= 2013 (pattern Q0 of Fig. 1).
        let p = Predicate::range(2011, 2013);
        assert!(p.eval(&Value::Int(2011)));
        assert!(p.eval(&Value::Int(2012)));
        assert!(p.eval(&Value::Int(2013)));
        assert!(!p.eval(&Value::Int(2010)));
        assert!(!p.eval(&Value::Int(2014)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn conjunction_requires_all_atoms() {
        let p = Predicate::single(Op::Ge, 10)
            .and(Op::Ne, 15)
            .and(Op::Le, 20);
        assert!(p.eval(&Value::Int(12)));
        assert!(!p.eval(&Value::Int(15)));
        assert!(!p.eval(&Value::Int(25)));
        assert_eq!(p.atoms().len(), 3);
    }

    #[test]
    fn float_and_int_mix() {
        let p = Predicate::single(Op::Gt, 7.5);
        assert!(p.eval(&Value::Int(8)));
        assert!(!p.eval(&Value::Int(7)));
        assert!(p.eval(&Value::Float(7.6)));
    }

    #[test]
    fn display_renders_conjunction() {
        let p = Predicate::range(1, 2);
        assert_eq!(p.to_string(), "x >= 1 && x <= 2");
        assert_eq!(Op::Ne.to_string(), "!=");
        assert_eq!(Atom::new(Op::Le, 3).to_string(), "x <= 3");
    }

    #[test]
    fn all_ops_listed_once() {
        assert_eq!(Op::ALL.len(), 6);
        let mut unique = Op::ALL.to_vec();
        unique.dedup();
        assert_eq!(unique.len(), 6);
    }
}
