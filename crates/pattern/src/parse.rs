//! A small textual syntax for pattern queries.
//!
//! Patterns built in code use [`PatternBuilder`]; tools (the `bgpq` CLI, test
//! fixtures, saved workloads) need a file format. The syntax is line
//! oriented:
//!
//! ```text
//! # Oscar-winning movies of 2011-2013 and their actors (Fig. 1 of the paper)
//! node m: movie
//! node y: year  where value >= 2011 && value <= 2013
//! node a: actor
//! edge y -> m
//! edge m -> a
//! ```
//!
//! * `node <name>: <label> [where <atom> && <atom> ...]` declares a pattern
//!   node. The name is local to the file (used by `edge` lines and carried
//!   into [`Pattern::node_name`] for diagnostics); the label is interned.
//! * An atom is `[value] <op> <literal>` with `op` one of
//!   `= == != < <= > >=` and a literal that is an integer, a float, `true`,
//!   `false`, a `"quoted string"` (escapes `\"`, `\\`, `\n`, `\r`, `\t`) or
//!   a bare word (taken as a string).
//! * `edge <a> -> <b> [-> <c> ...]` declares the edges of a path through
//!   previously declared nodes.
//! * Blank lines and lines starting with `#` are ignored.
//!
//! Malformed input is reported with 1-based line numbers via
//! [`GraphError::Parse`], the same diagnostic shape the dataset loaders in
//! `bgpq-graph::io` use.

use crate::builder::PatternBuilder;
use crate::pattern::Pattern;
use crate::predicate::{Atom, Op, Predicate};
use bgpq_graph::{GraphError, LabelInterner, Value};
use std::collections::HashMap;

/// Parses the textual pattern syntax into a [`Pattern`].
///
/// Build against the interner of the graph the pattern will be evaluated on
/// (`graph.interner().clone()`) so label ids line up — the same contract as
/// [`PatternBuilder::with_interner`].
///
/// # Examples
///
/// ```
/// use bgpq_pattern::parse::parse_pattern;
/// use bgpq_graph::LabelInterner;
///
/// let text = "
/// node m: movie
/// node y: year where value >= 2011 && value <= 2013
/// edge y -> m
/// ";
/// let q = parse_pattern(text, LabelInterner::new()).unwrap();
/// assert_eq!(q.node_count(), 2);
/// assert_eq!(q.edge_count(), 1);
/// assert_eq!(q.node_name(bgpq_pattern::PatternNodeId(0)), Some("m"));
/// ```
pub fn parse_pattern(text: &str, interner: LabelInterner) -> Result<Pattern, GraphError> {
    let mut builder = PatternBuilder::with_interner(interner);
    let mut names: HashMap<String, crate::pattern::PatternNodeId> = HashMap::new();
    let mut line_count = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let line_num = lineno + 1;
        line_count = line_num;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // The keyword is any-whitespace-delimited (tab-separated files work).
        let (keyword, rest) = match trimmed.find(char::is_whitespace) {
            Some(i) => (&trimmed[..i], trimmed[i..].trim_start()),
            None => (trimmed, ""),
        };
        if keyword == "node" {
            let (name, label, predicate) = parse_node_line(rest, line_num)?;
            if names.contains_key(&name) {
                return Err(parse_error(
                    line_num,
                    format!("pattern node {name:?} declared twice"),
                ));
            }
            let id = builder.named_node(&name, &label, predicate);
            names.insert(name, id);
        } else if keyword == "edge" {
            let hops: Vec<&str> = rest.split("->").map(str::trim).collect();
            if hops.len() < 2 {
                return Err(parse_error(
                    line_num,
                    "edge line needs at least `a -> b`".into(),
                ));
            }
            let resolve = |name: &str| {
                names.get(name).copied().ok_or_else(|| {
                    parse_error(
                        line_num,
                        format!("edge references undeclared node {name:?}"),
                    )
                })
            };
            let mut prev = resolve(hops[0])?;
            for hop in &hops[1..] {
                let next = resolve(hop)?;
                builder.edge(prev, next);
                prev = next;
            }
        } else {
            return Err(parse_error(
                line_num,
                format!("unknown directive {keyword:?} (expected `node` or `edge`)"),
            ));
        }
    }

    if builder.node_count() == 0 {
        return Err(parse_error(
            line_count.max(1),
            "pattern declares no nodes".into(),
        ));
    }
    Ok(builder.build())
}

/// `<name>: <label> [where <atoms>]` (after the `node ` keyword).
fn parse_node_line(rest: &str, line: usize) -> Result<(String, String, Predicate), GraphError> {
    let Some((name, after_colon)) = rest.split_once(':') else {
        return Err(parse_error(
            line,
            "node line needs `name: label` (missing ':')".into(),
        ));
    };
    let name = name.trim();
    if name.is_empty() || name.split_whitespace().count() != 1 {
        return Err(parse_error(line, format!("invalid node name {:?}", name)));
    }
    let after_colon = after_colon.trim();
    // The label is one token; whatever follows must be a `where` clause
    // (any whitespace separates the tokens, so tab-separated files work).
    let (label, remainder) = match after_colon.find(char::is_whitespace) {
        None => (after_colon, ""),
        Some(i) => (&after_colon[..i], after_colon[i..].trim_start()),
    };
    if label.is_empty() {
        return Err(parse_error(
            line,
            format!("invalid node label {after_colon:?} (one bare token expected)"),
        ));
    }
    if label == "where" {
        return Err(parse_error(line, "missing label before `where`".into()));
    }
    let where_clause = if remainder.is_empty() {
        None
    } else {
        let (keyword, clause) = match remainder.find(char::is_whitespace) {
            None => (remainder, ""),
            Some(i) => (&remainder[..i], remainder[i..].trim_start()),
        };
        if keyword != "where" {
            return Err(parse_error(
                line,
                format!("unexpected text {remainder:?} after label (expected `where ...`)"),
            ));
        }
        Some(clause)
    };
    let predicate = match where_clause {
        None => Predicate::always(),
        Some(clause) => {
            let mut atoms = Vec::new();
            for part in split_conjunction(clause) {
                atoms.push(parse_atom(part.trim(), line)?);
            }
            Predicate::conjunction(atoms)
        }
    };
    Ok((name.to_string(), label.to_string(), predicate))
}

/// Splits a `where` clause on `&&`, ignoring `&&` inside quoted strings.
fn split_conjunction(clause: &str) -> Vec<&str> {
    let bytes = clause.as_bytes();
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if in_string {
            if escaped {
                escaped = false;
            } else if c == b'\\' {
                escaped = true;
            } else if c == b'"' {
                in_string = false;
            }
        } else if c == b'"' {
            in_string = true;
        } else if c == b'&' && i + 1 < bytes.len() && bytes[i + 1] == b'&' {
            parts.push(&clause[start..i]);
            i += 2;
            start = i;
            continue;
        }
        i += 1;
    }
    parts.push(&clause[start..]);
    parts
}

/// `[value] <op> <literal>`.
fn parse_atom(text: &str, line: usize) -> Result<Atom, GraphError> {
    if text.is_empty() {
        return Err(parse_error(line, "empty predicate atom".into()));
    }
    let text = text.strip_prefix("value").map_or(text, str::trim_start);
    let (op, rest) = if let Some(r) = text.strip_prefix("==") {
        (Op::Eq, r)
    } else if let Some(r) = text.strip_prefix("!=") {
        (Op::Ne, r)
    } else if let Some(r) = text.strip_prefix("<=") {
        (Op::Le, r)
    } else if let Some(r) = text.strip_prefix(">=") {
        (Op::Ge, r)
    } else if let Some(r) = text.strip_prefix('=') {
        (Op::Eq, r)
    } else if let Some(r) = text.strip_prefix('<') {
        (Op::Lt, r)
    } else if let Some(r) = text.strip_prefix('>') {
        (Op::Gt, r)
    } else {
        return Err(parse_error(
            line,
            format!("expected a comparison operator in atom {text:?}"),
        ));
    };
    let literal = parse_literal(rest.trim(), line)?;
    Ok(Atom::new(op, literal))
}

fn parse_literal(raw: &str, line: usize) -> Result<Value, GraphError> {
    if raw.is_empty() {
        return Err(parse_error(line, "missing literal after operator".into()));
    }
    if let Some(inner) = raw.strip_prefix('"') {
        // Scan for the closing quote with escape awareness, so a literal
        // like `"abc\"` is rejected as unterminated (its quote is escaped)
        // and `"a" b"` as trailing garbage, instead of silently yielding a
        // wrong constant.
        let mut escaped = false;
        let mut closing = None;
        for (i, c) in inner.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                closing = Some(i);
                break;
            }
        }
        let Some(end) = closing else {
            return Err(parse_error(
                line,
                format!("unterminated string literal {raw:?}"),
            ));
        };
        if !inner[end + 1..].trim().is_empty() {
            return Err(parse_error(
                line,
                format!("unexpected text after string literal {raw:?}"),
            ));
        }
        return Ok(Value::Str(unescape(&inner[..end])));
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    // Only tokens that look numeric are parsed as numbers; this keeps
    // barewords like `inf` or `nan` strings, as the module doc promises.
    let numeric_shape = raw
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.'));
    if numeric_shape {
        if let Ok(i) = raw.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(f) = raw.parse::<f64>() {
            return Ok(Value::Float(f));
        }
    }
    if raw.split_whitespace().count() == 1 {
        return Ok(Value::str(raw));
    }
    Err(parse_error(
        line,
        format!("invalid literal {raw:?} (quote strings containing spaces)"),
    ))
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

fn parse_error(line: usize, message: String) -> GraphError {
    GraphError::Parse { line, message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternNodeId;

    #[test]
    fn parses_the_paper_example() {
        let text = "
# Q0 of Fig. 1
node m: movie
node y: year where value >= 2011 && value <= 2013
node a: actor
edge y -> m
edge m -> a
";
        let q = parse_pattern(text, LabelInterner::new()).unwrap();
        assert_eq!(q.node_count(), 3);
        assert_eq!(q.edge_count(), 2);
        let y = PatternNodeId(1);
        assert_eq!(q.node_name(y), Some("y"));
        assert_eq!(q.label_name(y), "year");
        assert_eq!(q.predicate(y).len(), 2);
        assert!(q.predicate(y).eval(&Value::Int(2012)));
        assert!(!q.predicate(y).eval(&Value::Int(2010)));
    }

    #[test]
    fn edge_chains_expand_to_paths() {
        let text = "node a: x\nnode b: y\nnode c: z\nedge a -> b -> c\n";
        let q = parse_pattern(text, LabelInterner::new()).unwrap();
        assert_eq!(q.edge_count(), 2);
        assert_eq!(q.children(PatternNodeId(0)), &[PatternNodeId(1)]);
        assert_eq!(q.children(PatternNodeId(1)), &[PatternNodeId(2)]);
    }

    #[test]
    fn atoms_support_all_operators_and_literal_types() {
        let text = concat!(
            "node a: t where = 1\n",
            "node b: t where == 2\n",
            "node c: t where != \"no && yes\"\n",
            "node d: t where value < 1.5\n",
            "node e: t where <= true\n",
            "node f: t where > bareword\n",
            "node g: t where >= -3\n",
        );
        let q = parse_pattern(text, LabelInterner::new()).unwrap();
        let atom = |i: u32| q.predicate(PatternNodeId(i)).atoms()[0].clone();
        assert_eq!(atom(0), Atom::new(Op::Eq, 1));
        assert_eq!(atom(1), Atom::new(Op::Eq, 2));
        assert_eq!(atom(2), Atom::new(Op::Ne, "no && yes"));
        assert_eq!(atom(3), Atom::new(Op::Lt, 1.5));
        assert_eq!(atom(4), Atom::new(Op::Le, true));
        assert_eq!(atom(5), Atom::new(Op::Gt, "bareword"));
        assert_eq!(atom(6), Atom::new(Op::Ge, -3));
    }

    #[test]
    fn string_escapes_in_literals() {
        let text = "node a: t where = \"line\\nbreak \\\"quoted\\\"\"\n";
        let q = parse_pattern(text, LabelInterner::new()).unwrap();
        assert_eq!(
            q.predicate(PatternNodeId(0)).atoms()[0].constant,
            Value::str("line\nbreak \"quoted\"")
        );
        // A trailing backslash is expressible with an escaped backslash.
        let text = "node a: t where = \"path\\\\\"\n";
        let q = parse_pattern(text, LabelInterner::new()).unwrap();
        assert_eq!(
            q.predicate(PatternNodeId(0)).atoms()[0].constant,
            Value::str("path\\")
        );
    }

    #[test]
    fn malformed_string_literals_are_rejected() {
        // The closing quote is escaped: the literal never terminates.
        let err = parse_pattern("node a: t where = \"abc\\\"\n", LabelInterner::new()).unwrap_err();
        assert!(err.to_string().contains("unterminated"), "got {err}");
        // Text after the closing quote is garbage, not part of the value.
        let err = parse_pattern("node a: t where = \"a\" b\"\n", LabelInterner::new()).unwrap_err();
        assert!(
            err.to_string().contains("after string literal"),
            "got {err}"
        );
    }

    #[test]
    fn non_numeric_barewords_stay_strings() {
        // `inf` / `nan` would parse as f64 but the doc promises barewords
        // are strings; a Float(NaN) constant would silently match nothing.
        for word in ["inf", "nan", "NaN", "infinity"] {
            let text = format!("node a: t where = {word}\n");
            let q = parse_pattern(&text, LabelInterner::new()).unwrap();
            assert_eq!(
                q.predicate(PatternNodeId(0)).atoms()[0].constant,
                Value::str(word),
                "bareword {word:?} must stay a string"
            );
        }
    }

    #[test]
    fn tab_separated_pattern_files_parse() {
        let text = "node\tm:\tmovie\nnode\ty:\tyear\twhere\tvalue >= 2011\nedge\ty -> m\n";
        let q = parse_pattern(text, LabelInterner::new()).unwrap();
        assert_eq!(q.node_count(), 2);
        assert_eq!(q.edge_count(), 1);
        assert_eq!(q.predicate(PatternNodeId(1)).len(), 1);
    }

    #[test]
    fn interner_sharing_aligns_label_ids() {
        let mut interner = LabelInterner::new();
        let movie = interner.intern("movie");
        let q = parse_pattern("node m: movie\n", interner).unwrap();
        assert_eq!(q.label(PatternNodeId(0)), movie);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("node a movie\n", 1, "missing ':'"),
            ("node a:\n", 1, "invalid node label"),
            ("node : movie\n", 1, "invalid node name"),
            ("node a: movie\nnode a: year\n", 2, "declared twice"),
            ("node a: movie\nedge a\n", 2, "at least"),
            ("node a: movie\nedge a -> z\n", 2, "undeclared node"),
            ("node a: movie\nvertex b: x\n", 2, "unknown directive"),
            ("node a: movie where\n", 1, "empty predicate atom"),
            ("node a: movie extra\n", 1, "unexpected text"),
            ("node a: m where value 5\n", 1, "comparison operator"),
            ("node a: m where =\n", 1, "missing literal"),
            ("node a: m where = \"open\n", 1, "unterminated string"),
            ("node a: m where = two words\n", 1, "invalid literal"),
            ("node a: m where = 1 && \n", 1, "empty predicate atom"),
            ("# only comments\n", 1, "no nodes"),
        ];
        for (text, line, needle) in cases {
            let err = parse_pattern(text, LabelInterner::new()).unwrap_err();
            match err {
                GraphError::Parse {
                    line: l,
                    ref message,
                } => {
                    assert_eq!(l, *line, "wrong line for {text:?}: {message}");
                    assert!(
                        message.contains(needle),
                        "expected {needle:?} in {message:?} for {text:?}"
                    );
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(parse_pattern("", LabelInterner::new()).is_err());
    }
}
