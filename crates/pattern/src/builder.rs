//! Incremental construction of [`Pattern`]s.

use crate::pattern::{Pattern, PatternNodeData, PatternNodeId};
use crate::predicate::Predicate;
use bgpq_graph::{Label, LabelInterner};
use std::collections::BTreeSet;

/// Builder for [`Pattern`].
///
/// ```
/// use bgpq_pattern::{PatternBuilder, Predicate};
///
/// let mut b = PatternBuilder::new();
/// let movie = b.node("movie", Predicate::always());
/// let year = b.node("year", Predicate::range(2011, 2013));
/// b.edge(movie, year);
/// let q = b.build();
/// assert_eq!(q.node_count(), 2);
/// assert_eq!(q.edge_count(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PatternBuilder {
    interner: LabelInterner,
    nodes: Vec<PatternNodeData>,
    edges: Vec<(PatternNodeId, PatternNodeId)>,
    edge_set: BTreeSet<(PatternNodeId, PatternNodeId)>,
}

impl PatternBuilder {
    /// Creates a builder with a fresh label interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that shares label ids with an existing interner
    /// (typically the one of the data graph the pattern will be evaluated
    /// against, so label ids line up).
    pub fn with_interner(interner: LabelInterner) -> Self {
        PatternBuilder {
            interner,
            ..Self::default()
        }
    }

    /// The interner populated so far.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Adds a pattern node with a label given by name.
    pub fn node(&mut self, label_name: &str, predicate: Predicate) -> PatternNodeId {
        let label = self.interner.intern(label_name);
        self.node_labeled(label, predicate)
    }

    /// Adds a named pattern node (the name is only used for diagnostics).
    pub fn named_node(
        &mut self,
        name: &str,
        label_name: &str,
        predicate: Predicate,
    ) -> PatternNodeId {
        let label = self.interner.intern(label_name);
        let id = PatternNodeId(self.nodes.len() as u32);
        self.nodes.push(PatternNodeData {
            label,
            predicate,
            name: Some(name.to_string()),
        });
        id
    }

    /// Adds a pattern node with an already-interned label.
    pub fn node_labeled(&mut self, label: Label, predicate: Predicate) -> PatternNodeId {
        let id = PatternNodeId(self.nodes.len() as u32);
        self.nodes.push(PatternNodeData {
            label,
            predicate,
            name: None,
        });
        id
    }

    /// Adds a directed pattern edge; duplicates and out-of-range endpoints
    /// are ignored silently (the generator relies on this to stay simple).
    pub fn edge(&mut self, src: PatternNodeId, dst: PatternNodeId) -> &mut Self {
        let n = self.nodes.len() as u32;
        if src.0 < n && dst.0 < n && self.edge_set.insert((src, dst)) {
            self.edges.push((src, dst));
        }
        self
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True when the edge has already been added.
    pub fn has_edge(&self, src: PatternNodeId, dst: PatternNodeId) -> bool {
        self.edge_set.contains(&(src, dst))
    }

    /// Finalizes the pattern.
    pub fn build(self) -> Pattern {
        let n = self.nodes.len();
        let mut out: Vec<Vec<PatternNodeId>> = vec![Vec::new(); n];
        let mut inc: Vec<Vec<PatternNodeId>> = vec![Vec::new(); n];
        for &(src, dst) in &self.edges {
            out[src.index()].push(dst);
            inc[dst.index()].push(src);
        }
        for list in out.iter_mut().chain(inc.iter_mut()) {
            list.sort_unstable();
        }
        Pattern {
            interner: self.interner,
            nodes: self.nodes,
            out,
            inc,
            edges: self.edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Op;

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut b = PatternBuilder::new();
        let a = b.node("a", Predicate::always());
        let c = b.node("b", Predicate::always());
        b.edge(a, c);
        b.edge(a, c);
        assert_eq!(b.edge_count(), 1);
        assert!(b.has_edge(a, c));
        assert!(!b.has_edge(c, a));
        let q = b.build();
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn out_of_range_edges_are_ignored() {
        let mut b = PatternBuilder::new();
        let a = b.node("a", Predicate::always());
        b.edge(a, PatternNodeId(9));
        assert_eq!(b.edge_count(), 0);
    }

    #[test]
    fn with_interner_lines_up_label_ids() {
        let mut interner = LabelInterner::new();
        let movie = interner.intern("movie");
        interner.intern("actor");
        let mut b = PatternBuilder::with_interner(interner);
        let m = b.node("movie", Predicate::always());
        assert_eq!(b.interner().get("movie"), Some(movie));
        let q = b.build();
        assert_eq!(q.label(m), movie);
    }

    #[test]
    fn node_labeled_and_counts() {
        let b = PatternBuilder::new();
        let l = b.interner().get("x");
        assert_eq!(l, None);
        let lbl = Label(0);
        let mut b2 = PatternBuilder::new();
        b2.node("x", Predicate::always());
        let u = b2.node_labeled(lbl, Predicate::single(Op::Gt, 3));
        assert_eq!(b2.node_count(), 2);
        let q = b2.build();
        assert_eq!(q.label(u), lbl);
        assert_eq!(q.predicate(u).len(), 1);
    }
}
