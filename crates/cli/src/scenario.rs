//! Built-in scenario generators: diverse synthetic workloads.
//!
//! The paper evaluates bounded evaluation on IMDb, DBpedia and WebBase —
//! graphs with very different label schemas and degree shapes. The three
//! scenarios here reproduce that diversity without shipping gigabytes:
//!
//! * [`Scenario::Social`] — users, posts, tags, cities. Follower edges use
//!   preferential attachment, so user degree is heavily skewed (hubs), while
//!   `user → city` is a functional dependency (bound 1).
//! * [`Scenario::Citation`] — papers (with year values), authors, venues.
//!   Citations only point to older papers (a DAG) with a small uniform
//!   out-degree; `paper → venue` is an FD; venues and years are
//!   low-cardinality labels, the shape type-1 constraints like.
//! * [`Scenario::ProductCatalog`] — products (float prices), brands, a
//!   category tree, customers and reviews (integer ratings). Review
//!   in-degree per product is skewed; `product → brand` and
//!   `review → product` are FDs.
//!
//! A generator emits a flat [`Record`] stream. Both consumption paths share
//! it: [`Dataset::build_graph`] feeds the records straight into a
//! [`GraphBuilder`], while [`Dataset::to_text`] / [`Dataset::to_jsonl`]
//! render the records in the interchange formats that the `bgpq-graph::io`
//! loaders read back. The loader-vs-generator equivalence tests assert the
//! two paths produce identical graphs, so datasets written by `bgpq gen`
//! and graphs built in memory can never drift apart.

use bgpq_engine::{GraphBuilder, NodeId};
use bgpq_graph::io::{format_value, json::json_float_token, json::write_json_string};
use bgpq_graph::{Graph, Value};
use bgpq_pattern::DetRng;
use std::fmt;

/// The built-in dataset scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Social network: skewed follower degrees, `user → city` FD.
    Social,
    /// Citation network: year-ordered citation DAG, `paper → venue` FD.
    Citation,
    /// Product catalog: category tree, float prices, review ratings.
    ProductCatalog,
}

impl Scenario {
    /// All scenarios, in a stable order.
    pub const ALL: [Scenario; 3] = [
        Scenario::Social,
        Scenario::Citation,
        Scenario::ProductCatalog,
    ];

    /// The CLI name of the scenario.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Social => "social",
            Scenario::Citation => "citation",
            Scenario::ProductCatalog => "products",
        }
    }

    /// Resolves a CLI name.
    pub fn from_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// One-line description for `bgpq gen --help`-style listings.
    pub fn description(self) -> &'static str {
        match self {
            Scenario::Social => "users/posts/tags/cities; preferential-attachment follower graph",
            Scenario::Citation => "papers/authors/venues; year-ordered citation DAG",
            Scenario::ProductCatalog => {
                "products/brands/categories/customers/reviews; category tree"
            }
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs of a scenario generation run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// The scenario's primary population (users, papers, products). The
    /// other populations are derived from it.
    pub scale: usize,
    /// Seed of the deterministic generator: same seed, same dataset.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            scale: 100,
            seed: 42,
        }
    }
}

/// One record of a generated dataset, in the vocabulary of the JSONL
/// loader: a labeled, valued node or a directed edge between external ids.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A node declaration.
    Node {
        /// External id (contiguous from 0 in generated datasets).
        id: u64,
        /// Label name.
        label: &'static str,
        /// Attribute value.
        value: Value,
    },
    /// A directed edge between two declared nodes.
    Edge {
        /// Source external id.
        src: u64,
        /// Destination external id.
        dst: u64,
    },
}

impl Record {
    /// Appends this record's `n`/`e` text line (the shape
    /// `bgpq-graph::io::read_graph` parses) to `out`.
    pub fn render_text(&self, out: &mut String) {
        match self {
            Record::Node { id, label, value } => match format_value(value) {
                None => out.push_str(&format!("n\t{id}\t{label}\n")),
                Some(token) => out.push_str(&format!("n\t{id}\t{label}\t{token}\n")),
            },
            Record::Edge { src, dst } => out.push_str(&format!("e\t{src}\t{dst}\n")),
        }
    }

    /// Appends this record's JSON line (the shape
    /// `bgpq-graph::io::read_jsonl` parses) to `out`.
    pub fn render_jsonl(&self, out: &mut String) {
        match self {
            Record::Node { id, label, value } => {
                out.push_str(&format!("{{\"type\":\"node\",\"id\":{id},\"label\":"));
                write_json_string(out, label);
                match value {
                    Value::Null => {}
                    Value::Bool(b) => out.push_str(&format!(",\"value\":{b}")),
                    Value::Int(i) => out.push_str(&format!(",\"value\":{i}")),
                    Value::Float(x) => {
                        let token =
                            json_float_token(*x).expect("generators only produce finite floats");
                        out.push_str(",\"value\":");
                        out.push_str(&token);
                    }
                    Value::Str(s) => {
                        out.push_str(",\"value\":");
                        write_json_string(out, s);
                    }
                }
                out.push_str("}\n");
            }
            Record::Edge { src, dst } => {
                out.push_str(&format!(
                    "{{\"type\":\"edge\",\"src\":{src},\"dst\":{dst}}}\n"
                ));
            }
        }
    }
}

/// The `# bgpq scenario dataset: ...` comment line text-format outputs
/// start with (loaders skip `#` lines).
pub fn text_header(scenario: Scenario, config: &ScenarioConfig) -> String {
    format!(
        "# bgpq scenario dataset: {} (scale {}, seed {})\n",
        scenario, config.scale, config.seed
    )
}

/// A generated dataset: the scenario it came from and its record stream.
#[derive(Debug, Clone)]
pub struct Dataset {
    scenario: Scenario,
    config: ScenarioConfig,
    records: Vec<Record>,
}

impl Dataset {
    /// The scenario this dataset was generated from.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The generation knobs used.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The raw record stream.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Builds the graph directly through [`GraphBuilder`] — the synthetic
    /// path. Node records map to [`NodeId`]s in record order, which is the
    /// same order the loaders assign, so this graph is identical to loading
    /// [`Dataset::to_text`] or [`Dataset::to_jsonl`].
    pub fn build_graph(&self) -> Graph {
        let nodes = self
            .records
            .iter()
            .filter(|r| matches!(r, Record::Node { .. }))
            .count();
        let mut builder = GraphBuilder::with_capacity(nodes, self.records.len() - nodes);
        let mut ids: std::collections::HashMap<u64, NodeId> =
            std::collections::HashMap::with_capacity(nodes);
        for record in &self.records {
            match record {
                Record::Node { id, label, value } => {
                    let node = builder.add_node(label, value.clone());
                    ids.insert(*id, node);
                }
                Record::Edge { .. } => {}
            }
        }
        let resolve = |external: u64| -> NodeId {
            *ids.get(&external)
                .expect("generated edges reference generated nodes")
        };
        for record in &self.records {
            if let Record::Edge { src, dst } = record {
                builder
                    .add_edge(resolve(*src), resolve(*dst))
                    .expect("generated endpoints exist");
            }
        }
        builder.build()
    }

    /// Renders the dataset in the `n`/`e` text format (tab-separated), the
    /// shape `bgpq-graph::io::read_graph` parses.
    pub fn to_text(&self) -> String {
        let mut out = text_header(self.scenario, &self.config);
        for record in &self.records {
            record.render_text(&mut out);
        }
        out
    }

    /// Renders the dataset in the JSON-lines format, the shape
    /// `bgpq-graph::io::read_jsonl` parses.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            record.render_jsonl(&mut out);
        }
        out
    }
}

/// Checks that two graphs are identical node for node — same live node
/// count, and per node id the same label name and attribute value, with the
/// same edge set. Returns a description of the first difference. Used by
/// the loader-vs-generator equivalence suite: the graph a loader produces
/// from an emitted dataset must be indistinguishable from the directly
/// built one.
pub fn same_graph(a: &Graph, b: &Graph) -> Result<(), String> {
    if a.live_node_count() != b.live_node_count() {
        return Err(format!(
            "node counts differ: {} vs {}",
            a.live_node_count(),
            b.live_node_count()
        ));
    }
    if a.edge_count() != b.edge_count() {
        return Err(format!(
            "edge counts differ: {} vs {}",
            a.edge_count(),
            b.edge_count()
        ));
    }
    for v in a.nodes().filter(|&v| a.is_live(v)) {
        if !b.is_live(v) {
            return Err(format!("node {} is live on one side only", v.0));
        }
        if a.label_name(v) != b.label_name(v) {
            return Err(format!(
                "labels of node {} differ: {:?} vs {:?}",
                v.0,
                a.label_name(v),
                b.label_name(v)
            ));
        }
        if a.value(v) != b.value(v) {
            return Err(format!(
                "values of node {} differ: {:?} vs {:?}",
                v.0,
                a.value(v),
                b.value(v)
            ));
        }
    }
    let edges = |g: &Graph| -> Vec<(u32, u32)> {
        let mut e: Vec<(u32, u32)> = g.edges().map(|e| (e.src.0, e.dst.0)).collect();
        e.sort_unstable();
        e
    };
    if edges(a) != edges(b) {
        return Err("edge sets differ".into());
    }
    Ok(())
}

/// Generates a dataset for `scenario` under `config`, buffering the record
/// stream. Fully deterministic: the record stream is a function of
/// `(scenario, scale, seed)`.
pub fn generate(scenario: Scenario, config: &ScenarioConfig) -> Dataset {
    let mut records = Vec::new();
    generate_with(scenario, config, |record| records.push(record));
    Dataset {
        scenario,
        config: config.clone(),
        records,
    }
}

/// Streams the record stream of `scenario` under `config` through `emit`,
/// one record at a time and in the exact order [`generate`] buffers them —
/// nothing is retained between calls, so `bgpq gen --scale N` can write
/// arbitrarily large datasets in constant memory.
pub fn generate_with<F: FnMut(Record)>(scenario: Scenario, config: &ScenarioConfig, mut emit: F) {
    let mut gen = Generator {
        rng: DetRng::seed_from_u64(config.seed ^ (scenario as u64) << 32),
        emit: &mut emit,
        next_id: 0,
    };
    match scenario {
        Scenario::Social => gen.social(config.scale.max(2)),
        Scenario::Citation => gen.citation(config.scale.max(2)),
        Scenario::ProductCatalog => gen.product_catalog(config.scale.max(2)),
    }
}

struct Generator<'a> {
    rng: DetRng,
    emit: &'a mut dyn FnMut(Record),
    next_id: u64,
}

impl Generator<'_> {
    fn node(&mut self, label: &'static str, value: Value) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        (self.emit)(Record::Node { id, label, value });
        id
    }

    fn edge(&mut self, src: u64, dst: u64) {
        (self.emit)(Record::Edge { src, dst });
    }

    /// A draw over `0..n` skewed towards small indices (minimum of three
    /// uniform draws, density `∝ (1 - x)²`) — the cheap stand-in for
    /// preferential attachment.
    fn skewed(&mut self, n: usize) -> usize {
        self.rng
            .random_range(0..n)
            .min(self.rng.random_range(0..n))
            .min(self.rng.random_range(0..n))
    }

    fn social(&mut self, users: usize) {
        let cities = (users / 25).max(3);
        let tags = (users / 10).max(5);
        let posts = users * 2;

        let city_ids: Vec<u64> = (0..cities)
            .map(|i| self.node("city", Value::str(format!("city-{i}"))))
            .collect();
        let tag_ids: Vec<u64> = (0..tags)
            .map(|i| self.node("tag", Value::str(format!("tag-{i}"))))
            .collect();
        let user_ids: Vec<u64> = (0..users)
            .map(|i| self.node("user", Value::Int(i as i64)))
            .collect();
        let post_ids: Vec<u64> = (0..posts)
            .map(|i| self.node("post", Value::Int(i as i64)))
            .collect();

        // user → city: everyone lives somewhere, exactly one city (an FD).
        for &u in &user_ids {
            let c = city_ids[self.rng.random_range(0..cities)];
            self.edge(u, c);
        }
        // user → user follows, preferentially attached to early users.
        for i in 1..users {
            let follows = 1 + self.rng.random_range(0..=2);
            for _ in 0..follows {
                let target = self.skewed(i);
                self.edge(user_ids[i], user_ids[target]);
            }
        }
        // user → post authorship: hubs author more.
        for &p in &post_ids {
            let author = self.skewed(users);
            self.edge(user_ids[author], p);
        }
        // post → tag: one to three tags.
        for &p in &post_ids {
            let k = 1 + self.rng.random_range(0..=2);
            for _ in 0..k {
                let t = tag_ids[self.rng.random_range(0..tags)];
                self.edge(p, t);
            }
        }
    }

    fn citation(&mut self, papers: usize) {
        let venues = (papers / 30).max(4);
        let authors = (papers / 2).max(3);

        let venue_ids: Vec<u64> = (0..venues)
            .map(|i| self.node("venue", Value::str(format!("venue-{i}"))))
            .collect();
        let author_ids: Vec<u64> = (0..authors)
            .map(|i| self.node("author", Value::Int(i as i64)))
            .collect();
        let paper_ids: Vec<u64> = (0..papers)
            .map(|i| {
                let year = 1980 + (i * 40 / papers) as i64;
                self.node("paper", Value::Int(year))
            })
            .collect();

        for (i, &p) in paper_ids.iter().enumerate() {
            // paper → venue: exactly one (an FD).
            let v = venue_ids[self.rng.random_range(0..venues)];
            self.edge(p, v);
            // author → paper: one to three authors.
            let k = 1 + self.rng.random_range(0..=2);
            for _ in 0..k {
                let a = author_ids[self.rng.random_range(0..authors)];
                self.edge(a, p);
            }
            // paper → paper: cite up to five strictly older papers
            // (uniform, so citation out-degree stays flat — unlike the
            // social scenario's skewed follower degrees).
            if i > 0 {
                let cites = 1 + self.rng.random_range(0..=4.min(i - 1));
                for _ in 0..cites {
                    let older = self.rng.random_range(0..i);
                    self.edge(p, paper_ids[older]);
                }
            }
        }
    }

    fn product_catalog(&mut self, products: usize) {
        let brands = (products / 12).max(4);
        let categories = (products / 10).max(6);
        let customers = (products / 2).max(5);
        let reviews = products * 2;

        let brand_ids: Vec<u64> = (0..brands)
            .map(|i| self.node("brand", Value::str(format!("brand-{i}"))))
            .collect();
        let category_ids: Vec<u64> = (0..categories)
            .map(|i| self.node("category", Value::str(format!("category-{i}"))))
            .collect();
        // category → category: a tree, every non-root points at an earlier
        // parent.
        for i in 1..categories {
            let parent = category_ids[self.rng.random_range(0..i)];
            self.edge(category_ids[i], parent);
        }
        let product_ids: Vec<u64> = (0..products)
            .map(|_| {
                let cents = self.rng.random_range(99..=99_99) as f64;
                self.node("product", Value::Float(cents / 100.0))
            })
            .collect();
        for &p in &product_ids {
            // product → brand: exactly one (an FD).
            let b = brand_ids[self.rng.random_range(0..brands)];
            self.edge(p, b);
            // product → category: one or two.
            let k = 1 + self.rng.random_range(0..=1);
            for _ in 0..k {
                let c = category_ids[self.rng.random_range(0..categories)];
                self.edge(p, c);
            }
        }
        let customer_ids: Vec<u64> = (0..customers)
            .map(|i| self.node("customer", Value::Int(i as i64)))
            .collect();
        for _ in 0..reviews {
            let rating = 1 + self.rng.random_range(0..=4) as i64;
            let r = self.node("review", Value::Int(rating));
            let c = customer_ids[self.rng.random_range(0..customers)];
            self.edge(c, r);
            // review → product: popular products collect more reviews.
            let p = product_ids[self.skewed(products)];
            self.edge(r, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = ScenarioConfig::default();
        for scenario in Scenario::ALL {
            let a = generate(scenario, &config);
            let b = generate(scenario, &config);
            assert_eq!(a.records(), b.records(), "{scenario} not deterministic");
            let other = generate(
                scenario,
                &ScenarioConfig {
                    seed: 7,
                    ..config.clone()
                },
            );
            assert_ne!(a.records(), other.records(), "{scenario} ignores the seed");
        }
    }

    #[test]
    fn scenarios_have_distinct_label_schemas() {
        let config = ScenarioConfig { scale: 40, seed: 1 };
        let labels = |s: Scenario| -> Vec<String> {
            let g = generate(s, &config).build_graph();
            let mut names: Vec<String> = g
                .interner()
                .iter()
                .map(|(_, name)| name.to_string())
                .collect();
            names.sort();
            names
        };
        assert_eq!(labels(Scenario::Social), ["city", "post", "tag", "user"]);
        assert_eq!(labels(Scenario::Citation), ["author", "paper", "venue"]);
        assert_eq!(
            labels(Scenario::ProductCatalog),
            ["brand", "category", "customer", "product", "review"]
        );
    }

    #[test]
    fn social_degrees_are_skewed_citations_are_flat() {
        let config = ScenarioConfig {
            scale: 200,
            seed: 3,
        };
        let social = generate(Scenario::Social, &config).build_graph();
        let user = social.interner().get("user").unwrap();
        let user_degrees: Vec<usize> = social
            .nodes_with_label(user)
            .iter()
            .map(|&v| social.degree(v))
            .collect();
        let max = *user_degrees.iter().max().unwrap();
        let avg = user_degrees.iter().sum::<usize>() as f64 / user_degrees.len() as f64;
        assert!(
            max as f64 > 4.0 * avg,
            "expected hub users: max {max} vs avg {avg:.1}"
        );

        let citation = generate(Scenario::Citation, &config).build_graph();
        let paper = citation.interner().get("paper").unwrap();
        let max_out = citation
            .nodes_with_label(paper)
            .iter()
            .map(|&v| citation.out_degree(v))
            .max()
            .unwrap();
        // One venue edge plus at most five citations.
        assert!(
            max_out <= 6,
            "citation out-degree should stay flat, got {max_out}"
        );
    }

    #[test]
    fn streaming_render_matches_buffered_render() {
        let config = ScenarioConfig { scale: 60, seed: 9 };
        for scenario in Scenario::ALL {
            let dataset = generate(scenario, &config);
            let mut text = text_header(scenario, &config);
            let mut jsonl = String::new();
            let mut count = 0usize;
            generate_with(scenario, &config, |record| {
                record.render_text(&mut text);
                record.render_jsonl(&mut jsonl);
                count += 1;
            });
            assert_eq!(count, dataset.records().len(), "{scenario} record count");
            assert_eq!(text, dataset.to_text(), "{scenario} text drifted");
            assert_eq!(jsonl, dataset.to_jsonl(), "{scenario} jsonl drifted");
        }
    }

    #[test]
    fn names_resolve() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::from_name(s.name()), Some(s));
            assert!(!s.description().is_empty());
        }
        assert_eq!(Scenario::from_name("nope"), None);
    }
}
