//! Shared answer rendering.
//!
//! `bgpq query` (local engine) and `bgpq client` (TCP) must print the
//! *same bytes* for the same answer — that is how the end-to-end tests
//! prove the wire protocol is lossless. Both subcommands therefore reduce
//! their answers to the display-ready views here and let one renderer
//! produce the `strategy:`/`answer:` block.

use std::io::Write;

/// One pattern-node binding of a match row, reduced to display strings.
#[derive(Debug, Clone)]
pub struct BindingView {
    /// Pattern-node display name.
    pub node: String,
    /// Matched data node id.
    pub id: u32,
    /// Data node label name.
    pub label: String,
    /// Data node value, `Display`-rendered.
    pub value: String,
}

/// One pattern node's row of a simulation answer.
#[derive(Debug, Clone)]
pub struct SimRowView {
    /// Pattern-node display name.
    pub node: String,
    /// Pattern-node label name.
    pub label: String,
    /// Total data nodes simulating this pattern node.
    pub total: usize,
    /// Sample of their ids (at least `min(total, show)` entries).
    pub ids: Vec<u32>,
}

/// A display-ready answer.
#[derive(Debug, Clone)]
pub enum AnswerView {
    /// Isomorphism: total match count plus (at least the first `show`)
    /// rows.
    Matches {
        /// Total matches in the answer.
        total: usize,
        /// Match rows in canonical order; may hold only the rows to show.
        rows: Vec<Vec<BindingView>>,
    },
    /// Simulation: total pair count plus one row per pattern node.
    Simulation {
        /// Total `(u, v)` pairs in the relation.
        pairs: usize,
        /// Per-pattern-node rows, in pattern-node order.
        rows: Vec<SimRowView>,
    },
}

/// Writes the canonical `strategy:` + `answer:` block.
pub fn write_answer(
    out: &mut dyn Write,
    strategy: &str,
    view: &AnswerView,
    show: usize,
) -> std::io::Result<()> {
    writeln!(out, "strategy: {strategy}")?;
    match view {
        AnswerView::Matches { total, rows } => {
            writeln!(out, "answer: {total} matches")?;
            for row in rows.iter().take(show) {
                let parts: Vec<String> = row
                    .iter()
                    .map(|b| format!("{}={} ({}={})", b.node, b.id, b.label, b.value))
                    .collect();
                writeln!(out, "  {}", parts.join("  "))?;
            }
            if *total > show {
                writeln!(out, "  ... ({} more; raise --show)", total - show)?;
            }
        }
        AnswerView::Simulation { pairs, rows } => {
            writeln!(
                out,
                "answer: maximum simulation relation, {pairs} (u, v) pairs"
            )?;
            for row in rows {
                let sample: Vec<String> =
                    row.ids.iter().take(show).map(|v| v.to_string()).collect();
                writeln!(
                    out,
                    "  {} ({}): {} nodes{}",
                    row.node,
                    row.label,
                    row.total,
                    if row.total == 0 {
                        String::new()
                    } else {
                        format!(
                            "  [{}{}]",
                            sample.join(", "),
                            if row.total > show { ", ..." } else { "" }
                        )
                    }
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(view: &AnswerView, show: usize) -> String {
        let mut out = Vec::new();
        write_answer(&mut out, "baseline (VF2/gsim)", view, show).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn match_block_prints_rows_and_overflow() {
        let row = |id: u32| {
            vec![BindingView {
                node: "m".into(),
                id,
                label: "movie".into(),
                value: "\"Argo\"".into(),
            }]
        };
        let text = render(
            &AnswerView::Matches {
                total: 3,
                rows: vec![row(1), row(2), row(3)],
            },
            2,
        );
        assert_eq!(
            text,
            "strategy: baseline (VF2/gsim)\n\
             answer: 3 matches\n  m=1 (movie=\"Argo\")\n  m=2 (movie=\"Argo\")\n\
             \x20 ... (1 more; raise --show)\n"
        );
    }

    #[test]
    fn simulation_block_handles_empty_and_sampled_rows() {
        let text = render(
            &AnswerView::Simulation {
                pairs: 4,
                rows: vec![
                    SimRowView {
                        node: "p".into(),
                        label: "post".into(),
                        total: 4,
                        ids: vec![3, 5, 8, 9],
                    },
                    SimRowView {
                        node: "u1".into(),
                        label: "user".into(),
                        total: 0,
                        ids: vec![],
                    },
                ],
            },
            2,
        );
        assert_eq!(
            text,
            "strategy: baseline (VF2/gsim)\n\
             answer: maximum simulation relation, 4 (u, v) pairs\n\
             \x20 p (post): 4 nodes  [3, 5, ...]\n  u1 (user): 0 nodes\n"
        );
    }
}
