//! Tiny dependency-free argument parsing for the `bgpq` binary.
//!
//! The workspace ships without external crates, so instead of `clap` each
//! subcommand declares its flag names and gets positional arguments,
//! `--flag value` / `--flag=value` pairs and boolean `--switch`es back, with
//! unknown flags rejected up front.

use std::collections::{HashMap, HashSet};
use std::str::FromStr;

/// Parsed arguments of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
    switches: HashSet<String>,
}

impl Args {
    /// Parses `tokens` against the declared `value_flags` (take a value) and
    /// `switches` (boolean). Flag names are spelled without the `--` prefix.
    pub fn parse(
        tokens: &[String],
        value_flags: &[&str],
        switches: &[&str],
    ) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = tokens.iter();
        while let Some(token) = iter.next() {
            let Some(flag) = token.strip_prefix("--") else {
                args.positionals.push(token.clone());
                continue;
            };
            let (name, inline_value) = match flag.split_once('=') {
                Some((name, value)) => (name, Some(value.to_string())),
                None => (flag, None),
            };
            if switches.contains(&name) {
                if let Some(value) = inline_value {
                    return Err(format!("--{name} takes no value (got {value:?})"));
                }
                args.switches.insert(name.to_string());
            } else if value_flags.contains(&name) {
                let value = match inline_value {
                    Some(value) => value,
                    None => iter
                        .next()
                        .ok_or_else(|| format!("--{name} needs a value"))?
                        .clone(),
                };
                args.flags.insert(name.to_string(), value);
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// The `i`-th positional argument, required.
    pub fn require_positional(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional(i)
            .ok_or_else(|| format!("missing required argument <{what}>"))
    }

    /// Number of positional arguments.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// The raw value of `--name`, when given.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// The value of `--name` parsed as `T`, or `default` when absent.
    pub fn flag_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    /// True when `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn positionals_flags_and_switches() {
        let args = Args::parse(
            &tokens(&["data.tsv", "--scale", "50", "--explain", "--seed=7"]),
            &["scale", "seed"],
            &["explain"],
        )
        .unwrap();
        assert_eq!(args.positional(0), Some("data.tsv"));
        assert_eq!(args.positional_count(), 1);
        assert_eq!(args.flag("scale"), Some("50"));
        assert_eq!(args.flag_or("seed", 0u64).unwrap(), 7);
        assert_eq!(args.flag_or("missing", 3usize).unwrap(), 3);
        assert!(args.switch("explain"));
        assert!(!args.switch("quiet"));
    }

    #[test]
    fn errors_are_reported() {
        let err = Args::parse(&tokens(&["--bogus"]), &["scale"], &[]).unwrap_err();
        assert!(err.contains("unknown flag"));
        let err = Args::parse(&tokens(&["--scale"]), &["scale"], &[]).unwrap_err();
        assert!(err.contains("needs a value"));
        let err = Args::parse(&tokens(&["--explain=yes"]), &[], &["explain"]).unwrap_err();
        assert!(err.contains("takes no value"));
        let args = Args::parse(&tokens(&["--scale", "abc"]), &["scale"], &[]).unwrap();
        assert!(args.flag_or("scale", 0usize).is_err());
        assert!(args.require_positional(0, "dataset").is_err());
    }
}
