//! Shared dataset plumbing of the subcommands: format detection, loading,
//! and schema acquisition (load a serialized schema or discover one).

use bgpq_engine::{discover_schema, AccessSchema, DiscoveryConfig, Graph};
use bgpq_graph::io::{load_edge_list, load_graph, load_jsonl, DEFAULT_EDGE_LIST_LABEL};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// The dataset file formats the CLI can ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `n`/`e` typed records (whitespace- or tab-separated): `.tsv`, `.txt`,
    /// `.graph`.
    Text,
    /// JSON lines: `.jsonl`, `.ndjson`.
    Jsonl,
    /// Plain `src dst` edge list: `.el`, `.edges`.
    EdgeList,
}

impl Format {
    /// Resolves a `--format` value.
    pub fn from_name(name: &str) -> Option<Format> {
        match name {
            "text" | "tsv" => Some(Format::Text),
            "jsonl" | "ndjson" => Some(Format::Jsonl),
            "edges" | "edge-list" | "el" => Some(Format::EdgeList),
            _ => None,
        }
    }

    /// Guesses the format from a file extension (text when unknown).
    pub fn detect(path: &Path) -> Format {
        match path.extension().and_then(|e| e.to_str()) {
            Some("jsonl" | "ndjson") => Format::Jsonl,
            Some("el" | "edges") => Format::EdgeList,
            _ => Format::Text,
        }
    }

    /// The CLI name of the format.
    pub fn name(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Jsonl => "jsonl",
            Format::EdgeList => "edges",
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Loads a dataset, picking the reader from `format` (or the file extension
/// when `None`). `edge_label` is the implicit node label of edge lists.
pub fn load_dataset(
    path: &Path,
    format: Option<Format>,
    edge_label: &str,
) -> Result<(Graph, Format), Box<dyn Error>> {
    let format = format.unwrap_or_else(|| Format::detect(path));
    let annotate = |e: bgpq_engine::GraphError| -> Box<dyn Error> {
        format!("{}: {e}", path.display()).into()
    };
    let graph = match format {
        Format::Text => load_graph(path).map_err(annotate)?,
        Format::Jsonl => load_jsonl(path).map_err(annotate)?,
        Format::EdgeList => load_edge_list(path, edge_label).map_err(annotate)?,
    };
    Ok((graph, format))
}

/// The implicit node label used for edge lists unless `--label` overrides
/// it.
pub fn default_edge_label() -> &'static str {
    DEFAULT_EDGE_LIST_LABEL
}

/// Obtains the access schema for `graph`: loads `--schema FILE` when given,
/// otherwise runs discovery with `config`.
pub fn load_or_discover_schema(
    graph: &Graph,
    schema_path: Option<&Path>,
    config: &DiscoveryConfig,
) -> Result<AccessSchema, Box<dyn Error>> {
    match schema_path {
        Some(path) => {
            let mut interner = graph.interner().clone();
            bgpq_access::load_schema(path, &mut interner)
                .map_err(|e| format!("{}: {e}", path.display()).into())
        }
        None => Ok(discover_schema(graph, config)),
    }
}
