//! Shared dataset plumbing of the subcommands: format detection, loading,
//! and schema acquisition (load a serialized schema or discover one).
//!
//! Format resolution sniffs the file content first: a `.bgpq` snapshot is
//! recognized by its magic bytes no matter what the file is called, so
//! renamed or extensionless snapshots still load through the binary path
//! (and text datasets can never be mis-parsed as snapshots). The extension
//! only breaks the tie for the line-oriented text formats, which have no
//! magic.

use bgpq_access::snapshot::decode_bundle;
use bgpq_engine::{discover_schema, AccessIndexSet, AccessSchema, DiscoveryConfig, Graph};
use bgpq_graph::io::snapshot::{decode_graph, Section, SnapshotArchive};
use bgpq_graph::io::{
    load_edge_list, load_graph, load_jsonl, sniff_snapshot, DEFAULT_EDGE_LIST_LABEL,
};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// The dataset file formats the CLI can ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `n`/`e` typed records (whitespace- or tab-separated): `.tsv`, `.txt`,
    /// `.graph`.
    Text,
    /// JSON lines: `.jsonl`, `.ndjson`.
    Jsonl,
    /// Plain `src dst` edge list: `.el`, `.edges`.
    EdgeList,
    /// Binary `.bgpq` snapshot container (detected by magic bytes).
    Snapshot,
}

impl Format {
    /// Resolves a `--format` value.
    pub fn from_name(name: &str) -> Option<Format> {
        match name {
            "text" | "tsv" => Some(Format::Text),
            "jsonl" | "ndjson" => Some(Format::Jsonl),
            "edges" | "edge-list" | "el" => Some(Format::EdgeList),
            "snapshot" | "bgpq" => Some(Format::Snapshot),
            _ => None,
        }
    }

    /// Guesses the format from a file extension (text when unknown). Only a
    /// fallback: [`Format::resolve`] checks the snapshot magic bytes first.
    pub fn detect(path: &Path) -> Format {
        match path.extension().and_then(|e| e.to_str()) {
            Some("jsonl" | "ndjson") => Format::Jsonl,
            Some("el" | "edges") => Format::EdgeList,
            Some("bgpq") => Format::Snapshot,
            _ => Format::Text,
        }
    }

    /// Resolves the format of `path` by content: snapshot when the file
    /// starts with the `.bgpq` magic bytes, otherwise by extension.
    pub fn resolve(path: &Path) -> std::io::Result<Format> {
        if sniff_snapshot(path)? {
            Ok(Format::Snapshot)
        } else {
            Ok(Format::detect(path))
        }
    }

    /// The CLI name of the format.
    pub fn name(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Jsonl => "jsonl",
            Format::EdgeList => "edges",
            Format::Snapshot => "snapshot",
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A loaded dataset: the graph, the format it arrived in, and — when the
/// source was a compiled snapshot — the schema and indices embedded in it.
pub struct LoadedDataset {
    /// The data graph.
    pub graph: Graph,
    /// The format the file was read as.
    pub format: Format,
    /// Schema and pre-built indices carried by a compiled snapshot, absent
    /// for line-oriented formats and graph-only snapshots.
    pub embedded: Option<(AccessSchema, AccessIndexSet)>,
    /// The raw `Shards` section payload of a partitioned snapshot, when
    /// present — decoded lazily (via
    /// [`bgpq_engine::decode_shards_section`]) by commands that were given
    /// `--partitions`/`--threads`, skipped by everyone else.
    pub shards_payload: Option<Vec<u8>>,
}

/// Loads a dataset, picking the reader from `format` (or content sniffing +
/// extension when `None`). `edge_label` is the implicit node label of edge
/// lists. Snapshot inputs surface their embedded schema and indices.
pub fn load_dataset_full(
    path: &Path,
    format: Option<Format>,
    edge_label: &str,
) -> Result<LoadedDataset, Box<dyn Error>> {
    let annotate_io =
        |e: std::io::Error| -> Box<dyn Error> { format!("{}: {e}", path.display()).into() };
    let format = match format {
        Some(f) => f,
        None => Format::resolve(path).map_err(annotate_io)?,
    };
    let annotate = |e: bgpq_engine::GraphError| -> Box<dyn Error> {
        format!("{}: {e}", path.display()).into()
    };
    let (graph, embedded, shards_payload) = match format {
        Format::Text => (load_graph(path).map_err(annotate)?, None, None),
        Format::Jsonl => (load_jsonl(path).map_err(annotate)?, None, None),
        Format::EdgeList => (
            load_edge_list(path, edge_label).map_err(annotate)?,
            None,
            None,
        ),
        Format::Snapshot => {
            let annotate_snap = |e: bgpq_graph::SnapshotError| -> Box<dyn Error> {
                format!("{}: {e}", path.display()).into()
            };
            let archive = SnapshotArchive::open(path).map_err(annotate_snap)?;
            let shards = archive.section(Section::Shards).map(<[u8]>::to_vec);
            if archive.section(Section::Schema).is_some() {
                let bundle = decode_bundle(&archive).map_err(annotate_snap)?;
                (bundle.graph, Some((bundle.schema, bundle.indices)), shards)
            } else {
                (decode_graph(&archive).map_err(annotate_snap)?, None, None)
            }
        }
    };
    Ok(LoadedDataset {
        graph,
        format,
        embedded,
        shards_payload,
    })
}

/// Loads a dataset, discarding any embedded schema/indices (callers that
/// only need the graph).
pub fn load_dataset(
    path: &Path,
    format: Option<Format>,
    edge_label: &str,
) -> Result<(Graph, Format), Box<dyn Error>> {
    let loaded = load_dataset_full(path, format, edge_label)?;
    Ok((loaded.graph, loaded.format))
}

/// The implicit node label used for edge lists unless `--label` overrides
/// it.
pub fn default_edge_label() -> &'static str {
    DEFAULT_EDGE_LIST_LABEL
}

/// Obtains the access schema for `graph`: loads `--schema FILE` when given,
/// otherwise runs discovery with `config`.
pub fn load_or_discover_schema(
    graph: &Graph,
    schema_path: Option<&Path>,
    config: &DiscoveryConfig,
) -> Result<AccessSchema, Box<dyn Error>> {
    match schema_path {
        Some(path) => {
            let mut interner = graph.interner().clone();
            bgpq_access::load_schema(path, &mut interner)
                .map_err(|e| format!("{}: {e}", path.display()).into())
        }
        None => Ok(discover_schema(graph, config)),
    }
}
