//! `bgpq serve` — expose a dataset over the TCP wire protocol.

use super::{
    dataset_source, discovery_config, shard_config, DISCOVERY_FLAGS, SHARD_FLAGS, SIMPLE_SWITCH,
};
use crate::args::Args;
use crate::dataset::{default_edge_label, load_dataset_full, load_or_discover_schema};
use bgpq_engine::BudgetPolicy;
use bgpq_net::{NetServer, NetServerConfig, DEFAULT_MAX_FRAME_BYTES};
use bgpq_serve::Server;
use std::error::Error;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "USAGE: bgpq serve <dataset|--snapshot FILE> [--host ADDR] [--port N]
                     [--workers N] [--max-in-flight N] [--read-timeout-ms N]
                     [--max-frame-bytes N] [--steps-per-ms N] [--name ID]
                     [--drain-after-ms N] [--schema FILE] [discovery flags]
                     [--partitions N] [--threads N] [--scheme hash|label-range]
                     [--format text|jsonl|edges|snapshot] [--label NAME]

Loads the dataset into the epoch-versioned server and listens for bgpq-net
protocol connections (`bgpq client`, see docs/PROTOCOL.md). Queries and
updates pass an admission gate capped at --max-in-flight concurrent
requests; beyond it clients get a typed `overloaded` rejection with a
retry-after hint (--max-in-flight 0 rejects everything — out-of-rotation
mode). --port 0 picks a free port, printed on the `listening on` line.
--steps-per-ms calibrates how client deadlines map onto deterministic step
budgets. By default the server runs until killed; --drain-after-ms N
drains gracefully after N ms and exits (in-flight queries finish, new ones
are rejected with `draining`).";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let mut value_flags = vec![
        "format",
        "label",
        "schema",
        "snapshot",
        "host",
        "port",
        "workers",
        "max-in-flight",
        "read-timeout-ms",
        "max-frame-bytes",
        "steps-per-ms",
        "name",
        "drain-after-ms",
    ];
    value_flags.extend_from_slice(&SHARD_FLAGS);
    value_flags.extend_from_slice(&DISCOVERY_FLAGS);
    let args = Args::parse(argv, &value_flags, &[SIMPLE_SWITCH, "help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let (path, format) = dataset_source(&args)?;
    let host = args.flag("host").unwrap_or("127.0.0.1");
    let port: u16 = args.flag_or("port", 0u16)?;
    let workers: usize = args.flag_or("workers", 2usize)?;
    let max_in_flight: usize = args.flag_or("max-in-flight", 8usize)?;
    let read_timeout_ms: u64 = args.flag_or("read-timeout-ms", 0u64)?;
    let max_frame_bytes: u32 = args.flag_or("max-frame-bytes", DEFAULT_MAX_FRAME_BYTES)?;
    let steps_per_ms: u64 =
        args.flag_or("steps-per-ms", BudgetPolicy::default().steps_per_milli)?;
    let drain_after_ms: u64 = args.flag_or("drain-after-ms", 0u64)?;
    let name = args.flag("name").unwrap_or("bgpq-net").to_string();

    let label = args.flag("label").unwrap_or(default_edge_label());
    let loaded = load_dataset_full(path, format, label)?;
    let schema_path = args.flag("schema").map(Path::new);
    let (graph, schema_len, schema_desc, indices) = match (loaded.embedded, schema_path) {
        (Some(_), Some(_)) => {
            return Err(
                "--schema conflicts with a snapshot input's embedded schema; \
                 serve the original dataset to use a different schema"
                    .into(),
            );
        }
        (Some((schema, indices)), None) => (
            loaded.graph,
            schema.len(),
            " (embedded in snapshot)".to_string(),
            indices,
        ),
        (None, schema_path) => {
            let schema =
                load_or_discover_schema(&loaded.graph, schema_path, &discovery_config(&args)?)?;
            let desc = match schema_path {
                Some(p) => format!(" (from {})", p.display()),
                None => " (discovered)".into(),
            };
            let len = schema.len();
            let indices = bgpq_access::AccessIndexSet::build(&loaded.graph, &schema);
            (loaded.graph, len, desc, indices)
        }
    };
    let (nodes, edges) = (graph.live_node_count(), graph.edge_count());
    let mut server = Server::with_indices(graph, indices);
    if let Some(config) = shard_config(&args)? {
        server = server.with_shard_config(config);
    }

    let config = NetServerConfig {
        addr: format!("{host}:{port}"),
        workers: workers.max(1),
        max_in_flight,
        max_frame_bytes,
        read_timeout: (read_timeout_ms > 0).then(|| Duration::from_millis(read_timeout_ms)),
        server_name: name,
        budget_policy: BudgetPolicy {
            steps_per_milli: steps_per_ms.max(1),
            ..BudgetPolicy::default()
        },
        ..NetServerConfig::default()
    };
    let handle = NetServer::start(Arc::new(server), config)
        .map_err(|e| format!("cannot listen on {host}:{port}: {e}"))?;

    writeln!(
        out,
        "serving {}: {} nodes, {} edges; schema: {} constraints{}",
        path.display(),
        nodes,
        edges,
        schema_len,
        schema_desc
    )?;
    writeln!(
        out,
        "listening on {} (workers {}, max in-flight {})",
        handle.local_addr(),
        workers.max(1),
        max_in_flight
    )?;
    out.flush()?;

    if drain_after_ms > 0 {
        std::thread::sleep(Duration::from_millis(drain_after_ms));
        let stats = handle.gate_stats();
        let drained = handle.shutdown();
        writeln!(
            out,
            "drained {}: admitted {}, rejected {} overloaded / {} draining",
            if drained { "cleanly" } else { "with timeout" },
            stats.admitted,
            stats.rejected_overloaded,
            stats.rejected_draining
        )?;
        return Ok(());
    }
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
