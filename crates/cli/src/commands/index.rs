//! `bgpq index` — build the access indices and report their sizes.

use super::{discovery_config, DISCOVERY_FLAGS, SIMPLE_SWITCH};
use crate::args::Args;
use crate::commands::load::parse_format;
use crate::dataset::{default_edge_label, load_dataset, load_or_discover_schema};
use bgpq_engine::AccessIndexSet;
use std::error::Error;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

const USAGE: &str = "USAGE: bgpq index <dataset> [--schema FILE] [discovery flags]
                     [--format text|jsonl|edges] [--label NAME]

Builds one index per access constraint (from --schema FILE, or freshly
discovered) and reports per-index key counts, sizes and maximum observed
cardinality, plus the paper's |index| / |G| ratio.";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let mut value_flags = vec!["format", "label", "schema"];
    value_flags.extend_from_slice(&DISCOVERY_FLAGS);
    let args = Args::parse(argv, &value_flags, &[SIMPLE_SWITCH, "help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let path = Path::new(args.require_positional(0, "dataset")?);
    let format = parse_format(&args)?;
    let label = args.flag("label").unwrap_or(default_edge_label());
    let (graph, _) = load_dataset(path, format, label)?;
    let schema_path = args.flag("schema").map(Path::new);
    let schema = load_or_discover_schema(&graph, schema_path, &discovery_config(&args)?)?;

    let started = Instant::now();
    let indices = AccessIndexSet::build(&graph, &schema);
    let build_nanos = started.elapsed().as_nanos() as u64;

    writeln!(
        out,
        "built {} indices over {} in {}",
        indices.len(),
        path.display(),
        super::fmt_nanos(build_nanos)
    )?;
    writeln!(
        out,
        "  {:<34} {:>8} {:>10} {:>8}  status",
        "constraint", "keys", "size", "maxcard"
    )?;
    for (id, index) in indices.iter() {
        let constraint = index.constraint();
        let status = match (index.within_bound(), index.is_truncated()) {
            (_, true) => "TRUNCATED",
            (false, _) => "OVER BOUND",
            _ => "ok",
        };
        writeln!(
            out,
            "  {:<34} {:>8} {:>10} {:>8}  {}",
            format!("{id}: {}", constraint.display_with(graph.interner())),
            index.key_count(),
            index.size(),
            index.max_cardinality(),
            status
        )?;
    }
    let g_size = graph.live_node_count() + graph.edge_count();
    let total = indices.total_size();
    writeln!(
        out,
        "total |index| = {} node ids ({:.1}% of |G| = {})",
        total,
        if g_size == 0 {
            0.0
        } else {
            100.0 * total as f64 / g_size as f64
        },
        g_size
    )?;
    Ok(())
}
