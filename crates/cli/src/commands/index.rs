//! `bgpq index` — build the access indices and report their sizes.

use super::{
    dataset_source, discovery_config, shard_config, DISCOVERY_FLAGS, SHARD_FLAGS, SIMPLE_SWITCH,
};
use crate::args::Args;
use crate::dataset::{default_edge_label, load_dataset_full, load_or_discover_schema};
use bgpq_engine::{AccessIndexSet, ShardedIndexSet};
use std::error::Error;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

const USAGE: &str = "USAGE: bgpq index <dataset|--snapshot FILE> [--schema FILE]
                     [--partitions N] [--threads N] [--scheme hash|label-range]
                     [discovery flags] [--format text|jsonl|edges|snapshot]
                     [--label NAME]

Builds one index per access constraint (from --schema FILE, or freshly
discovered) and reports per-index key counts, sizes and maximum observed
cardinality, plus the paper's |index| / |G| ratio. With --partitions N the
build runs per partition on --threads workers and a per-shard summary is
printed; the reported totals are the merged (single-build-identical) set. A
compiled snapshot input reports its embedded indices without rebuilding
them.";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let mut value_flags = vec!["format", "label", "schema", "snapshot"];
    value_flags.extend_from_slice(&SHARD_FLAGS);
    value_flags.extend_from_slice(&DISCOVERY_FLAGS);
    let args = Args::parse(argv, &value_flags, &[SIMPLE_SWITCH, "help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let (path, format) = dataset_source(&args)?;
    let label = args.flag("label").unwrap_or(default_edge_label());
    let loaded = load_dataset_full(path, format, label)?;
    let schema_path = args.flag("schema").map(Path::new);

    let (graph, indices) = match (loaded.embedded, schema_path) {
        (Some(_), Some(_)) => {
            return Err(
                "--schema conflicts with a snapshot input's embedded schema; \
                 index the original dataset to use a different schema"
                    .into(),
            );
        }
        (Some((_, indices)), None) => {
            writeln!(
                out,
                "loaded {} indices from snapshot {} (no rebuild)",
                indices.len(),
                path.display()
            )?;
            (loaded.graph, indices)
        }
        (None, schema_path) => {
            let schema =
                load_or_discover_schema(&loaded.graph, schema_path, &discovery_config(&args)?)?;
            let started = Instant::now();
            match shard_config(&args)? {
                Some(config) => {
                    let spec = config.spec_for(&loaded.graph);
                    let sharded =
                        ShardedIndexSet::build(&loaded.graph, &schema, &spec, config.threads);
                    let build_nanos = started.elapsed().as_nanos() as u64;
                    writeln!(
                        out,
                        "built {} indices over {} in {} ({} partitions, {} threads)",
                        schema.len(),
                        path.display(),
                        super::fmt_nanos(build_nanos),
                        config.partitions,
                        config.threads
                    )?;
                    for shard in sharded.shards() {
                        writeln!(
                            out,
                            "  shard: {} keys, |index| = {} node ids",
                            shard.iter().map(|(_, ix)| ix.key_count()).sum::<usize>(),
                            shard.total_size()
                        )?;
                    }
                    (loaded.graph, sharded.merged())
                }
                None => {
                    let indices = AccessIndexSet::build(&loaded.graph, &schema);
                    let build_nanos = started.elapsed().as_nanos() as u64;
                    writeln!(
                        out,
                        "built {} indices over {} in {}",
                        indices.len(),
                        path.display(),
                        super::fmt_nanos(build_nanos)
                    )?;
                    (loaded.graph, indices)
                }
            }
        }
    };
    writeln!(
        out,
        "  {:<34} {:>8} {:>10} {:>8}  status",
        "constraint", "keys", "size", "maxcard"
    )?;
    for (id, index) in indices.iter() {
        let constraint = index.constraint();
        let status = match (index.within_bound(), index.is_truncated()) {
            (_, true) => "TRUNCATED",
            (false, _) => "OVER BOUND",
            _ => "ok",
        };
        writeln!(
            out,
            "  {:<34} {:>8} {:>10} {:>8}  {}",
            format!("{id}: {}", constraint.display_with(graph.interner())),
            index.key_count(),
            index.size(),
            index.max_cardinality(),
            status
        )?;
    }
    let g_size = graph.live_node_count() + graph.edge_count();
    let total = indices.total_size();
    writeln!(
        out,
        "total |index| = {} node ids ({:.1}% of |G| = {})",
        total,
        if g_size == 0 {
            0.0
        } else {
            100.0 * total as f64 / g_size as f64
        },
        g_size
    )?;
    Ok(())
}
