//! `bgpq gen` — generate a built-in scenario dataset.

use super::{knob_summary, resolve_scenario, scenario_config, SCENARIO_FLAGS};
use crate::args::Args;
use crate::dataset::Format;
use crate::scenario::{generate_with, text_header, Record};
use std::error::Error;
use std::io::{BufWriter, Write};
use std::path::Path;

const USAGE: &str = "USAGE: bgpq gen <scenario> [--scale N] [--seed N]
                     [--zipf S] [--hot-fraction F] [--domain D]
                     [--format text|jsonl] [--out FILE]

Scenarios:
  social     users/posts/tags/cities; preferential-attachment follower graph
  citation   papers/authors/venues; year-ordered citation DAG
  products   products/brands/categories/customers/reviews; category tree

Skew knobs (defaults reproduce the historical streams byte-for-byte):
  --zipf S          zipfian hub attachment with exponent S (higher = spikier)
  --hot-fraction F  route fraction F of domain references to the hottest tenth
  --domain D        fix reference-set cardinalities (cities, venues, brands,
                    ...) to D and value domains to 20*D, independent of scale;
                    also plants the curated topic/area/collection hub tier

Without --out the dataset is written to stdout. The format defaults to the
--out extension (text otherwise). Records stream straight to the sink, so
--scale 1000000 is bounded by disk, not RAM.";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let mut value_flags = vec!["format", "out"];
    value_flags.extend_from_slice(&SCENARIO_FLAGS);
    let args = Args::parse(argv, &value_flags, &["help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let scenario = resolve_scenario(args.require_positional(0, "scenario")?)?;
    let config = scenario_config(&args)?;
    let out_path = args.flag("out").map(Path::new);
    let format = match args.flag("format") {
        Some(name) => Format::from_name(name)
            .filter(|f| matches!(f, Format::Text | Format::Jsonl))
            .ok_or_else(|| format!("invalid --format {name:?} (text or jsonl)"))?,
        None => match out_path {
            Some(path) => match Format::detect(path) {
                Format::Jsonl => Format::Jsonl,
                // Writing labeled text records into a file the loaders will
                // auto-detect as an edge list or snapshot would produce a
                // dataset that cannot be loaded back.
                Format::EdgeList | Format::Snapshot => {
                    return Err(format!(
                        "{}: `gen` emits line-oriented datasets only; use a .tsv/.jsonl \
                         extension (then `bgpq compile` for a snapshot) or pass --format",
                        path.display()
                    )
                    .into())
                }
                Format::Text => Format::Text,
            },
            None => Format::Text,
        },
    };

    // Records are streamed straight to the sink as the generator produces
    // them — neither the record stream nor the rendered dataset is ever
    // buffered in memory, so --scale is bounded by disk, not RAM.
    let mut file_sink: Option<BufWriter<std::fs::File>> = match out_path {
        Some(path) => Some(BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?,
        )),
        None => None,
    };
    let sink: &mut dyn Write = match file_sink.as_mut() {
        Some(w) => w,
        None => out,
    };

    let mut write_error: Option<std::io::Error> = None;
    let mut nodes = 0usize;
    let mut edge_records = 0usize;
    let mut line = String::new();
    if matches!(format, Format::Text) {
        if let Err(e) = sink.write_all(text_header(scenario, &config).as_bytes()) {
            write_error = Some(e);
        }
    }
    generate_with(scenario, &config, |record| {
        match record {
            Record::Node { .. } => nodes += 1,
            Record::Edge { .. } => edge_records += 1,
        }
        if write_error.is_some() {
            return;
        }
        line.clear();
        match format {
            Format::Jsonl => record.render_jsonl(&mut line),
            _ => record.render_text(&mut line),
        }
        if let Err(e) = sink.write_all(line.as_bytes()) {
            write_error = Some(e);
        }
    });
    if write_error.is_none() {
        if let Err(e) = sink.flush() {
            write_error = Some(e);
        }
    }
    if let Some(e) = write_error {
        return Err(match out_path {
            Some(path) => format!("{}: {e}", path.display()).into(),
            None => e.into(),
        });
    }
    drop(file_sink);
    if let Some(path) = out_path {
        writeln!(
            out,
            "generated {} dataset (scale {}, seed {}{}): {} nodes, {} edge records -> {} ({format})",
            scenario,
            config.scale,
            config.seed,
            knob_summary(&config),
            nodes,
            edge_records,
            path.display()
        )?;
    }
    Ok(())
}
