//! `bgpq gen` — generate a built-in scenario dataset.

use crate::args::Args;
use crate::dataset::Format;
use crate::scenario::{generate, Scenario, ScenarioConfig};
use std::error::Error;
use std::io::Write;
use std::path::Path;

const USAGE: &str =
    "USAGE: bgpq gen <scenario> [--scale N] [--seed N] [--format text|jsonl] [--out FILE]

Scenarios:
  social     users/posts/tags/cities; preferential-attachment follower graph
  citation   papers/authors/venues; year-ordered citation DAG
  products   products/brands/categories/customers/reviews; category tree

Without --out the dataset is written to stdout. The format defaults to the
--out extension (text otherwise).";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(argv, &["scale", "seed", "format", "out"], &["help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let name = args.require_positional(0, "scenario")?;
    let scenario = Scenario::from_name(name).ok_or_else(|| {
        format!(
            "unknown scenario {name:?} (expected {})",
            Scenario::ALL.map(Scenario::name).join(", ")
        )
    })?;
    let config = ScenarioConfig {
        scale: args.flag_or("scale", ScenarioConfig::default().scale)?,
        seed: args.flag_or("seed", ScenarioConfig::default().seed)?,
    };
    let out_path = args.flag("out").map(Path::new);
    let format = match args.flag("format") {
        Some(name) => Format::from_name(name)
            .filter(|f| matches!(f, Format::Text | Format::Jsonl))
            .ok_or_else(|| format!("invalid --format {name:?} (text or jsonl)"))?,
        None => match out_path {
            Some(path) => match Format::detect(path) {
                Format::Jsonl => Format::Jsonl,
                // Writing labeled text records into a file the loaders will
                // auto-detect as an edge list or snapshot would produce a
                // dataset that cannot be loaded back.
                Format::EdgeList | Format::Snapshot => {
                    return Err(format!(
                        "{}: `gen` emits line-oriented datasets only; use a .tsv/.jsonl \
                         extension (then `bgpq compile` for a snapshot) or pass --format",
                        path.display()
                    )
                    .into())
                }
                Format::Text => Format::Text,
            },
            None => Format::Text,
        },
    };

    let dataset = generate(scenario, &config);
    let rendered = match format {
        Format::Jsonl => dataset.to_jsonl(),
        _ => dataset.to_text(),
    };
    let nodes = dataset
        .records()
        .iter()
        .filter(|r| matches!(r, crate::scenario::Record::Node { .. }))
        .count();
    let edge_records = dataset.records().len() - nodes;
    match out_path {
        Some(path) => {
            std::fs::write(path, rendered)?;
            writeln!(
                out,
                "generated {} dataset (scale {}, seed {}): {} nodes, {} edge records -> {} ({format})",
                scenario,
                config.scale,
                config.seed,
                nodes,
                edge_records,
                path.display()
            )?;
        }
        None => out.write_all(rendered.as_bytes())?,
    }
    Ok(())
}
