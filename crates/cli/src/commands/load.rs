//! `bgpq load` — parse a dataset and print its statistics.

use super::dataset_source;
use crate::args::Args;
use crate::dataset::{default_edge_label, load_dataset_full, Format};
use bgpq_engine::Graph;
use bgpq_graph::GraphStats;
use std::error::Error;
use std::io::Write;
use std::path::Path;

const USAGE: &str = "USAGE: bgpq load <dataset|--snapshot FILE>
                     [--format text|jsonl|edges|snapshot] [--label NAME]

Parses the dataset (reporting malformed lines with their line number) and
prints node/edge counts, the label histogram, degree statistics and the mix
of attribute value types. Snapshots are recognized by their magic bytes
regardless of extension; a compiled snapshot additionally reports its
embedded schema and index sizes. --label sets the implicit node label of
edge lists.";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(argv, &["format", "label", "snapshot"], &["help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let (path, format) = dataset_source(&args)?;
    let label = args.flag("label").unwrap_or(default_edge_label());
    let loaded = load_dataset_full(path, format, label)?;
    report(&loaded.graph, path, loaded.format, out)?;
    if let Some((schema, indices)) = &loaded.embedded {
        writeln!(
            out,
            "  snapshot: {} constraints embedded, |index| = {} node ids",
            schema.len(),
            indices.total_size()
        )?;
    }
    Ok(())
}

/// Resolves the optional `--format` flag (shared with other subcommands).
pub(crate) fn parse_format(args: &Args) -> Result<Option<Format>, Box<dyn Error>> {
    match args.flag("format") {
        None => Ok(None),
        Some(name) => Format::from_name(name).map(Some).ok_or_else(|| {
            format!("invalid --format {name:?} (text, jsonl, edges or snapshot)").into()
        }),
    }
}

fn report(
    graph: &Graph,
    path: &Path,
    format: Format,
    out: &mut dyn Write,
) -> Result<(), Box<dyn Error>> {
    let stats = GraphStats::compute(graph);
    writeln!(out, "dataset {} ({format})", path.display())?;
    writeln!(
        out,
        "  nodes: {}   edges: {}   distinct labels: {}",
        stats.node_count,
        stats.edge_count,
        stats.label_counts.len()
    )?;
    writeln!(
        out,
        "  degree: max {}   avg {:.2}",
        stats.max_degree, stats.avg_degree
    )?;

    let mut labels: Vec<(String, usize)> = stats
        .label_counts
        .iter()
        .map(|(&l, &count)| (graph.interner().name_or_placeholder(l), count))
        .collect();
    labels.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    writeln!(out, "  labels:")?;
    for (name, count) in labels {
        writeln!(out, "    {name:<16} {count}")?;
    }

    let mut by_type: [(&str, usize); 5] = [
        ("null", 0),
        ("bool", 0),
        ("int", 0),
        ("float", 0),
        ("str", 0),
    ];
    for v in graph.nodes().filter(|&v| graph.is_live(v)) {
        let name = graph.value(v).type_name();
        if let Some(slot) = by_type.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += 1;
        }
    }
    let mix: Vec<String> = by_type
        .iter()
        .filter(|(_, c)| *c > 0)
        .map(|(n, c)| format!("{n} {c}"))
        .collect();
    writeln!(out, "  values: {}", mix.join("   "))?;
    Ok(())
}
