//! `bgpq query` — run one pattern query through the engine.

use super::{
    dataset_source, discovery_config, fmt_nanos, shard_config, DISCOVERY_FLAGS, SHARD_FLAGS,
    SIMPLE_SWITCH,
};
use crate::args::Args;
use crate::dataset::{default_edge_label, load_dataset_full, load_or_discover_schema};
use crate::render::{write_answer, AnswerView, BindingView, SimRowView};
use bgpq_engine::{
    decode_shards_section, parse_pattern, Engine, QueryAnswer, QueryRequest, QueryResponse,
    Semantics, ShardRuntime, StrategyKind,
};
use bgpq_pattern::Pattern;
use bgpq_workload::{parse_manifest, LatencyHistogram};
use std::error::Error;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const USAGE: &str = "USAGE: bgpq query <dataset|--snapshot FILE> --pattern FILE
                     [--workload FILE] [--schema FILE] [--semantics iso|sim]
                     [--strategy auto|bounded|seeded|baseline]
                     [--max-matches N] [--step-budget N] [--show N]
                     [--partitions N] [--threads N] [--scheme hash|label-range]
                     [--explain] [discovery flags]
                     [--format text|jsonl|edges|snapshot] [--label NAME]

Loads the dataset, obtains an access schema (--schema FILE or discovery),
builds an engine and executes the pattern file (see `bgpq-pattern::parse`
for the syntax). A compiled snapshot input (--snapshot FILE, or a dataset
path carrying the snapshot magic) supplies its embedded schema and indices,
so no discovery or index build happens at query time. The engine picks the
cheapest sound strategy — bounded bVF2/bSim when the pattern is effectively
bounded under the schema — unless --strategy forces a tier. --explain
prints the fetch plan or the planner's refusal.

--workload FILE (instead of --pattern) runs every query of a `bgpq
workload` manifest closed-loop through the engine and reports latency
percentiles, per-strategy counts and the aggregate fragment size; --show
bounds the per-query detail lines.";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let mut value_flags = vec![
        "format",
        "label",
        "schema",
        "snapshot",
        "pattern",
        "semantics",
        "strategy",
        "max-matches",
        "step-budget",
        "show",
        "workload",
    ];
    value_flags.extend_from_slice(&SHARD_FLAGS);
    value_flags.extend_from_slice(&DISCOVERY_FLAGS);
    let args = Args::parse(argv, &value_flags, &[SIMPLE_SWITCH, "explain", "help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let (path, format) = dataset_source(&args)?;
    let pattern_path = match (args.flag("pattern"), args.flag("workload")) {
        (Some(_), Some(_)) => return Err("give --pattern FILE or --workload FILE, not both".into()),
        (None, None) => {
            return Err(
                "missing --pattern FILE or --workload FILE (see `bgpq query --help`)".into(),
            )
        }
        (pattern, _) => pattern,
    };
    let semantics = parse_semantics(args.flag("semantics"))?;
    let strategy = parse_strategy(args.flag("strategy"))?;
    let show = args.flag_or("show", 10usize)?;

    let shard = shard_config(&args)?;
    let label = args.flag("label").unwrap_or(default_edge_label());
    let loaded = load_dataset_full(path, format, label)?;
    let schema_path = args.flag("schema").map(Path::new);
    let (engine, schema_len, schema_desc) = match (loaded.embedded, schema_path) {
        (Some(_), Some(_)) => {
            return Err(
                "--schema conflicts with a snapshot input's embedded schema; \
                 query the original dataset to use a different schema"
                    .into(),
            );
        }
        (Some((schema, indices)), None) => {
            // The snapshot carries everything: no discovery, no index build.
            let len = schema.len();
            // When the snapshot also carries per-shard index blobs and
            // sharding was requested, load them (in parallel) instead of
            // re-partitioning the embedded indices.
            let runtime = match (&shard, &loaded.shards_payload) {
                (Some(config), Some(payload)) => Some(Arc::new(ShardRuntime::from_indices(
                    &loaded.graph,
                    decode_shards_section(payload, &loaded.graph, &schema, config.threads)
                        .map_err(|e| format!("{}: {e}", path.display()))?,
                    config.threads,
                ))),
                _ => None,
            };
            let mut engine = Engine::with_indices(loaded.graph, indices);
            match (runtime, shard) {
                (Some(rt), _) => engine = engine.with_shard_runtime(rt),
                (None, Some(config)) => engine = engine.with_sharding(config),
                (None, None) => {}
            }
            (engine, len, " (embedded in snapshot)".to_string())
        }
        (None, schema_path) => {
            let schema =
                load_or_discover_schema(&loaded.graph, schema_path, &discovery_config(&args)?)?;
            let desc = match schema_path {
                Some(p) => format!(" (from {})", p.display()),
                None => " (discovered)".into(),
            };
            let len = schema.len();
            let mut engine = Engine::new(loaded.graph, &schema);
            if let Some(config) = shard {
                engine = engine.with_sharding(config);
            }
            (engine, len, desc)
        }
    };

    writeln!(
        out,
        "dataset {}: {} nodes, {} edges; schema: {} constraints{}",
        path.display(),
        engine.graph().live_node_count(),
        engine.graph().edge_count(),
        schema_len,
        schema_desc
    )?;
    let Some(pattern_path) = pattern_path else {
        // --workload: run every manifest query closed-loop and aggregate.
        let manifest_path = args.flag("workload").expect("checked above");
        return run_workload(&engine, manifest_path, strategy, show, out);
    };
    let pattern_text =
        std::fs::read_to_string(pattern_path).map_err(|e| format!("{pattern_path}: {e}"))?;
    let pattern = parse_pattern(&pattern_text, engine.graph().interner().clone())
        .map_err(|e| format!("{pattern_path}: {e}"))?;
    writeln!(
        out,
        "pattern {}: {} nodes, {} edges",
        pattern_path,
        pattern.node_count(),
        pattern.edge_count()
    )?;
    if let Some(rt) = engine.shard_runtime() {
        writeln!(
            out,
            "partitioned execution: {} shards ({:?}), {} worker threads",
            rt.partitions(),
            rt.config().scheme,
            rt.threads()
        )?;
    }

    let mut builder = QueryRequest::build(pattern.clone()).semantics(semantics);
    if let Some(kind) = strategy {
        builder = builder.strategy(kind);
    }
    if args.flag("max-matches").is_some() {
        builder = builder.max_matches(args.flag_or("max-matches", 0usize)?);
    }
    if args.flag("step-budget").is_some() {
        builder = builder.step_budget(args.flag_or("step-budget", 0u64)?);
    }
    let request = builder.explain(args.switch("explain")).finish();
    let response = engine.execute(&request)?;
    report(&response, &pattern, &engine, show, out)?;
    Ok(())
}

/// Closed-loop manifest runner behind `--workload FILE`: executes every
/// query of a `bgpq workload` manifest through the engine and reports
/// latency percentiles, the strategy mix and the aggregate fragment size.
fn run_workload(
    engine: &Engine,
    manifest_path: &str,
    strategy: Option<StrategyKind>,
    show: usize,
    out: &mut dyn Write,
) -> Result<(), Box<dyn Error>> {
    let text =
        std::fs::read_to_string(manifest_path).map_err(|e| format!("{manifest_path}: {e}"))?;
    let manifest = parse_manifest(&text).map_err(|e| format!("{manifest_path}: {e}"))?;
    let bounded_flagged = manifest.iter().filter(|q| q.bounded).count();
    writeln!(
        out,
        "workload {manifest_path}: {} queries ({} bounded / {} unbounded)",
        manifest.len(),
        bounded_flagged,
        manifest.len() - bounded_flagged
    )?;

    let graph_nodes = engine.graph().live_node_count();
    let mut latency = LatencyHistogram::new();
    let mut strategies: std::collections::BTreeMap<String, usize> = Default::default();
    let (mut fragment_nodes, mut fragment_runs) = (0u64, 0u64);
    let mut refused = 0usize;
    for (ran, q) in manifest.iter().enumerate() {
        let pattern = parse_pattern(&q.pattern, engine.graph().interner().clone())
            .map_err(|e| format!("{manifest_path}: query {}: {e}", q.index))?;
        let mut builder = QueryRequest::build(pattern).semantics(q.semantics);
        if let Some(kind) = strategy {
            builder = builder.strategy(kind);
        }
        let response = match engine.execute(&builder.finish()) {
            Ok(response) => response,
            // Forcing --strategy bounded makes the engine refuse the
            // manifest's unbounded-flagged queries; that is a data point of
            // the run, not an error.
            Err(_) if !q.bounded => {
                refused += 1;
                continue;
            }
            Err(e) => return Err(format!("{manifest_path}: query {}: {e}", q.index).into()),
        };
        latency.record(response.stats.total_nanos / 1_000);
        *strategies.entry(response.strategy.to_string()).or_default() += 1;
        let answers = match &response.answer {
            QueryAnswer::Matches(matches) => matches.len(),
            QueryAnswer::Simulation(relation) => relation.pair_count(),
        };
        let mut line = format!(
            "  q{} {} {}: {} strategy, {} answers, {}",
            q.index,
            q.shape.map_or("?", |s| s.name()),
            if q.bounded { "bounded" } else { "unbounded" },
            response.strategy,
            answers,
            fmt_nanos(response.stats.total_nanos),
        );
        if let Some(fetch) = &response.stats.fetch {
            fragment_nodes += fetch.fragment_nodes as u64;
            fragment_runs += 1;
            line.push_str(&format!(", |G_Q| = {} nodes", fetch.fragment_nodes));
        }
        if ran < show {
            writeln!(out, "{line}")?;
        }
    }

    let mut line = format!("ran {} queries", manifest.len() - refused);
    if refused > 0 {
        line.push_str(&format!(" ({refused} refused by the forced strategy)"));
    }
    if !strategies.is_empty() {
        let mix: Vec<String> = strategies.iter().map(|(k, v)| format!("{k} {v}")).collect();
        line.push_str(&format!("; strategies: {}", mix.join(", ")));
    }
    writeln!(out, "{line}")?;
    if latency.count() > 0 {
        writeln!(
            out,
            "latency: p50 {} µs, p95 {} µs, p99 {} µs, mean {} µs, max {} µs",
            latency.quantile(0.5),
            latency.quantile(0.95),
            latency.quantile(0.99),
            latency.mean(),
            latency.max()
        )?;
    }
    if fragment_runs > 0 {
        let avg = fragment_nodes as f64 / fragment_runs as f64;
        writeln!(
            out,
            "fragments: avg |G_Q| = {avg:.1} nodes ({:.2}% of |G|) over {fragment_runs} \
             index-fetched runs",
            100.0 * avg / graph_nodes.max(1) as f64
        )?;
    }
    Ok(())
}

pub(crate) fn parse_semantics(raw: Option<&str>) -> Result<Semantics, Box<dyn Error>> {
    match raw {
        None | Some("iso" | "isomorphism") => Ok(Semantics::Isomorphism),
        Some("sim" | "simulation") => Ok(Semantics::Simulation),
        Some(other) => Err(format!("invalid --semantics {other:?} (iso or sim)").into()),
    }
}

pub(crate) fn parse_strategy(raw: Option<&str>) -> Result<Option<StrategyKind>, Box<dyn Error>> {
    match raw {
        None | Some("auto") => Ok(None),
        Some("bounded") => Ok(Some(StrategyKind::Bounded)),
        Some("seeded") => Ok(Some(StrategyKind::IndexSeeded)),
        Some("baseline") => Ok(Some(StrategyKind::Baseline)),
        Some(other) => {
            Err(format!("invalid --strategy {other:?} (auto, bounded, seeded or baseline)").into())
        }
    }
}

fn node_display(pattern: &Pattern, u: bgpq_pattern::PatternNodeId) -> String {
    match pattern.node_name(u) {
        Some(name) => name.to_string(),
        None => u.to_string(),
    }
}

fn report(
    response: &QueryResponse,
    pattern: &Pattern,
    engine: &Engine,
    show: usize,
    out: &mut dyn Write,
) -> Result<(), Box<dyn Error>> {
    let graph = engine.graph();
    // Reduce the answer to display views and go through the shared
    // renderer: `bgpq client` renders wire frames through the same code,
    // which is what keeps local and remote output byte-identical.
    let view = match &response.answer {
        QueryAnswer::Matches(matches) => AnswerView::Matches {
            total: matches.len(),
            rows: matches
                .iter()
                .take(show)
                .map(|m| {
                    pattern
                        .nodes()
                        .map(|u| {
                            let v = m.node_for(u);
                            BindingView {
                                node: node_display(pattern, u),
                                id: v.0,
                                label: graph.label_name(v).to_string(),
                                value: graph.value(v).to_string(),
                            }
                        })
                        .collect()
                })
                .collect(),
        },
        QueryAnswer::Simulation(relation) => AnswerView::Simulation {
            pairs: relation.pair_count(),
            rows: pattern
                .nodes()
                .map(|u| {
                    let vs = relation.matches_of(u);
                    SimRowView {
                        node: node_display(pattern, u),
                        label: pattern.label_name(u),
                        total: vs.len(),
                        ids: vs.iter().take(show).map(|v| v.0).collect(),
                    }
                })
                .collect(),
        },
    };
    write_answer(out, &response.strategy.to_string(), &view, show)?;

    let stats = &response.stats;
    let mut line = format!(
        "stats: plan {}{}",
        fmt_nanos(stats.plan_nanos),
        stats
            .plan_cache
            .map(|o| format!(" ({o})"))
            .unwrap_or_default()
    );
    if let Some(fetch) = &stats.fetch {
        let g_size = graph.live_node_count();
        line.push_str(&format!(
            " · fetch+build {} (|G_Q| = {} nodes / {} edges, {:.1}% of |G|, {} index lookups)",
            fmt_nanos(stats.fragment_build_nanos),
            fetch.fragment_nodes,
            fetch.fragment_edges,
            if g_size == 0 {
                0.0
            } else {
                100.0 * fetch.fragment_nodes as f64 / g_size as f64
            },
            fetch.index_lookups
        ));
    }
    line.push_str(&format!(
        " · match {} · total {}",
        fmt_nanos(stats.match_nanos),
        fmt_nanos(stats.total_nanos)
    ));
    writeln!(out, "{line}")?;
    if let (Some(bound), Some(util)) = (stats.worst_case_nodes, stats.fetch_utilization()) {
        writeln!(
            out,
            "bound: worst-case {} fetched nodes, used {:.1}%",
            bound,
            100.0 * util
        )?;
    }
    if stats.aborted {
        writeln!(
            out,
            "WARNING: step budget exhausted; the answer may be incomplete"
        )?;
    }

    if let Some(explain) = &response.explain {
        for line in explain.render_lines(pattern, engine.indices().schema(), graph.interner()) {
            writeln!(out, "{line}")?;
        }
    }
    Ok(())
}
