//! `bgpq compile` — compile a dataset into a `.bgpq` binary snapshot with
//! its access schema and pre-built indices embedded.
//!
//! This is the paper's one-time preprocessing phase made literal: parse the
//! text dataset once, discover (or load) the schema once, build the indices
//! once, and persist all three. Every later `bgpq query --snapshot` (or
//! `load`/`index`/`serve-demo`) bulk-loads the result without re-paying any
//! of those costs.

use super::{
    dataset_source, discovery_config, fmt_nanos, knob_summary, resolve_scenario, scenario_config,
    shard_config, DISCOVERY_FLAGS, SCENARIO_FLAGS, SHARD_FLAGS, SIMPLE_SWITCH, SNAPSHOT_FLAG,
};
use crate::args::Args;
use crate::dataset::{
    default_edge_label, load_dataset_full, load_or_discover_schema, Format, LoadedDataset,
};
use bgpq_access::DEFAULT_MAX_COMBINATIONS_PER_NODE;
use bgpq_engine::{encode_shards_section, save_snapshot, AccessIndexSet, ShardedIndexSet};
use bgpq_workload::stream_graph_counted;
use std::error::Error;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

const USAGE: &str = "USAGE: bgpq compile <dataset|--gen SCENARIO> --out FILE.bgpq
                     [--schema FILE] [--cap N] [discovery flags]
                     [--partitions N] [--threads N] [--scheme hash|label-range]
                     [--format text|jsonl|edges|snapshot] [--label NAME]
                     [--scale N] [--seed N] [--zipf S] [--hot-fraction F]
                     [--domain D]

Loads the dataset, obtains an access schema (--schema FILE or discovery),
builds one index per constraint (--cap bounds the combinations materialized
per target node) and writes graph + schema + indices into one binary
snapshot. Querying the snapshot later re-pays none of these costs.
With --gen SCENARIO the built-in generator streams records straight into
the graph builder — no dataset file and no record buffer, so compiling a
--scale 1000000 snapshot is bounded by the graph itself, not the stream.
With --partitions N the indices are built per partition on --threads
workers and the snapshot gains a Shards section, so later loads decode the
per-shard blobs in parallel (plain readers skip the section). Recompiling
an existing snapshot (snapshot input, no --schema) reuses its embedded
schema and indices verbatim.";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let mut value_flags = vec!["format", "label", "schema", "snapshot", "out", "cap", "gen"];
    value_flags.extend_from_slice(&SHARD_FLAGS);
    value_flags.extend_from_slice(&DISCOVERY_FLAGS);
    value_flags.extend_from_slice(&SCENARIO_FLAGS);
    let args = Args::parse(argv, &value_flags, &[SIMPLE_SWITCH, "help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let out_path = Path::new(
        args.flag("out")
            .ok_or("missing --out FILE.bgpq (see `bgpq compile --help`)")?,
    );
    let cap: usize = args.flag_or("cap", DEFAULT_MAX_COMBINATIONS_PER_NODE)?;
    let schema_path = args.flag("schema").map(Path::new);

    let (loaded, source_display) = match args.flag("gen") {
        Some(name) => {
            if args.positional(0).is_some() || args.flag(SNAPSHOT_FLAG).is_some() {
                return Err("--gen conflicts with a dataset path or --snapshot".into());
            }
            let scenario = resolve_scenario(name)?;
            let config = scenario_config(&args)?;
            let started = Instant::now();
            // Streaming path: records go straight from the generator into
            // the graph builder, never through a Vec or a dataset file.
            let (graph, records) = stream_graph_counted(scenario, &config);
            writeln!(
                out,
                "generated {} graph (scale {}, seed {}{}): {} nodes, {} edges \
                 streamed from {} records in {}",
                scenario,
                config.scale,
                config.seed,
                knob_summary(&config),
                graph.live_node_count(),
                graph.edge_count(),
                records,
                fmt_nanos(started.elapsed().as_nanos() as u64)
            )?;
            let loaded = LoadedDataset {
                graph,
                format: Format::Text,
                embedded: None,
                shards_payload: None,
            };
            (loaded, format!("gen:{scenario}"))
        }
        None => {
            let (path, format) = dataset_source(&args)?;
            let label = args.flag("label").unwrap_or(default_edge_label());
            let started = Instant::now();
            let loaded = load_dataset_full(path, format, label)?;
            writeln!(
                out,
                "dataset {} ({}): {} nodes, {} edges, loaded in {}",
                path.display(),
                loaded.format,
                loaded.graph.live_node_count(),
                loaded.graph.edge_count(),
                fmt_nanos(started.elapsed().as_nanos() as u64)
            )?;
            let display = path.display().to_string();
            (loaded, display)
        }
    };

    let shard = shard_config(&args)?;
    let (graph, schema, indices, sharded, source) = match (loaded.embedded, schema_path) {
        (Some(_), Some(_)) => {
            return Err(
                "--schema conflicts with a snapshot input's embedded schema; \
                 recompile from the original dataset instead"
                    .into(),
            );
        }
        (Some((schema, indices)), None) => match shard {
            // Repartitioning an existing snapshot: the per-shard sets are
            // rebuilt (the embedded schema is kept), and the embedded plain
            // indices are replaced by the shard union so the two sections
            // can never disagree.
            Some(config) => {
                let spec = config.spec_for(&loaded.graph);
                let s = ShardedIndexSet::build_with_cap(
                    &loaded.graph,
                    &schema,
                    &spec,
                    cap,
                    config.threads,
                );
                let merged = s.merged();
                (loaded.graph, schema, merged, Some(s), "repartitioned")
            }
            None => (loaded.graph, schema, indices, None, "reused from snapshot"),
        },
        (None, schema_path) => {
            let schema =
                load_or_discover_schema(&loaded.graph, schema_path, &discovery_config(&args)?)?;
            let started = Instant::now();
            let (indices, sharded) = match shard {
                Some(config) => {
                    let spec = config.spec_for(&loaded.graph);
                    let s = ShardedIndexSet::build_with_cap(
                        &loaded.graph,
                        &schema,
                        &spec,
                        cap,
                        config.threads,
                    );
                    (s.merged(), Some(s))
                }
                None => (
                    AccessIndexSet::build_with_cap(&loaded.graph, &schema, cap),
                    None,
                ),
            };
            let build_nanos = started.elapsed().as_nanos() as u64;
            writeln!(
                out,
                "schema: {} constraints ({}); indices built in {}{}",
                schema.len(),
                match schema_path {
                    Some(p) => format!("from {}", p.display()),
                    None => "discovered".into(),
                },
                fmt_nanos(build_nanos),
                match &sharded {
                    Some(s) => format!(" ({} partitions)", s.partition_count()),
                    None => String::new(),
                }
            )?;
            (loaded.graph, schema, indices, sharded, "freshly built")
        }
    };

    let started = Instant::now();
    match &sharded {
        Some(s) => {
            let file = std::fs::File::create(out_path)
                .map_err(|e| format!("{}: {e}", out_path.display()))?;
            bgpq_access::write_snapshot_with_sections(
                &graph,
                &indices,
                [(
                    bgpq_graph::io::snapshot::Section::Shards,
                    encode_shards_section(s),
                )],
                file,
            )
            .map_err(|e| format!("{}: {e}", out_path.display()))?;
        }
        None => save_snapshot(&graph, &indices, out_path)
            .map_err(|e| format!("{}: {e}", out_path.display()))?,
    }
    let write_nanos = started.elapsed().as_nanos() as u64;
    let bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    writeln!(
        out,
        "compiled {} -> {}: {} constraints, |index| = {} node ids ({source}{}), \
         {} bytes written in {}",
        source_display,
        out_path.display(),
        schema.len(),
        indices.total_size(),
        match &sharded {
            Some(s) => format!(", {} shards", s.partition_count()),
            None => String::new(),
        },
        bytes,
        fmt_nanos(write_nanos)
    )?;
    Ok(())
}
