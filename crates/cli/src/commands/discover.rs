//! `bgpq discover` — discover an access schema from a dataset.

use super::{discovery_config, DISCOVERY_FLAGS, SIMPLE_SWITCH};
use crate::args::Args;
use crate::commands::load::parse_format;
use crate::dataset::{default_edge_label, load_dataset};
use bgpq_engine::{discover_schema, save_schema, ConstraintKind};
use std::error::Error;
use std::io::Write;
use std::path::Path;

const USAGE: &str = "USAGE: bgpq discover <dataset> [--simple] [--max-global N] [--max-unary N]
                     [--max-pair N] [--max-constraints N] [--out FILE]
                     [--format text|jsonl|edges] [--label NAME]

Runs the four discovery recipes of the paper's Section II (label counts,
fanout bounds, FDs, grouped constraints) and prints the resulting schema.
--simple skips the pair-discovery pass; --out serializes the schema so later
runs can skip discovery (`bgpq query --schema FILE`).";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let mut value_flags = vec!["format", "label", "out"];
    value_flags.extend_from_slice(&DISCOVERY_FLAGS);
    let args = Args::parse(argv, &value_flags, &[SIMPLE_SWITCH, "help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let path = Path::new(args.require_positional(0, "dataset")?);
    let format = parse_format(&args)?;
    let label = args.flag("label").unwrap_or(default_edge_label());
    let (graph, _) = load_dataset(path, format, label)?;

    let config = discovery_config(&args)?;
    let schema = discover_schema(&graph, &config);
    writeln!(
        out,
        "discovered {} constraints over {} (||A|| = {}, |A| = {})",
        schema.len(),
        path.display(),
        schema.len(),
        schema.total_length()
    )?;
    let kind_name = |k: ConstraintKind| match k {
        ConstraintKind::Global => "global ",
        ConstraintKind::Unary => "unary  ",
        ConstraintKind::General => "general",
    };
    for (id, constraint) in schema.iter_with_ids() {
        writeln!(
            out,
            "  {id}: {} {}",
            kind_name(constraint.kind()),
            constraint.display_with(graph.interner())
        )?;
    }
    if let Some(out_path) = args.flag("out") {
        save_schema(&schema, graph.interner(), out_path)?;
        writeln!(out, "wrote {out_path}")?;
    }
    Ok(())
}
