//! `bgpq workload` — generate a parameterized query workload manifest from
//! a dataset (or a streamed scenario graph) and its access schema.
//!
//! The generator walks the schema's coverage structure, so every query it
//! flags `bounded` is verified to plan under the schema and every query it
//! flags `unbounded` is verified to be rejected by the planner. The output
//! is a JSON-lines manifest consumable by `bgpq query --workload` and the
//! engine's open-loop bench.

use super::{
    dataset_source, discovery_config, knob_summary, resolve_scenario, scenario_config,
    DISCOVERY_FLAGS, SCENARIO_FLAGS, SIMPLE_SWITCH, SNAPSHOT_FLAG,
};
use crate::args::Args;
use crate::commands::query::parse_semantics;
use crate::dataset::{default_edge_label, load_dataset_full, load_or_discover_schema};
use bgpq_engine::AccessSchema;
use bgpq_graph::Graph;
use bgpq_workload::{generate_workload, stream_graph, Shape, Workload, WorkloadConfig};
use std::error::Error;
use std::io::Write;
use std::path::Path;

const USAGE: &str = "USAGE: bgpq workload <dataset|--snapshot FILE|--gen SCENARIO> [--out FILE]
                     [--queries N] [--seed N] [--bounded-fraction F]
                     [--selectivity F|none] [--min-nodes N] [--max-nodes N]
                     [--semantics iso|sim] [--shapes chain=2,star=1,...]
                     [--schema FILE] [discovery flags]
                     [--format text|jsonl|edges|snapshot] [--label NAME]
                     [--scale N] [--zipf S] [--hot-fraction F] [--domain D]

Generates N parameterized pattern queries against the dataset's access
schema (embedded in a snapshot, loaded from --schema, or discovered) and
writes a JSON-lines manifest: one query per line with its shape, semantics,
boundedness flag, selectivity target and pattern text. Bounded queries are
verified to plan under the schema; unbounded queries are verified to be
rejected by the planner.

With --gen SCENARIO the graph is streamed from the built-in generator
instead of a file; --seed then drives both the graph and the workload, so
one seed pins the whole benchmark input. --shapes takes comma-separated
shape names with optional integer weights (chain, star, cycle, tree).
--selectivity none drops the root value predicates entirely.";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let mut value_flags = vec![
        "format",
        "label",
        "schema",
        "snapshot",
        "out",
        "gen",
        "queries",
        "bounded-fraction",
        "selectivity",
        "min-nodes",
        "max-nodes",
        "semantics",
        "shapes",
    ];
    value_flags.extend_from_slice(&DISCOVERY_FLAGS);
    value_flags.extend_from_slice(&SCENARIO_FLAGS);
    let args = Args::parse(argv, &value_flags, &[SIMPLE_SWITCH, "help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }

    let defaults = WorkloadConfig::default();
    let config = WorkloadConfig {
        queries: args.flag_or("queries", defaults.queries)?,
        seed: args.flag_or("seed", defaults.seed)?,
        bounded_fraction: args.flag_or("bounded-fraction", defaults.bounded_fraction)?,
        selectivity: match args.flag("selectivity") {
            None => defaults.selectivity,
            Some("none") => None,
            Some(raw) => Some(
                raw.parse::<f64>()
                    .ok()
                    .filter(|s| (0.0..=1.0).contains(s))
                    .ok_or_else(|| format!("invalid --selectivity {raw:?} (0..=1 or none)"))?,
            ),
        },
        min_nodes: args.flag_or("min-nodes", defaults.min_nodes)?,
        max_nodes: args.flag_or("max-nodes", defaults.max_nodes)?,
        semantics: parse_semantics(args.flag("semantics"))?,
        shape_weights: match args.flag("shapes") {
            None => defaults.shape_weights,
            Some(raw) => parse_shapes(raw)?,
        },
    };
    if !(0.0..=1.0).contains(&config.bounded_fraction) {
        return Err("--bounded-fraction expects a value in [0, 1]".into());
    }

    let (graph, schema, source) = load_graph_and_schema(&args, out)?;
    let workload = generate_workload(&graph, &schema, &config)?;

    let manifest = workload.to_manifest();
    let written = match args.flag("out") {
        Some(path) => {
            std::fs::write(path, &manifest).map_err(|e| format!("{path}: {e}"))?;
            format!(" -> {path} ({} bytes)", manifest.len())
        }
        None => {
            out.write_all(manifest.as_bytes())?;
            String::new()
        }
    };

    let [chains, stars, cycles, trees] = workload.shape_counts();
    writeln!(
        out,
        "workload over {source}: {} queries ({} bounded / {} unbounded; \
         chain {chains}, star {stars}, cycle {cycles}, tree {trees}), seed {}{written}",
        workload.queries.len(),
        workload.bounded_count(),
        workload.queries.len() - workload.bounded_count(),
        config.seed,
    )?;
    summarize(&workload, out)?;
    Ok(())
}

/// Resolves the graph + schema input shared with `query`/`compile`: a
/// dataset path or snapshot, or a streamed `--gen` scenario.
fn load_graph_and_schema(
    args: &Args,
    out: &mut dyn Write,
) -> Result<(Graph, AccessSchema, String), Box<dyn Error>> {
    let schema_path = args.flag("schema").map(Path::new);
    if let Some(name) = args.flag("gen") {
        if args.positional(0).is_some() || args.flag(SNAPSHOT_FLAG).is_some() {
            return Err("--gen conflicts with a dataset path or --snapshot".into());
        }
        let scenario = resolve_scenario(name)?;
        let config = scenario_config(args)?;
        let graph = stream_graph(scenario, &config);
        let schema = load_or_discover_schema(&graph, schema_path, &discovery_config(args)?)?;
        writeln!(
            out,
            "generated {} graph (scale {}, seed {}{}): {} nodes, {} edges; \
             schema: {} constraints",
            scenario,
            config.scale,
            config.seed,
            knob_summary(&config),
            graph.live_node_count(),
            graph.edge_count(),
            schema.len()
        )?;
        return Ok((graph, schema, format!("gen:{scenario}")));
    }
    let (path, format) = dataset_source(args)?;
    let label = args.flag("label").unwrap_or(default_edge_label());
    let loaded = load_dataset_full(path, format, label)?;
    let (schema, desc) = match (loaded.embedded, schema_path) {
        (Some(_), Some(_)) => {
            return Err(
                "--schema conflicts with a snapshot input's embedded schema; \
                 generate from the original dataset to use a different schema"
                    .into(),
            )
        }
        (Some((schema, _)), None) => (schema, " (embedded in snapshot)".to_string()),
        (None, schema_path) => {
            let schema =
                load_or_discover_schema(&loaded.graph, schema_path, &discovery_config(args)?)?;
            let desc = match schema_path {
                Some(p) => format!(" (from {})", p.display()),
                None => " (discovered)".into(),
            };
            (schema, desc)
        }
    };
    writeln!(
        out,
        "dataset {}: {} nodes, {} edges; schema: {} constraints{}",
        path.display(),
        loaded.graph.live_node_count(),
        loaded.graph.edge_count(),
        schema.len(),
        desc
    )?;
    let display = path.display().to_string();
    Ok((loaded.graph, schema, display))
}

/// Parses `--shapes chain=2,star,cycle=0` into [`Shape::ALL`]-indexed
/// weights. Bare names weigh 1; omitted shapes weigh 0.
fn parse_shapes(raw: &str) -> Result<[u32; 4], String> {
    let mut weights = [0u32; 4];
    for part in raw.split(',') {
        let (name, weight) = match part.split_once('=') {
            Some((n, w)) => (
                n.trim(),
                w.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("invalid shape weight {w:?} in --shapes"))?,
            ),
            None => (part.trim(), 1),
        };
        let shape = Shape::from_name(name)
            .ok_or_else(|| format!("unknown shape {name:?} (chain, star, cycle or tree)"))?;
        let i = Shape::ALL.iter().position(|&s| s == shape).unwrap();
        weights[i] += weight;
    }
    if weights.iter().all(|&w| w == 0) {
        return Err("--shapes needs at least one positive weight".into());
    }
    Ok(weights)
}

/// Prints the aggregate selectivity and fragment-bound lines.
fn summarize(workload: &Workload, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let achieved: Vec<f64> = workload
        .queries
        .iter()
        .filter_map(|q| q.selectivity_achieved)
        .collect();
    if !achieved.is_empty() {
        writeln!(
            out,
            "selectivity: achieved mean {:.3} over {} predicated roots",
            achieved.iter().sum::<f64>() / achieved.len() as f64,
            achieved.len()
        )?;
    }
    let bounds: Vec<u64> = workload
        .queries
        .iter()
        .filter_map(|q| q.worst_case_nodes)
        .collect();
    if !bounds.is_empty() {
        writeln!(
            out,
            "fragment bound: worst-case fetch mean {} nodes, max {} (over {} bounded plans)",
            bounds.iter().sum::<u64>() / bounds.len() as u64,
            bounds.iter().max().unwrap(),
            bounds.len()
        )?;
    }
    Ok(())
}
