//! `bgpq client` — query a `bgpq serve` instance over TCP.

use super::fmt_nanos;
use crate::args::Args;
use crate::render::{write_answer, AnswerView, BindingView, SimRowView};
use bgpq_net::{AnswerKind, Client, QueryOutcome, QuerySpec};
use std::collections::BTreeMap;
use std::error::Error;
use std::io::{BufRead, Write};

const USAGE: &str = "USAGE: bgpq client --addr HOST:PORT [--name ID]
                     [--pattern FILE] [--batch FILE,FILE,...]
                     [--semantics iso|sim]
                     [--strategy auto|bounded|seeded|baseline]
                     [--max-matches N] [--step-budget N] [--deadline-ms N]
                     [--show N] [--explain] [--stats] [--ping]

Connects to a `bgpq serve` instance. With --pattern the query runs once
and the answer is printed exactly like a local `bgpq query`; --batch
sends several pattern files as ONE wire request, executed on a single
snapshot with index lookups shared across the queries; --ping and
--stats are one-shot probes. Without any of those the client enters a
small REPL (`help` lists its commands). Typed server rejections —
overloaded, draining, budget_exceeded, unbounded — are reported with
their error code so scripts can branch on them.";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let value_flags = [
        "addr",
        "name",
        "pattern",
        "batch",
        "semantics",
        "strategy",
        "max-matches",
        "step-budget",
        "deadline-ms",
        "show",
    ];
    let args = Args::parse(argv, &value_flags, &["explain", "stats", "ping", "help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let addr = args
        .flag("addr")
        .ok_or("missing --addr HOST:PORT (see `bgpq client --help`)")?;
    let name = args.flag("name").unwrap_or("bgpq-client");
    let show = args.flag_or("show", 10usize)?;

    let mut client = Client::connect(addr, name).map_err(|e| format!("{addr}: {e}"))?;
    writeln!(
        out,
        "connected to {} at {} (epoch {})",
        client.server_name(),
        addr,
        client.epoch()
    )?;

    let mut spec = QuerySpec::new(String::new());
    spec.semantics = super::query::parse_semantics(args.flag("semantics"))?;
    spec.strategy = super::query::parse_strategy(args.flag("strategy"))?;
    if args.flag("max-matches").is_some() {
        spec.max_matches = Some(args.flag_or("max-matches", 0usize)?);
    }
    if args.flag("step-budget").is_some() {
        spec.step_budget = Some(args.flag_or("step-budget", 0u64)?);
    }
    if args.flag("deadline-ms").is_some() {
        spec.deadline_ms = Some(args.flag_or("deadline-ms", 0u64)?);
    }
    spec.explain = args.switch("explain");

    let one_shot = args.switch("ping")
        || args.switch("stats")
        || args.flag("pattern").is_some()
        || args.flag("batch").is_some();
    if args.switch("ping") {
        let epoch = client.ping().map_err(|e| e.to_string())?;
        writeln!(out, "pong: epoch {epoch}")?;
    }
    if let Some(pattern_path) = args.flag("pattern") {
        spec.pattern =
            std::fs::read_to_string(pattern_path).map_err(|e| format!("{pattern_path}: {e}"))?;
        let outcome = client.query(&spec).map_err(|e| e.to_string())?;
        render_outcome(out, &outcome, show)?;
    }
    if let Some(list) = args.flag("batch") {
        let files: Vec<&str> = list.split(',').filter(|f| !f.is_empty()).collect();
        run_batch(&mut client, &spec, &files, show, out)?;
    }
    if args.switch("stats") {
        let stats = client.stats().map_err(|e| e.to_string())?;
        writeln!(out, "{}", stats.render())?;
    }
    if one_shot {
        client.goodbye().map_err(|e| e.to_string())?;
        return Ok(());
    }
    repl(&mut client, spec, show, out)
}

/// Sends the pattern files as one `batch` request (one snapshot, shared
/// index lookups) and renders each slot's answer — or its own error — in
/// request order.
fn run_batch(
    client: &mut Client,
    base: &QuerySpec,
    files: &[&str],
    show: usize,
    out: &mut dyn Write,
) -> Result<(), Box<dyn Error>> {
    let mut specs = Vec::with_capacity(files.len());
    for path in files {
        let mut spec = base.clone();
        spec.pattern = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        specs.push(spec);
    }
    let outcomes = client.batch(&specs).map_err(|e| e.to_string())?;
    for (path, outcome) in files.iter().zip(&outcomes) {
        writeln!(out, "=== {path} ===")?;
        match outcome {
            Ok(outcome) => render_outcome(out, outcome, show)?,
            Err(e) => writeln!(out, "error: {e}")?,
        }
    }
    Ok(())
}

/// Renders a received answer through the same renderer `bgpq query` uses,
/// so the `strategy:`/`answer:` block is byte-identical to a local run.
fn render_outcome(
    out: &mut dyn Write,
    outcome: &QueryOutcome,
    show: usize,
) -> Result<(), Box<dyn Error>> {
    let view = match outcome.header.kind {
        AnswerKind::Matches => AnswerView::Matches {
            total: outcome.header.total as usize,
            rows: outcome
                .matches
                .iter()
                .take(show)
                .map(|row| {
                    row.iter()
                        .map(|b| BindingView {
                            node: b.node.clone(),
                            id: b.id,
                            label: b.label.clone(),
                            value: b.value.clone(),
                        })
                        .collect()
                })
                .collect(),
        },
        AnswerKind::Simulation => {
            let mut rows: BTreeMap<u32, SimRowView> = BTreeMap::new();
            for chunk in &outcome.sim {
                let row = rows.entry(chunk.node_index).or_insert_with(|| SimRowView {
                    node: chunk.node.clone(),
                    label: chunk.label.clone(),
                    total: chunk.total as usize,
                    ids: Vec::new(),
                });
                row.ids.extend_from_slice(&chunk.ids);
            }
            AnswerView::Simulation {
                pairs: outcome.header.total as usize,
                rows: rows.into_values().collect(),
            }
        }
    };
    write_answer(out, &outcome.header.strategy, &view, show)?;

    let s = &outcome.done.stats;
    let mut line = format!("stats: plan {}", fmt_nanos(s.plan_nanos));
    if let Some(nodes) = s.fragment_nodes {
        line.push_str(&format!(
            " · fetch+build {} (|G_Q| = {} nodes)",
            fmt_nanos(s.fragment_build_nanos),
            nodes
        ));
    }
    line.push_str(&format!(
        " · match {} · total {} (server, snapshot v{})",
        fmt_nanos(s.match_nanos),
        fmt_nanos(s.total_nanos),
        outcome.header.snapshot_version
    ));
    writeln!(out, "{line}")?;
    if let (Some(bound), Some(fragment)) = (s.worst_case_nodes, s.fragment_nodes) {
        if bound > 0 {
            writeln!(
                out,
                "bound: worst-case {} fetched nodes, used {:.1}%",
                bound,
                100.0 * fragment as f64 / bound as f64
            )?;
        }
    }
    if outcome.done.aborted {
        writeln!(
            out,
            "WARNING: step budget exhausted; the answer may be incomplete"
        )?;
    }
    if let Some(lines) = &outcome.done.explain {
        for line in lines {
            writeln!(out, "{line}")?;
        }
    }
    Ok(())
}

const REPL_HELP: &str = "REPL commands:
  query FILE          run the pattern file with the current settings
  batch FILE...       run several pattern files as one batched request
  semantics iso|sim   set query semantics
  strategy auto|bounded|seeded|baseline
  show N              matches/ids to display per answer
  explain on|off      request fetch plans with answers
  deadline N          per-query deadline in ms (0 clears it)
  stats               print the server's counters document
  ping                liveness probe (prints the snapshot epoch)
  quit                leave (sends goodbye)";

fn repl(
    client: &mut Client,
    mut spec: QuerySpec,
    mut show: usize,
    out: &mut dyn Write,
) -> Result<(), Box<dyn Error>> {
    writeln!(out, "interactive mode; type `help` for commands")?;
    out.flush()?;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        let mut parts = line.split_whitespace();
        let Some(command) = parts.next() else {
            continue;
        };
        let arg = parts.next();
        let result: Result<(), Box<dyn Error>> = match (command, arg) {
            ("help", _) => {
                writeln!(out, "{REPL_HELP}")?;
                Ok(())
            }
            ("quit" | "exit", _) => {
                break;
            }
            ("batch", Some(first)) => {
                let files: Vec<&str> = std::iter::once(first).chain(parts.by_ref()).collect();
                match run_batch(client, &spec, &files, show, out) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        writeln!(out, "error: {e}")?;
                        Ok(())
                    }
                }
            }
            ("query", Some(path)) => match std::fs::read_to_string(path) {
                Ok(text) => {
                    spec.pattern = text;
                    match client.query(&spec) {
                        Ok(outcome) => render_outcome(out, &outcome, show),
                        Err(e) => {
                            writeln!(out, "error: {e}")?;
                            Ok(())
                        }
                    }
                }
                Err(e) => {
                    writeln!(out, "error: {path}: {e}")?;
                    Ok(())
                }
            },
            ("semantics", Some(s)) => match super::query::parse_semantics(Some(s)) {
                Ok(semantics) => {
                    spec.semantics = semantics;
                    Ok(())
                }
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    Ok(())
                }
            },
            ("strategy", Some(s)) => match super::query::parse_strategy(Some(s)) {
                Ok(strategy) => {
                    spec.strategy = strategy;
                    Ok(())
                }
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    Ok(())
                }
            },
            ("show", Some(n)) => {
                match n.parse::<usize>() {
                    Ok(n) => show = n,
                    Err(_) => writeln!(out, "error: show expects a number")?,
                }
                Ok(())
            }
            ("explain", Some(flag)) => {
                spec.explain = flag == "on";
                Ok(())
            }
            ("deadline", Some(n)) => {
                match n.parse::<u64>() {
                    Ok(0) => spec.deadline_ms = None,
                    Ok(ms) => spec.deadline_ms = Some(ms),
                    Err(_) => writeln!(out, "error: deadline expects milliseconds")?,
                }
                Ok(())
            }
            ("stats", _) => {
                match client.stats() {
                    Ok(stats) => writeln!(out, "{}", stats.render())?,
                    Err(e) => writeln!(out, "error: {e}")?,
                }
                Ok(())
            }
            ("ping", _) => {
                match client.ping() {
                    Ok(epoch) => writeln!(out, "pong: epoch {epoch}")?,
                    Err(e) => writeln!(out, "error: {e}")?,
                }
                Ok(())
            }
            _ => {
                writeln!(out, "unknown command {line:?}; type `help`")?;
                Ok(())
            }
        };
        result?;
        out.flush()?;
    }
    Ok(())
}
