//! Subcommand implementations.

pub mod client;
pub mod compile;
pub mod discover;
pub mod gen;
pub mod index;
pub mod load;
pub mod query;
pub mod serve;
pub mod serve_demo;
pub mod workload;

use crate::args::Args;
use crate::dataset::Format;
use crate::scenario::{Scenario, ScenarioConfig};
use bgpq_engine::{DiscoveryConfig, PartitionScheme, ShardConfig};
use std::error::Error;
use std::path::Path;
use std::str::FromStr;

/// Renders a nanosecond count with a readable unit.
pub(crate) fn fmt_nanos(nanos: u64) -> String {
    match nanos {
        n if n < 1_000 => format!("{n} ns"),
        n if n < 1_000_000 => format!("{:.1} µs", n as f64 / 1_000.0),
        n if n < 1_000_000_000 => format!("{:.1} ms", n as f64 / 1_000_000.0),
        n => format!("{:.2} s", n as f64 / 1_000_000_000.0),
    }
}

/// The discovery flags shared by `discover`, `index`, `query` and
/// `serve-demo` (all of which may need to derive a schema on the fly).
pub(crate) const DISCOVERY_FLAGS: [&str; 4] =
    ["max-global", "max-unary", "max-pair", "max-constraints"];

/// The `--simple` switch name (type 1+2 discovery only).
pub(crate) const SIMPLE_SWITCH: &str = "simple";

/// The `--snapshot FILE` flag accepted by every dataset-reading subcommand.
pub(crate) const SNAPSHOT_FLAG: &str = "snapshot";

/// The partitioned-execution flags shared by `index`, `query`, `compile`,
/// `serve` and `serve-demo`.
pub(crate) const SHARD_FLAGS: [&str; 3] = ["partitions", "threads", "scheme"];

/// Builds a [`ShardConfig`] from `--partitions N`, `--threads N` and
/// `--scheme hash|label-range`. `None` when neither `--partitions` nor
/// `--threads` was given — the serial single-shard path. Giving only one of
/// the two defaults the other to it (`--threads 4` alone partitions 4 ways;
/// `--partitions 4` alone runs them on 4 workers).
pub(crate) fn shard_config(args: &Args) -> Result<Option<ShardConfig>, Box<dyn Error>> {
    let partitions: usize = args.flag_or("partitions", 0)?;
    let threads: usize = args.flag_or("threads", 0)?;
    if partitions == 0 && threads == 0 {
        if args.flag("scheme").is_some() {
            return Err("--scheme needs --partitions N (or --threads N)".into());
        }
        return Ok(None);
    }
    let partitions = if partitions == 0 { threads } else { partitions };
    let threads = if threads == 0 { partitions } else { threads };
    let mut config = ShardConfig::new(partitions, threads);
    if let Some(raw) = args.flag("scheme") {
        config = config.with_scheme(raw.parse::<PartitionScheme>()?);
    }
    Ok(Some(config))
}

/// The scenario-generator flags shared by `gen`, `compile --gen` and
/// `workload --gen`: scale/seed plus the skew knobs.
pub(crate) const SCENARIO_FLAGS: [&str; 5] = ["scale", "seed", "zipf", "hot-fraction", "domain"];

/// Parses `--name` as `T` when given, `None` when absent.
pub(crate) fn optional_flag<T: FromStr>(args: &Args, name: &str) -> Result<Option<T>, String> {
    match args.flag(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value {raw:?} for --{name}")),
    }
}

/// Resolves a scenario name against the built-in generators.
pub(crate) fn resolve_scenario(name: &str) -> Result<Scenario, String> {
    Scenario::from_name(name).ok_or_else(|| {
        format!(
            "unknown scenario {name:?} (expected {})",
            Scenario::ALL.map(Scenario::name).join(", ")
        )
    })
}

/// Builds a [`ScenarioConfig`] from the shared scenario flags.
pub(crate) fn scenario_config(args: &Args) -> Result<ScenarioConfig, Box<dyn Error>> {
    let defaults = ScenarioConfig::default();
    let mut config = ScenarioConfig::new(
        args.flag_or("scale", defaults.scale)?,
        args.flag_or("seed", defaults.seed)?,
    );
    config.zipf = optional_flag(args, "zipf")?;
    config.hot_fraction = optional_flag(args, "hot-fraction")?;
    config.domain = optional_flag(args, "domain")?;
    if config.zipf.is_some_and(|z| !z.is_finite() || z <= 0.0) {
        return Err("--zipf expects a positive exponent".into());
    }
    if config
        .hot_fraction
        .is_some_and(|h| !(0.0..=1.0).contains(&h))
    {
        return Err("--hot-fraction expects a value in [0, 1]".into());
    }
    if config.domain == Some(0) {
        return Err("--domain expects a positive cardinality".into());
    }
    Ok(config)
}

/// Renders the active skew knobs for summary lines (empty when none are
/// set, matching the plain `scale/seed` wording of older releases).
pub(crate) fn knob_summary(config: &ScenarioConfig) -> String {
    let mut s = String::new();
    if let Some(z) = config.zipf {
        s.push_str(&format!(", zipf {z}"));
    }
    if let Some(h) = config.hot_fraction {
        s.push_str(&format!(", hot {h}"));
    }
    if let Some(d) = config.domain {
        s.push_str(&format!(", domain {d}"));
    }
    s
}

/// Resolves a subcommand's dataset input: either the positional path (with
/// the usual content sniffing + `--format` override) or `--snapshot FILE`,
/// which forces the binary reader. Exactly one must be given.
pub(crate) fn dataset_source(args: &Args) -> Result<(&Path, Option<Format>), Box<dyn Error>> {
    match (args.flag(SNAPSHOT_FLAG), args.positional(0)) {
        (Some(_), Some(_)) => Err("give either a dataset path or --snapshot FILE, not both".into()),
        (Some(snap), None) => Ok((Path::new(snap), Some(Format::Snapshot))),
        (None, Some(path)) => Ok((Path::new(path), load::parse_format(args)?)),
        (None, None) => Err("missing dataset (positional path or --snapshot FILE)".into()),
    }
}

/// Builds a [`DiscoveryConfig`] from the shared discovery flags.
pub(crate) fn discovery_config(args: &Args) -> Result<DiscoveryConfig, String> {
    let defaults = if args.switch(SIMPLE_SWITCH) {
        DiscoveryConfig::simple()
    } else {
        DiscoveryConfig::default()
    };
    Ok(DiscoveryConfig {
        max_global_bound: args.flag_or("max-global", defaults.max_global_bound)?,
        max_unary_bound: args.flag_or("max-unary", defaults.max_unary_bound)?,
        max_pair_bound: args.flag_or("max-pair", defaults.max_pair_bound)?,
        max_constraints: args.flag_or("max-constraints", defaults.max_constraints)?,
        ..defaults
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_pick_sensible_units() {
        assert_eq!(fmt_nanos(999), "999 ns");
        assert_eq!(fmt_nanos(25_000), "25.0 µs");
        assert_eq!(fmt_nanos(4_879_500), "4.9 ms");
        assert_eq!(fmt_nanos(25_000_000_000), "25.00 s");
    }

    #[test]
    fn discovery_config_reads_flags() {
        let args = Args::parse(
            &["--max-global=9".into(), "--simple".into()],
            &DISCOVERY_FLAGS,
            &[SIMPLE_SWITCH],
        )
        .unwrap();
        let config = discovery_config(&args).unwrap();
        assert_eq!(config.max_global_bound, 9);
        assert!(!config.discover_pairs, "--simple disables pair discovery");
    }
}
