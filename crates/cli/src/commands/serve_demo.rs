//! `bgpq serve-demo` — drive the concurrent server with a scripted mixed
//! read/update workload.

use super::{
    dataset_source, discovery_config, fmt_nanos, shard_config, DISCOVERY_FLAGS, SHARD_FLAGS,
    SIMPLE_SWITCH,
};
use crate::args::Args;
use crate::dataset::{default_edge_label, load_dataset_full, load_or_discover_schema};
use bgpq_engine::{parse_pattern, Graph, NodeId, PatternBuilder, Predicate, QueryRequest};
use bgpq_pattern::{DetRng, Pattern};
use bgpq_serve::{Server, Update};
use std::collections::HashMap;
use std::error::Error;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

const USAGE: &str = "USAGE: bgpq serve-demo <dataset|--snapshot FILE> [--commits N] [--batch N]
                     [--queries N] [--seed N] [--schema FILE] [--pattern FILE]
                     [--partitions N] [--threads N] [--scheme hash|label-range]
                     [discovery flags] [--format text|jsonl|edges|snapshot]
                     [--label NAME]

Loads the dataset into the epoch-versioned server, then alternates scripted
update batches (node/edge inserts, edge removals, occasional node removals)
with read rounds, printing per-commit maintenance costs and closed-loop
query throughput. A compiled snapshot input starts serving from its
embedded schema and indices without rebuilding them. Without --pattern a
two-node query over the dataset's most common edge label pair is used.";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let mut value_flags = vec![
        "format", "label", "schema", "snapshot", "pattern", "commits", "batch", "queries", "seed",
    ];
    value_flags.extend_from_slice(&SHARD_FLAGS);
    value_flags.extend_from_slice(&DISCOVERY_FLAGS);
    let args = Args::parse(argv, &value_flags, &[SIMPLE_SWITCH, "help"])?;
    if args.switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    let (path, format) = dataset_source(&args)?;
    let commits: usize = args.flag_or("commits", 5)?;
    let batch: usize = args.flag_or("batch", 8)?;
    let queries: usize = args.flag_or("queries", 100)?;
    let seed: u64 = args.flag_or("seed", 42)?;

    let label = args.flag("label").unwrap_or(default_edge_label());
    let loaded = load_dataset_full(path, format, label)?;
    let schema_path = args.flag("schema").map(Path::new);
    let (graph, schema, embedded_indices) = match (loaded.embedded, schema_path) {
        (Some(_), Some(_)) => {
            return Err(
                "--schema conflicts with a snapshot input's embedded schema; \
                 serve the original dataset to use a different schema"
                    .into(),
            );
        }
        (Some((schema, indices)), None) => (loaded.graph, schema, Some(indices)),
        (None, schema_path) => {
            let schema =
                load_or_discover_schema(&loaded.graph, schema_path, &discovery_config(&args)?)?;
            (loaded.graph, schema, None)
        }
    };

    if graph.live_node_count() == 0 {
        return Err(format!("{}: dataset has no nodes to serve", path.display()).into());
    }
    let pattern = match args.flag("pattern") {
        Some(pattern_path) => {
            let text = std::fs::read_to_string(pattern_path)
                .map_err(|e| format!("{pattern_path}: {e}"))?;
            parse_pattern(&text, graph.interner().clone())
                .map_err(|e| format!("{pattern_path}: {e}"))?
        }
        None => default_pattern(&graph).ok_or("dataset has no edges; pass --pattern FILE")?,
    };
    let label_names: Vec<String> = graph
        .interner()
        .iter()
        .map(|(_, name)| name.to_string())
        .collect();
    let mut live: Vec<NodeId> = graph.nodes().filter(|&v| graph.is_live(v)).collect();

    writeln!(
        out,
        "serving {}: {} nodes, {} edges, {} constraints; {} commits x {} updates, {} queries/round",
        path.display(),
        graph.live_node_count(),
        graph.edge_count(),
        schema.len(),
        commits,
        batch,
        queries
    )?;

    let mut server = match embedded_indices {
        // Snapshot inputs hand the server pre-built indices: version 0
        // starts serving without any build cost.
        Some(indices) => Server::with_indices(graph, indices),
        None => Server::new(graph, &schema),
    };
    if let Some(config) = shard_config(&args)? {
        server = server.with_shard_config(config);
        writeln!(
            out,
            "partitioned execution: {} shards, {} worker threads",
            config.partitions, config.threads
        )?;
    }
    let request = QueryRequest::build(pattern).finish();
    let mut rng = DetRng::seed_from_u64(seed);
    let mut fresh_value = 1_000_000i64;
    let mut total_query_nanos = 0u64;
    let mut total_queries = 0u64;
    let mut read_round =
        |server: &Server, out: &mut dyn Write, round: usize| -> Result<(), Box<dyn Error>> {
            let snapshot = server.snapshot();
            let started = Instant::now();
            let mut answers = 0usize;
            for _ in 0..queries {
                answers = snapshot.execute(&request)?.answer.len();
            }
            let nanos = started.elapsed().as_nanos() as u64;
            total_query_nanos += nanos;
            total_queries += queries as u64;
            writeln!(
                out,
                "  round {round} @ v{}: {} queries in {} ({} answers each)",
                snapshot.version(),
                queries,
                fmt_nanos(nanos),
                answers
            )?;
            Ok(())
        };

    read_round(&server, out, 0)?;
    for commit_no in 1..=commits {
        let mut updates = Vec::with_capacity(batch);
        let snapshot = server.snapshot();
        let snapshot_graph = snapshot.graph();
        let mut next_id = snapshot_graph.node_count() as u32;

        // Occasionally retire one node (and implicitly its edges); exclude
        // it from this batch's endpoint sampling.
        let removed: Option<NodeId> = if commit_no % 3 == 0 && live.len() > 4 {
            let idx = rng.random_range(0..live.len());
            let node = live.swap_remove(idx);
            updates.push(Update::RemoveNode { node });
            Some(node)
        } else {
            None
        };
        let pick_live = |rng: &mut DetRng| live[rng.random_range(0..live.len())];

        while updates.len() < batch {
            match rng.random_range(0..=9) {
                // Insert a node under an existing label and wire it in.
                0..=3 => {
                    let label = &label_names[rng.random_range(0..label_names.len())];
                    fresh_value += 1;
                    updates.push(Update::AddNode {
                        label: label.clone(),
                        value: bgpq_engine::Value::Int(fresh_value),
                    });
                    let id = NodeId(next_id);
                    next_id += 1;
                    updates.push(Update::AddEdge {
                        src: pick_live(&mut rng),
                        dst: id,
                    });
                }
                // Insert an edge between existing nodes.
                4..=7 => {
                    updates.push(Update::AddEdge {
                        src: pick_live(&mut rng),
                        dst: pick_live(&mut rng),
                    });
                }
                // Remove a random existing edge (no-op when it raced away).
                _ => {
                    let src = pick_live(&mut rng);
                    let out_edges = snapshot_graph.out_neighbors(src);
                    if let Some(&dst) = rng.choose(out_edges) {
                        if Some(dst) != removed {
                            updates.push(Update::RemoveEdge { src, dst });
                        }
                    }
                }
            }
        }

        let receipt = server.commit(&updates)?;
        live.extend(receipt.new_nodes.iter().copied());
        writeln!(
            out,
            "  commit {commit_no} -> v{}: {} updates, {} deltas, maintenance {} \
             (touched {} nodes, {} contributions), commit {}",
            receipt.version,
            updates.len(),
            receipt.deltas,
            fmt_nanos(receipt.delta_apply_nanos),
            receipt.maintenance.touched_nodes,
            receipt.maintenance.refreshed_contributions,
            fmt_nanos(receipt.commit_nanos)
        )?;
        read_round(&server, out, commit_no)?;
    }

    let stats = server.stats();
    let final_snapshot = server.snapshot();
    writeln!(
        out,
        "final: epoch {}, {} nodes, {} edges; {} commits applied {} deltas \
         (maintenance {}, commits {})",
        stats.epoch,
        final_snapshot.graph().live_node_count(),
        final_snapshot.graph().edge_count(),
        stats.commits,
        stats.deltas_applied,
        fmt_nanos(stats.delta_apply_nanos),
        fmt_nanos(stats.commit_nanos)
    )?;
    let qps = if total_query_nanos == 0 {
        0.0
    } else {
        total_queries as f64 / (total_query_nanos as f64 / 1e9)
    };
    writeln!(
        out,
        "reads: {} queries in {} -> {:.0} queries/sec (single reader thread)",
        total_queries,
        fmt_nanos(total_query_nanos),
        qps
    )?;
    let engine_stats = final_snapshot.engine().stats();
    writeln!(
        out,
        "plan cache @ v{}: {} hits, {} misses, {} invalidations",
        engine_stats.snapshot_version,
        engine_stats.plan_cache_hits,
        engine_stats.plan_cache_misses,
        engine_stats.plan_cache_invalidations
    )?;
    Ok(())
}

/// A two-node pattern over the dataset's most common `(source label, target
/// label)` edge pair — guaranteed to have matches on the loaded graph.
fn default_pattern(graph: &Graph) -> Option<Pattern> {
    let mut pair_counts: HashMap<(String, String), usize> = HashMap::new();
    for e in graph.edges() {
        let key = (graph.label_name(e.src), graph.label_name(e.dst));
        *pair_counts.entry(key).or_insert(0) += 1;
    }
    let ((src, dst), _) = pair_counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))?;
    let mut builder = PatternBuilder::with_interner(graph.interner().clone());
    let a = builder.named_node("a", &src, Predicate::always());
    let b = builder.named_node("b", &dst, Predicate::always());
    builder.edge(a, b);
    Some(builder.build())
}
