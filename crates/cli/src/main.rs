use std::io::Write;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = bgpq_cli::run(&argv, &mut out) {
        // A closed stdout (`bgpq ... | head`) is not an error.
        if let Some(io) = e.downcast_ref::<std::io::Error>() {
            if io.kind() == std::io::ErrorKind::BrokenPipe {
                std::process::exit(0);
            }
        }
        let _ = out.flush();
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
