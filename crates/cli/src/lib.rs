//! # bgpq-cli
//!
//! The end-to-end command line of the `bgpq` workspace. The library crates
//! expose the paper's pipeline piecewise — graph substrate, patterns,
//! access schemas, matchers, planner, engine, server — and until this crate
//! existed only test binaries wired them together. `bgpq` turns them into a
//! runnable system over real dataset files:
//!
//! ```text
//! bgpq gen social --scale 100 --out data/social.tsv   # or: your own dataset
//! bgpq load data/social.tsv                           # parse + stats
//! bgpq discover data/social.tsv --out social.schema   # access constraints
//! bgpq index data/social.tsv --schema social.schema   # index sizes vs |G|
//! bgpq compile data/social.tsv --out social.bgpq      # one-time preprocessing
//! bgpq query --snapshot social.bgpq --pattern q.pat   # bounded evaluation
//! bgpq serve-demo --snapshot social.bgpq              # live updates + reads
//! ```
//!
//! Everything is dependency-free; commands are implemented as library
//! functions writing to any `Write`, so the integration tests drive the
//! exact code the binary runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod dataset;
pub mod render;
pub use bgpq_workload::scenario;

use std::error::Error;
use std::io::Write;

/// Usage text of the top-level binary.
pub const USAGE: &str = "bgpq — bounded graph pattern queries, end to end

USAGE: bgpq <command> [args]

COMMANDS:
  gen <scenario>       generate a built-in dataset (social, citation, products)
  load <dataset>       parse a dataset and print its statistics
  discover <dataset>   discover an access schema (optionally --out FILE)
  index <dataset>      build access indices and report their sizes
  compile <dataset>    compile dataset + schema + indices into a .bgpq snapshot
  query <dataset>      run a pattern query (--pattern FILE) through the engine
  workload <dataset>   generate a schema-aware query workload manifest
  serve-demo <dataset> drive the concurrent server with a mixed workload
  serve <dataset>      listen for bgpq-net TCP clients (--port 0 = any free)
  client               query a running `bgpq serve` (--addr HOST:PORT)
  help                 show this text

DATASET FORMATS (snapshots detected by magic bytes; otherwise by extension,
or --format text|jsonl|edges|snapshot):
  .tsv/.txt  typed n/e records   .jsonl  JSON lines   .el/.edges  edge list
  .bgpq      binary snapshot (graph + schema + indices, via `bgpq compile`)

load/index/query/serve-demo also accept `--snapshot FILE` instead of the
dataset path. Run `bgpq <command> --help` for the flags of one command.";

/// Dispatches one CLI invocation (`argv` excludes the program name),
/// writing human-readable output to `out`.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let Some(command) = argv.first().map(String::as_str) else {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    };
    let rest = &argv[1..];
    match command {
        "gen" => commands::gen::run(rest, out),
        "load" => commands::load::run(rest, out),
        "discover" => commands::discover::run(rest, out),
        "index" => commands::index::run(rest, out),
        "compile" => commands::compile::run(rest, out),
        "query" => commands::query::run(rest, out),
        "workload" => commands::workload::run(rest, out),
        "serve-demo" => commands::serve_demo::run(rest, out),
        "serve" => commands::serve::run(rest, out),
        "client" => commands::client::run(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `bgpq help`)").into()),
    }
}
