//! Loader-vs-generator equivalence and cross-format round trips.
//!
//! The scenario generators emit record streams that are consumed two ways:
//! built directly into a `Graph`, or rendered to a dataset file and read
//! back through the `bgpq-graph::io` loaders. These tests pin the contract
//! that both paths produce identical graphs for every scenario — and that
//! every lossless format round-trips `load → save → load` to the same
//! graph.

use bgpq_cli::scenario::{generate, same_graph, Scenario, ScenarioConfig};
use bgpq_graph::io::snapshot::{read_graph_snapshot, write_graph_snapshot};
use bgpq_graph::io::{
    read_graph, read_jsonl, save_graph, save_jsonl, write_edge_list, write_graph, write_jsonl,
};
use bgpq_graph::{Graph, NodeId};
use bgpq_pattern::DetRng;
use std::io::Cursor;

fn configs() -> Vec<ScenarioConfig> {
    vec![ScenarioConfig::new(30, 1), ScenarioConfig::new(100, 42)]
}

#[test]
fn generator_and_text_loader_agree_for_every_scenario() {
    for scenario in Scenario::ALL {
        for config in configs() {
            let dataset = generate(scenario, &config);
            let direct = dataset.build_graph();
            let loaded = read_graph(Cursor::new(dataset.to_text())).unwrap();
            same_graph(&direct, &loaded).unwrap_or_else(|diff| {
                panic!(
                    "{scenario} (scale {}): text loader diverged: {diff}",
                    config.scale
                )
            });
        }
    }
}

#[test]
fn generator_and_jsonl_loader_agree_for_every_scenario() {
    for scenario in Scenario::ALL {
        for config in configs() {
            let dataset = generate(scenario, &config);
            let direct = dataset.build_graph();
            let loaded = read_jsonl(Cursor::new(dataset.to_jsonl())).unwrap();
            same_graph(&direct, &loaded).unwrap_or_else(|diff| {
                panic!(
                    "{scenario} (scale {}): jsonl loader diverged: {diff}",
                    config.scale
                )
            });
        }
    }
}

/// `load → save → load` must be the identity for both lossless formats, in
/// both directions (text-saved and jsonl-saved copies of the same graph).
#[test]
fn lossless_formats_round_trip_through_files() {
    let dir = std::env::temp_dir().join("bgpq_cli_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    for scenario in Scenario::ALL {
        let dataset = generate(scenario, &ScenarioConfig::new(40, 9));
        let graph = dataset.build_graph();

        let text_path = dir.join(format!("{scenario}.tsv"));
        save_graph(&graph, &text_path).unwrap();
        let reloaded_text = bgpq_graph::io::load_graph(&text_path).unwrap();
        same_graph(&graph, &reloaded_text)
            .unwrap_or_else(|diff| panic!("{scenario}: text file round trip: {diff}"));

        let jsonl_path = dir.join(format!("{scenario}.jsonl"));
        save_jsonl(&graph, &jsonl_path).unwrap();
        let reloaded_jsonl = bgpq_graph::io::load_jsonl(&jsonl_path).unwrap();
        same_graph(&graph, &reloaded_jsonl)
            .unwrap_or_else(|diff| panic!("{scenario}: jsonl file round trip: {diff}"));

        // Cross-format: text-reloaded and jsonl-reloaded agree too.
        same_graph(&reloaded_text, &reloaded_jsonl)
            .unwrap_or_else(|diff| panic!("{scenario}: cross-format divergence: {diff}"));

        std::fs::remove_file(text_path).ok();
        std::fs::remove_file(jsonl_path).ok();
    }
}

/// In-memory round trips survive a second generation of serialization —
/// write(read(write(g))) is byte-stable for the text format, so checked-in
/// datasets don't churn when regenerated.
#[test]
fn text_serialization_is_stable() {
    let dataset = generate(Scenario::Social, &ScenarioConfig::new(25, 4));
    let graph = dataset.build_graph();
    let mut first = Vec::new();
    write_graph(&graph, &mut first).unwrap();
    let reloaded: Graph = read_graph(Cursor::new(first.clone())).unwrap();
    let mut second = Vec::new();
    write_graph(&reloaded, &mut second).unwrap();
    assert_eq!(first, second);
}

/// The edge list format is documented as lossy: labels and values are
/// dropped, and nodes only exist by appearing in an edge — so isolated
/// nodes vanish. Everything that survives (the degree structure of the
/// non-isolated subgraph) must be preserved exactly.
#[test]
fn edge_list_preserves_structure() {
    let dataset = generate(Scenario::Citation, &ScenarioConfig::new(30, 2));
    let graph = dataset.build_graph();
    let mut buf = Vec::new();
    write_edge_list(&graph, &mut buf).unwrap();
    let reloaded = bgpq_graph::io::read_edge_list(Cursor::new(buf), "node").unwrap();
    let connected = graph.nodes().filter(|&v| graph.degree(v) > 0).count();
    assert_eq!(reloaded.node_count(), connected);
    assert_eq!(reloaded.edge_count(), graph.edge_count());
    let degrees = |g: &Graph| -> Vec<usize> {
        let mut d: Vec<usize> = g.nodes().map(|v| g.degree(v)).filter(|&d| d > 0).collect();
        d.sort_unstable();
        d
    };
    assert_eq!(degrees(&graph), degrees(&reloaded));
}

fn snapshot_round_trip(graph: &Graph) -> Graph {
    let mut bytes = Vec::new();
    write_graph_snapshot(graph, &mut bytes).unwrap();
    read_graph_snapshot(Cursor::new(bytes)).unwrap()
}

/// Property suite for the binary container: 200+ seeded graphs across all
/// three scenario generators must survive `save → load` bit-exactly.
#[test]
fn snapshot_round_trips_two_hundred_seeded_scenario_graphs() {
    let mut checked = 0usize;
    for scenario in Scenario::ALL {
        for seed in 0..67u64 {
            let config = ScenarioConfig::new(8 + (seed as usize * 5) % 40, seed);
            let graph = generate(scenario, &config).build_graph();
            let loaded = snapshot_round_trip(&graph);
            same_graph(&graph, &loaded).unwrap_or_else(|diff| {
                panic!("{scenario} (scale {}, seed {seed}): {diff}", config.scale)
            });
            checked += 1;
        }
    }
    assert!(checked >= 200, "only {checked} graphs checked");
}

/// Unlike the text writer (which compacts), the snapshot must preserve
/// tombstoned slots verbatim: after a seeded mutation burst, every slot's
/// liveness — and the live content under the *original* ids — survives.
#[test]
fn snapshot_round_trips_tombstoned_graphs_slot_exactly() {
    for scenario in Scenario::ALL {
        for seed in [3u64, 17, 40] {
            let mut graph = generate(scenario, &ScenarioConfig::new(30, seed)).build_graph();
            let mut rng = DetRng::seed_from_u64(seed * 1001);
            let nodes: Vec<NodeId> = graph.nodes().collect();
            for _ in 0..nodes.len() / 4 {
                let v = nodes[rng.random_range(0..nodes.len())];
                if graph.is_live(v) {
                    graph.delete_node(v).unwrap();
                }
            }
            let fresh = graph.insert_node("late", bgpq_graph::Value::Int(1));
            let anchor = graph.nodes().find(|&v| graph.is_live(v) && v != fresh);
            if let Some(anchor) = anchor {
                graph.insert_edge(anchor, fresh).unwrap();
            }
            assert!(graph.live_node_count() < graph.node_count());

            let loaded = snapshot_round_trip(&graph);
            assert_eq!(graph.node_count(), loaded.node_count(), "slot count");
            for v in graph.nodes() {
                assert_eq!(
                    graph.is_live(v),
                    loaded.is_live(v),
                    "{scenario} seed {seed}: liveness of {v}"
                );
            }
            same_graph(&graph, &loaded)
                .unwrap_or_else(|diff| panic!("{scenario} seed {seed}: {diff}"));
        }
    }
}

/// For every checked-in dataset, compiling to a snapshot and loading it
/// back must agree with the line-oriented loader that parsed the file.
#[test]
fn snapshot_loads_agree_with_line_loaders_for_checked_in_datasets() {
    let data = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data");
    for name in ["social.tsv", "citation.jsonl", "products.jsonl"] {
        let path = data.join(name);
        let (graph, format) = bgpq_cli::dataset::load_dataset(&path, None, "node")
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_ne!(
            format,
            bgpq_cli::dataset::Format::Snapshot,
            "{name} must be a line-oriented dataset"
        );
        let loaded = snapshot_round_trip(&graph);
        same_graph(&graph, &loaded).unwrap_or_else(|diff| panic!("{name}: {diff}"));
    }
}

/// A jsonl save of the built graph reloads to the same graph as parsing the
/// generator's own jsonl emission — the writer and the emitter stay
/// interchangeable even though they order records differently.
#[test]
fn emitted_jsonl_and_saved_jsonl_load_identically() {
    let dataset = generate(Scenario::ProductCatalog, &ScenarioConfig::new(20, 5));
    let graph = dataset.build_graph();
    let mut saved = Vec::new();
    write_jsonl(&graph, &mut saved).unwrap();
    let from_saved = read_jsonl(Cursor::new(saved)).unwrap();
    let from_emitted = read_jsonl(Cursor::new(dataset.to_jsonl())).unwrap();
    same_graph(&from_saved, &from_emitted).unwrap();
}
