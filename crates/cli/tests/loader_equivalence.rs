//! Loader-vs-generator equivalence and cross-format round trips.
//!
//! The scenario generators emit record streams that are consumed two ways:
//! built directly into a `Graph`, or rendered to a dataset file and read
//! back through the `bgpq-graph::io` loaders. These tests pin the contract
//! that both paths produce identical graphs for every scenario — and that
//! every lossless format round-trips `load → save → load` to the same
//! graph.

use bgpq_cli::scenario::{generate, same_graph, Scenario, ScenarioConfig};
use bgpq_graph::io::{
    read_graph, read_jsonl, save_graph, save_jsonl, write_edge_list, write_graph, write_jsonl,
};
use bgpq_graph::Graph;
use std::io::Cursor;

fn configs() -> Vec<ScenarioConfig> {
    vec![
        ScenarioConfig { scale: 30, seed: 1 },
        ScenarioConfig {
            scale: 100,
            seed: 42,
        },
    ]
}

#[test]
fn generator_and_text_loader_agree_for_every_scenario() {
    for scenario in Scenario::ALL {
        for config in configs() {
            let dataset = generate(scenario, &config);
            let direct = dataset.build_graph();
            let loaded = read_graph(Cursor::new(dataset.to_text())).unwrap();
            same_graph(&direct, &loaded).unwrap_or_else(|diff| {
                panic!(
                    "{scenario} (scale {}): text loader diverged: {diff}",
                    config.scale
                )
            });
        }
    }
}

#[test]
fn generator_and_jsonl_loader_agree_for_every_scenario() {
    for scenario in Scenario::ALL {
        for config in configs() {
            let dataset = generate(scenario, &config);
            let direct = dataset.build_graph();
            let loaded = read_jsonl(Cursor::new(dataset.to_jsonl())).unwrap();
            same_graph(&direct, &loaded).unwrap_or_else(|diff| {
                panic!(
                    "{scenario} (scale {}): jsonl loader diverged: {diff}",
                    config.scale
                )
            });
        }
    }
}

/// `load → save → load` must be the identity for both lossless formats, in
/// both directions (text-saved and jsonl-saved copies of the same graph).
#[test]
fn lossless_formats_round_trip_through_files() {
    let dir = std::env::temp_dir().join("bgpq_cli_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    for scenario in Scenario::ALL {
        let dataset = generate(scenario, &ScenarioConfig { scale: 40, seed: 9 });
        let graph = dataset.build_graph();

        let text_path = dir.join(format!("{scenario}.tsv"));
        save_graph(&graph, &text_path).unwrap();
        let reloaded_text = bgpq_graph::io::load_graph(&text_path).unwrap();
        same_graph(&graph, &reloaded_text)
            .unwrap_or_else(|diff| panic!("{scenario}: text file round trip: {diff}"));

        let jsonl_path = dir.join(format!("{scenario}.jsonl"));
        save_jsonl(&graph, &jsonl_path).unwrap();
        let reloaded_jsonl = bgpq_graph::io::load_jsonl(&jsonl_path).unwrap();
        same_graph(&graph, &reloaded_jsonl)
            .unwrap_or_else(|diff| panic!("{scenario}: jsonl file round trip: {diff}"));

        // Cross-format: text-reloaded and jsonl-reloaded agree too.
        same_graph(&reloaded_text, &reloaded_jsonl)
            .unwrap_or_else(|diff| panic!("{scenario}: cross-format divergence: {diff}"));

        std::fs::remove_file(text_path).ok();
        std::fs::remove_file(jsonl_path).ok();
    }
}

/// In-memory round trips survive a second generation of serialization —
/// write(read(write(g))) is byte-stable for the text format, so checked-in
/// datasets don't churn when regenerated.
#[test]
fn text_serialization_is_stable() {
    let dataset = generate(Scenario::Social, &ScenarioConfig { scale: 25, seed: 4 });
    let graph = dataset.build_graph();
    let mut first = Vec::new();
    write_graph(&graph, &mut first).unwrap();
    let reloaded: Graph = read_graph(Cursor::new(first.clone())).unwrap();
    let mut second = Vec::new();
    write_graph(&reloaded, &mut second).unwrap();
    assert_eq!(first, second);
}

/// The edge list format is documented as lossy: labels and values are
/// dropped, and nodes only exist by appearing in an edge — so isolated
/// nodes vanish. Everything that survives (the degree structure of the
/// non-isolated subgraph) must be preserved exactly.
#[test]
fn edge_list_preserves_structure() {
    let dataset = generate(Scenario::Citation, &ScenarioConfig { scale: 30, seed: 2 });
    let graph = dataset.build_graph();
    let mut buf = Vec::new();
    write_edge_list(&graph, &mut buf).unwrap();
    let reloaded = bgpq_graph::io::read_edge_list(Cursor::new(buf), "node").unwrap();
    let connected = graph.nodes().filter(|&v| graph.degree(v) > 0).count();
    assert_eq!(reloaded.node_count(), connected);
    assert_eq!(reloaded.edge_count(), graph.edge_count());
    let degrees = |g: &Graph| -> Vec<usize> {
        let mut d: Vec<usize> = g.nodes().map(|v| g.degree(v)).filter(|&d| d > 0).collect();
        d.sort_unstable();
        d
    };
    assert_eq!(degrees(&graph), degrees(&reloaded));
}

/// A jsonl save of the built graph reloads to the same graph as parsing the
/// generator's own jsonl emission — the writer and the emitter stay
/// interchangeable even though they order records differently.
#[test]
fn emitted_jsonl_and_saved_jsonl_load_identically() {
    let dataset = generate(
        Scenario::ProductCatalog,
        &ScenarioConfig { scale: 20, seed: 5 },
    );
    let graph = dataset.build_graph();
    let mut saved = Vec::new();
    write_jsonl(&graph, &mut saved).unwrap();
    let from_saved = read_jsonl(Cursor::new(saved)).unwrap();
    let from_emitted = read_jsonl(Cursor::new(dataset.to_jsonl())).unwrap();
    same_graph(&from_saved, &from_emitted).unwrap();
}
