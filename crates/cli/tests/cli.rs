//! End-to-end tests of the `bgpq` binary over the checked-in sample
//! datasets under `data/` — the same commands CI's smoke step runs.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    // crates/cli -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

fn bgpq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bgpq"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("binary runs")
}

fn stdout_of(args: &[&str]) -> String {
    let output = bgpq(args);
    assert!(
        output.status.success(),
        "bgpq {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bgpq_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// `load → discover → index → query`, the quick-start pipeline, for every
/// checked-in scenario dataset.
#[test]
fn quick_start_pipeline_works_for_all_scenarios() {
    let datasets = [
        ("data/social.tsv", "data/queries/social.pat"),
        ("data/citation.jsonl", "data/queries/citation.pat"),
        ("data/products.jsonl", "data/queries/products.pat"),
    ];
    for (dataset, pattern) in datasets {
        let load = stdout_of(&["load", dataset]);
        assert!(load.contains("nodes:"), "{dataset}: {load}");

        let discover = stdout_of(&["discover", dataset]);
        assert!(discover.contains("discovered"), "{dataset}: {discover}");
        assert!(discover.contains("->"), "{dataset}: {discover}");

        let index = stdout_of(&["index", dataset]);
        assert!(index.contains("total |index|"), "{dataset}: {index}");
        assert!(!index.contains("OVER BOUND"), "{dataset}: {index}");

        let query = stdout_of(&["query", dataset, "--pattern", pattern]);
        assert!(
            query.contains("strategy: bounded"),
            "{dataset} should be served by the bounded tier: {query}"
        );
        assert!(query.contains("answer:"), "{dataset}: {query}");
    }
}

/// Every checked-in query has matches, and forcing the three tiers returns
/// the same answer count.
#[test]
fn strategies_agree_on_the_samples() {
    let count_of = |out: &str| -> usize {
        let line = out
            .lines()
            .find(|l| l.starts_with("answer:"))
            .expect("answer line");
        line.split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .expect("numeric answer count")
    };
    for (dataset, pattern) in [
        ("data/social.tsv", "data/queries/social.pat"),
        ("data/citation.jsonl", "data/queries/citation.pat"),
        ("data/products.jsonl", "data/queries/products.pat"),
    ] {
        let counts: Vec<usize> = ["bounded", "seeded", "baseline"]
            .iter()
            .map(|strategy| {
                count_of(&stdout_of(&[
                    "query",
                    dataset,
                    "--pattern",
                    pattern,
                    "--strategy",
                    strategy,
                ]))
            })
            .collect();
        assert!(counts[0] > 0, "{dataset}: sample query has no matches");
        assert_eq!(counts[0], counts[1], "{dataset}: bounded != seeded");
        assert_eq!(counts[0], counts[2], "{dataset}: bounded != baseline");
    }
}

/// A discovered schema round-trips through `--out` and `--schema`, and the
/// explain path prints a plan.
#[test]
fn schema_serialization_feeds_back_into_query() {
    let schema_path = temp_path("social.schema");
    let schema_arg = schema_path.to_str().unwrap();
    let discover = stdout_of(&["discover", "data/social.tsv", "--out", schema_arg]);
    assert!(discover.contains("wrote"), "{discover}");

    let query = stdout_of(&[
        "query",
        "data/social.tsv",
        "--pattern",
        "data/queries/social.pat",
        "--schema",
        schema_arg,
        "--explain",
    ]);
    assert!(query.contains("strategy: bounded"), "{query}");
    assert!(query.contains("plan ("), "{query}");
    assert!(query.contains("fetch "), "{query}");
}

/// `gen --out` writes a dataset the loader accepts, in both formats.
#[test]
fn gen_output_is_loadable() {
    for (name, flag) in [("e2e.tsv", "text"), ("e2e.jsonl", "jsonl")] {
        let path = temp_path(name);
        let path_arg = path.to_str().unwrap();
        let gen = stdout_of(&[
            "gen", "citation", "--scale", "30", "--seed", "7", "--format", flag, "--out", path_arg,
        ]);
        assert!(gen.contains("generated citation dataset"), "{gen}");
        let load = stdout_of(&["load", path_arg]);
        assert!(load.contains("paper"), "{load}");
        std::fs::remove_file(path).ok();
    }
}

/// Simulation semantics run end to end too.
#[test]
fn simulation_queries_work() {
    let out = stdout_of(&[
        "query",
        "data/citation.jsonl",
        "--pattern",
        "data/queries/citation.pat",
        "--semantics",
        "sim",
    ]);
    assert!(out.contains("maximum simulation relation"), "{out}");
}

/// The serve-demo drives commits and reads over a sample dataset.
#[test]
fn serve_demo_runs_a_mixed_workload() {
    let out = stdout_of(&[
        "serve-demo",
        "data/products.jsonl",
        "--commits",
        "3",
        "--batch",
        "6",
        "--queries",
        "10",
    ]);
    assert!(out.contains("commit 3 -> v3"), "{out}");
    assert!(out.contains("queries/sec"), "{out}");
    assert!(out.contains("plan cache @ v3"), "{out}");
}

/// Malformed datasets fail with the offending line number on stderr.
#[test]
fn malformed_input_reports_line_numbers() {
    let path = temp_path("broken.tsv");
    std::fs::write(&path, "n\t1\tuser\nx\t2\t3\n").unwrap();
    let output = bgpq(&["load", path.to_str().unwrap()]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("line 2"), "stderr was: {stderr}");
    std::fs::remove_file(path).ok();
}

/// Unknown flags and missing arguments produce actionable errors.
#[test]
fn bad_invocations_fail_cleanly() {
    let output = bgpq(&["query", "data/social.tssv"]);
    assert!(!output.status.success());
    let output = bgpq(&["load"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("dataset"));
    let output = bgpq(&["gen", "fantasy"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown scenario"));
    let output = bgpq(&["frobnicate"]);
    assert!(!output.status.success());
    let help = stdout_of(&["help"]);
    assert!(help.contains("USAGE"));
}

/// `compile → query --snapshot` answers exactly like querying the text
/// dataset, with no schema discovery or index build at query time.
#[test]
fn compile_then_query_snapshot_matches_text_path() {
    let datasets = [
        ("data/social.tsv", "data/queries/social.pat", "social"),
        (
            "data/citation.jsonl",
            "data/queries/citation.pat",
            "citation",
        ),
        (
            "data/products.jsonl",
            "data/queries/products.pat",
            "products",
        ),
    ];
    let answer_line = |out: &str| -> String {
        out.lines()
            .find(|l| l.starts_with("answer:"))
            .expect("answer line")
            .to_string()
    };
    for (dataset, pattern, name) in datasets {
        let snap = temp_path(&format!("{name}.bgpq"));
        let compiled = stdout_of(&["compile", dataset, "--out", snap.to_str().unwrap()]);
        assert!(compiled.contains("compiled"), "{dataset}: {compiled}");

        let from_text = stdout_of(&["query", dataset, "--pattern", pattern]);
        let from_snap = stdout_of(&[
            "query",
            "--snapshot",
            snap.to_str().unwrap(),
            "--pattern",
            pattern,
        ]);
        assert_eq!(
            answer_line(&from_text),
            answer_line(&from_snap),
            "{dataset}: answers diverged"
        );
        assert!(
            from_snap.contains("embedded in snapshot"),
            "{dataset}: snapshot path must reuse embedded schema: {from_snap}"
        );
        assert!(
            from_snap.contains("strategy: bounded"),
            "{dataset}: {from_snap}"
        );

        // `index --snapshot` reports the persisted indices without a rebuild.
        let index = stdout_of(&["index", "--snapshot", snap.to_str().unwrap()]);
        assert!(index.contains("no rebuild"), "{dataset}: {index}");
        std::fs::remove_file(snap).ok();
    }
}

/// Snapshots are recognized by magic bytes: a renamed or extensionless
/// snapshot file still loads through the binary path.
#[test]
fn snapshot_autodetection_ignores_the_extension() {
    let snap = temp_path("sniff.bgpq");
    stdout_of(&[
        "compile",
        "data/social.tsv",
        "--out",
        snap.to_str().unwrap(),
    ]);

    for name in ["renamed.tsv", "extensionless"] {
        let copy = temp_path(name);
        std::fs::copy(&snap, &copy).unwrap();
        let load = stdout_of(&["load", copy.to_str().unwrap()]);
        assert!(load.contains("(snapshot)"), "{name}: {load}");
        assert!(load.contains("constraints embedded"), "{name}: {load}");
        std::fs::remove_file(copy).ok();
    }
    std::fs::remove_file(snap).ok();
}

/// A snapshot of a newer format version is refused with a clear message
/// naming both versions, not mis-parsed.
#[test]
fn version_mismatched_snapshot_is_refused_clearly() {
    let snap = temp_path("future.bgpq");
    stdout_of(&[
        "compile",
        "data/social.tsv",
        "--out",
        snap.to_str().unwrap(),
    ]);
    let mut bytes = std::fs::read(&snap).unwrap();
    bytes[8] = 99; // the version field follows the 8-byte magic
    std::fs::write(&snap, &bytes).unwrap();

    let output = bgpq(&["load", snap.to_str().unwrap()]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("version 99"), "stderr was: {stderr}");
    assert!(stderr.contains("version 1"), "stderr was: {stderr}");
    std::fs::remove_file(snap).ok();
}

/// `--schema` contradicts a snapshot's embedded schema and is refused.
#[test]
fn schema_flag_conflicts_with_embedded_snapshot_schema() {
    let snap = temp_path("conflict.bgpq");
    let schema = temp_path("conflict.schema");
    stdout_of(&[
        "compile",
        "data/social.tsv",
        "--out",
        snap.to_str().unwrap(),
    ]);
    stdout_of(&[
        "discover",
        "data/social.tsv",
        "--out",
        schema.to_str().unwrap(),
    ]);
    let output = bgpq(&[
        "query",
        "--snapshot",
        snap.to_str().unwrap(),
        "--pattern",
        "data/queries/social.pat",
        "--schema",
        schema.to_str().unwrap(),
    ]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("conflicts"), "stderr was: {stderr}");
    std::fs::remove_file(snap).ok();
    std::fs::remove_file(schema).ok();
}
