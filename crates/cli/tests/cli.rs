//! End-to-end tests of the `bgpq` binary over the checked-in sample
//! datasets under `data/` — the same commands CI's smoke step runs.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    // crates/cli -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

fn bgpq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bgpq"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("binary runs")
}

fn stdout_of(args: &[&str]) -> String {
    let output = bgpq(args);
    assert!(
        output.status.success(),
        "bgpq {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bgpq_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// `load → discover → index → query`, the quick-start pipeline, for every
/// checked-in scenario dataset.
#[test]
fn quick_start_pipeline_works_for_all_scenarios() {
    let datasets = [
        ("data/social.tsv", "data/queries/social.pat"),
        ("data/citation.jsonl", "data/queries/citation.pat"),
        ("data/products.jsonl", "data/queries/products.pat"),
    ];
    for (dataset, pattern) in datasets {
        let load = stdout_of(&["load", dataset]);
        assert!(load.contains("nodes:"), "{dataset}: {load}");

        let discover = stdout_of(&["discover", dataset]);
        assert!(discover.contains("discovered"), "{dataset}: {discover}");
        assert!(discover.contains("->"), "{dataset}: {discover}");

        let index = stdout_of(&["index", dataset]);
        assert!(index.contains("total |index|"), "{dataset}: {index}");
        assert!(!index.contains("OVER BOUND"), "{dataset}: {index}");

        let query = stdout_of(&["query", dataset, "--pattern", pattern]);
        assert!(
            query.contains("strategy: bounded"),
            "{dataset} should be served by the bounded tier: {query}"
        );
        assert!(query.contains("answer:"), "{dataset}: {query}");
    }
}

/// Every checked-in query has matches, and forcing the three tiers returns
/// the same answer count.
#[test]
fn strategies_agree_on_the_samples() {
    let count_of = |out: &str| -> usize {
        let line = out
            .lines()
            .find(|l| l.starts_with("answer:"))
            .expect("answer line");
        line.split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .expect("numeric answer count")
    };
    for (dataset, pattern) in [
        ("data/social.tsv", "data/queries/social.pat"),
        ("data/citation.jsonl", "data/queries/citation.pat"),
        ("data/products.jsonl", "data/queries/products.pat"),
    ] {
        let counts: Vec<usize> = ["bounded", "seeded", "baseline"]
            .iter()
            .map(|strategy| {
                count_of(&stdout_of(&[
                    "query",
                    dataset,
                    "--pattern",
                    pattern,
                    "--strategy",
                    strategy,
                ]))
            })
            .collect();
        assert!(counts[0] > 0, "{dataset}: sample query has no matches");
        assert_eq!(counts[0], counts[1], "{dataset}: bounded != seeded");
        assert_eq!(counts[0], counts[2], "{dataset}: bounded != baseline");
    }
}

/// A discovered schema round-trips through `--out` and `--schema`, and the
/// explain path prints a plan.
#[test]
fn schema_serialization_feeds_back_into_query() {
    let schema_path = temp_path("social.schema");
    let schema_arg = schema_path.to_str().unwrap();
    let discover = stdout_of(&["discover", "data/social.tsv", "--out", schema_arg]);
    assert!(discover.contains("wrote"), "{discover}");

    let query = stdout_of(&[
        "query",
        "data/social.tsv",
        "--pattern",
        "data/queries/social.pat",
        "--schema",
        schema_arg,
        "--explain",
    ]);
    assert!(query.contains("strategy: bounded"), "{query}");
    assert!(query.contains("plan ("), "{query}");
    assert!(query.contains("fetch "), "{query}");
}

/// `gen --out` writes a dataset the loader accepts, in both formats.
#[test]
fn gen_output_is_loadable() {
    for (name, flag) in [("e2e.tsv", "text"), ("e2e.jsonl", "jsonl")] {
        let path = temp_path(name);
        let path_arg = path.to_str().unwrap();
        let gen = stdout_of(&[
            "gen", "citation", "--scale", "30", "--seed", "7", "--format", flag, "--out", path_arg,
        ]);
        assert!(gen.contains("generated citation dataset"), "{gen}");
        let load = stdout_of(&["load", path_arg]);
        assert!(load.contains("paper"), "{load}");
        std::fs::remove_file(path).ok();
    }
}

/// Simulation semantics run end to end too.
#[test]
fn simulation_queries_work() {
    let out = stdout_of(&[
        "query",
        "data/citation.jsonl",
        "--pattern",
        "data/queries/citation.pat",
        "--semantics",
        "sim",
    ]);
    assert!(out.contains("maximum simulation relation"), "{out}");
}

/// The serve-demo drives commits and reads over a sample dataset.
#[test]
fn serve_demo_runs_a_mixed_workload() {
    let out = stdout_of(&[
        "serve-demo",
        "data/products.jsonl",
        "--commits",
        "3",
        "--batch",
        "6",
        "--queries",
        "10",
    ]);
    assert!(out.contains("commit 3 -> v3"), "{out}");
    assert!(out.contains("queries/sec"), "{out}");
    assert!(out.contains("plan cache @ v3"), "{out}");
}

/// Malformed datasets fail with the offending line number on stderr.
#[test]
fn malformed_input_reports_line_numbers() {
    let path = temp_path("broken.tsv");
    std::fs::write(&path, "n\t1\tuser\nx\t2\t3\n").unwrap();
    let output = bgpq(&["load", path.to_str().unwrap()]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("line 2"), "stderr was: {stderr}");
    std::fs::remove_file(path).ok();
}

/// Unknown flags and missing arguments produce actionable errors.
#[test]
fn bad_invocations_fail_cleanly() {
    let output = bgpq(&["query", "data/social.tssv"]);
    assert!(!output.status.success());
    let output = bgpq(&["load"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("dataset"));
    let output = bgpq(&["gen", "fantasy"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown scenario"));
    let output = bgpq(&["frobnicate"]);
    assert!(!output.status.success());
    let help = stdout_of(&["help"]);
    assert!(help.contains("USAGE"));
}
